//! Standing queries: a materialized view that stays **resident** — the
//! topology launched by `CREATE MATERIALIZED VIEW` keeps running, and
//! every later `append`/`retract` on a base table flows through the
//! distributed join as a signed delta instead of triggering a recompute.
//!
//! * **Part 1** — `CREATE MATERIALIZED VIEW` over a 3-way join + GROUP
//!   BY; post-launch appends and retractions; every snapshot is
//!   read-your-writes consistent and equals the full recompute.
//! * **Part 2** — the change stream: subscribers receive one batch of
//!   net `(row, ±count)` changes per epoch, and `DROP MATERIALIZED
//!   VIEW` is refused while a subscription is live.
//! * **Part 3** — operations: `explain` lists resident views with their
//!   delta plumbing and live maintenance counters; dropping the view
//!   returns its lifetime report.
//!
//! ```text
//! cargo run --release --example standing_views
//! ```

use squall::common::{tuple, DataType, Schema, SplitMix64, SquallError, Tuple};
use squall::Session;

const VIEW_SQL: &str = "SELECT R.a, COUNT(*) FROM R, S, T \
                        WHERE R.b = S.b AND S.c = T.c GROUP BY R.a";

/// Full-recompute oracle: the defining SELECT from scratch on the
/// session's current catalog.
fn recompute(s: &Session) -> Vec<Tuple> {
    s.clone().sql(VIEW_SQL).expect("recompute").rows().to_vec()
}

fn main() {
    let mut rng = SplitMix64::new(3);
    let mut gen = |n: usize, dom: i64| -> Vec<Tuple> {
        (0..n).map(|_| tuple![rng.next_range(0, dom), rng.next_range(0, dom)]).collect()
    };
    let mut session = Session::builder().machines(4).seed(3).build();
    session
        .register("R", Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]), gen(2_000, 300))
        .expect("register R")
        .register("S", Schema::of(&[("b", DataType::Int), ("c", DataType::Int)]), gen(2_000, 300))
        .expect("register S")
        .register("T", Schema::of(&[("c", DataType::Int), ("d", DataType::Int)]), gen(2_000, 300))
        .expect("register T");

    // Part 1 — create the view; the statement's result set is the initial
    // snapshot, and the topology stays resident afterwards.
    let mut initial = session
        .sql(&format!("CREATE MATERIALIZED VIEW conversions AS {VIEW_SQL}"))
        .expect("create view");
    let view = session.view("conversions").expect("resident");
    println!(
        "created view `{}`: {} groups at epoch {}",
        view.name(),
        initial.rows().len(),
        view.epoch()
    );

    // Appends propagate as +1 deltas; each snapshot is read-your-writes
    // consistent and byte-identical to recomputing the SELECT.
    let new_rows = gen(500, 300);
    session.append("R", new_rows.clone()).expect("append R");
    session.append("S", gen(500, 300)).expect("append S");
    assert_eq!(view.snapshot().expect("snapshot"), recompute(&session), "appends");

    // Retractions propagate as −1 deltas, shrinking counts and deleting
    // groups whose support disappears.
    session.retract("R", new_rows[..200].to_vec()).expect("retract R");
    assert_eq!(view.snapshot().expect("snapshot"), recompute(&session), "retraction");
    println!(
        "after 1000 appends and 200 retractions: {} groups, still equal to a full recompute",
        view.snapshot().expect("snapshot").len()
    );

    // Part 2 — the change stream: net per-epoch deltas, and the typed
    // ViewInUse guard while a subscription is live.
    let sub = view.subscribe();
    match session.drop_view("conversions") {
        Err(SquallError::ViewInUse { view }) => {
            println!("drop refused while subscribed (ViewInUse: {view})")
        }
        other => panic!("expected ViewInUse, got {other:?}"),
    }
    session.append("T", gen(300, 300)).expect("append T");
    view.snapshot().expect("quiesce");
    let mut changed = 0usize;
    while let Some(batch) = sub.try_recv() {
        changed += batch.changes.len();
        if let Some((row, mult)) = batch.changes.first() {
            println!(
                "epoch {}: {} net changes, e.g. {row} x {mult:+}",
                batch.epoch,
                batch.changes.len()
            );
        }
    }
    assert!(changed > 0, "the T appends must change some group");
    drop(sub);

    // Part 3 — operations: explain lists the resident view, drop returns
    // its lifetime maintenance report.
    let text = session.explain(VIEW_SQL).expect("explain");
    let resident: Vec<&str> = text.lines().filter(|l| l.contains("resident view")).collect();
    println!("explain: {}", resident.join(" / "));
    assert!(!resident.is_empty(), "explain lists resident views");

    let report = session.drop_view("conversions").expect("drop view");
    let stats = report.maintenance.expect("standing run reports maintenance");
    println!("dropped: {stats}");
    assert!(stats.epochs_applied >= 4 && stats.retractions >= 1, "{stats}");
    assert!(session.view("conversions").is_err(), "view is gone after DROP");
}
