//! Quickstart: register relations, run SQL, inspect the plan and metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use squall::common::{tuple, DataType, Schema, SplitMix64};
use squall::plan::physical::execute_query;
use squall::plan::{Catalog, ExecConfig, PhysicalQuery};

fn main() {
    // 1. Build a tiny catalog: suppliers ship parts to regions.
    let mut rng = SplitMix64::new(1);
    let mut catalog = Catalog::new();
    catalog.register(
        "parts",
        Schema::of(&[("pid", DataType::Int), ("weight", DataType::Int)]),
        (0..2_000).map(|p| tuple![p, rng.next_range(1, 100)]).collect(),
    );
    catalog.register(
        "shipments",
        Schema::of(&[("pid", DataType::Int), ("region", DataType::Int), ("qty", DataType::Int)]),
        (0..20_000)
            .map(|_| {
                tuple![rng.next_range(0, 1_999), rng.next_range(0, 9), rng.next_range(1, 50)]
            })
            .collect(),
    );

    // 2. Declarative interface: plain SQL (§2).
    let sql = "SELECT shipments.region, COUNT(*), SUM(shipments.qty * parts.weight) \
               FROM parts, shipments \
               WHERE parts.pid = shipments.pid AND parts.weight > 10 \
               GROUP BY shipments.region";
    let query = squall::sql::parse(sql).expect("valid SQL");

    // 3. Inspect what the optimizer did: selection pushdown, output-scheme
    //    pruning, join atoms.
    let plan = PhysicalQuery::plan(&query, &catalog).expect("plannable");
    println!("-- plan --\n{}", plan.explain());

    // 4. Execute on the distributed runtime (8 join machines).
    let cfg = ExecConfig { machines: 8, ..ExecConfig::default() };
    let result = execute_query(&query, &catalog, &cfg).expect("runs");

    println!("-- results ({} region groups) --", result.rows.len());
    for row in &result.rows {
        println!("{row}");
    }
    let report = result.report.expect("distributed run");
    println!(
        "\n-- run metrics (§6) --\njoin machines: {} loads {:?}\nskew degree: {:.2}\nreplication factor: {:.2}\nelapsed: {:?}",
        report.loads.len(),
        report.loads,
        report.skew_degree,
        report.replication_factor,
        report.elapsed,
    );
}
