//! Quickstart: one `Session`, both interfaces (§2), plan inspection and
//! run metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use squall::common::{tuple, DataType, Schema, SplitMix64};
use squall::expr::BinOp;
use squall::{col, count, lit, sum, Session};

fn main() {
    // 1. One session owns the catalog and the execution config: suppliers
    //    ship parts to regions, 8 join machines.
    let mut rng = SplitMix64::new(1);
    let mut session = Session::builder().machines(8).build();
    session
        .register(
            "parts",
            Schema::of(&[("pid", DataType::Int), ("weight", DataType::Int)]),
            (0..2_000).map(|p| tuple![p, rng.next_range(1, 100)]).collect(),
        )
        .unwrap();
    session
        .register(
            "shipments",
            Schema::of(&[
                ("pid", DataType::Int),
                ("region", DataType::Int),
                ("qty", DataType::Int),
            ]),
            (0..20_000)
                .map(|_| {
                    tuple![rng.next_range(0, 1_999), rng.next_range(0, 9), rng.next_range(1, 50)]
                })
                .collect(),
        )
        .unwrap();

    // 2. Declarative interface: plain SQL (§2).
    let sql = "SELECT shipments.region, COUNT(*), SUM(shipments.qty * parts.weight) \
               FROM parts, shipments \
               WHERE parts.pid = shipments.pid AND parts.weight > 10 \
               GROUP BY shipments.region";

    // 3. Inspect what the optimizer did: selection pushdown, output-scheme
    //    pruning, join atoms.
    println!("-- plan --\n{}", session.explain(sql).expect("plannable"));

    // 4. Execute on the distributed runtime.
    let mut result = session.sql(sql).expect("runs");

    // 5. The same query through the imperative interface lowers to the
    //    same logical plan — byte-identical rows.
    let mut imperative = session
        .from("parts")
        .join("shipments")
        .on(col("parts.pid").eq(col("shipments.pid")))
        .filter(col("parts.weight").gt(lit(10)))
        .group_by([col("shipments.region")])
        .select([count(), sum(col("shipments.qty").bin(BinOp::Mul, col("parts.weight")))])
        .run()
        .expect("runs");
    assert_eq!(result.rows(), imperative.rows(), "SQL == imperative");

    println!("-- results ({} region groups, both interfaces) --", result.rows().len());
    for row in result.rows() {
        println!("{row}");
    }
    let report = result.report().expect("distributed run");
    println!(
        "\n-- run metrics (§6) --\njoin machines: {} loads {:?}\nskew degree: {:.2}\nreplication factor: {:.2}\nelapsed: {:?}",
        report.loads.len(),
        report.loads,
        report.skew_degree,
        report.replication_factor,
        report.elapsed,
    );
}
