//! The paper's cluster-administrator scenario (§6): monitor a Google-style
//! cluster trace in real time and count failed tasks per machine — the
//! Google TaskCount query — through the SQL interface, end to end.
//!
//! ```text
//! cargo run --release --example cluster_monitoring
//! ```

use squall::data::google_cluster;
use squall::plan::physical::execute_query;
use squall::plan::{Catalog, ExecConfig};

fn main() {
    // Synthetic trace preserving the 2011 trace's relative table sizes.
    let trace = google_cluster::generate(40_000, 5);
    println!(
        "trace: {} task events, {} job events, {} machine events",
        trace.task_events.len(),
        trace.job_events.len(),
        trace.machine_events.len()
    );

    let mut catalog = Catalog::new();
    catalog.register(
        "MACHINE_EVENTS",
        google_cluster::machine_events_schema(),
        trace.machine_events.clone(),
    );
    catalog.register("JOB_EVENTS", google_cluster::job_events_schema(), trace.job_events.clone());
    catalog.register(
        "TASK_EVENTS",
        google_cluster::task_events_schema(),
        trace.task_events.clone(),
    );

    // §7.4's query, verbatim SQL (FAIL = 3 in the trace encoding).
    let sql = "SELECT MACHINE_EVENTS.machineID, MACHINE_EVENTS.platform, COUNT(*) \
               FROM JOB_EVENTS, TASK_EVENTS, MACHINE_EVENTS \
               WHERE TASK_EVENTS.eventType = 3 \
                 AND JOB_EVENTS.jobID = TASK_EVENTS.jobID \
                 AND MACHINE_EVENTS.machineID = TASK_EVENTS.machineID \
               GROUP BY MACHINE_EVENTS.machineID, MACHINE_EVENTS.platform";
    let query = squall::sql::parse(sql).expect("valid SQL");
    let cfg = ExecConfig { machines: 8, ..ExecConfig::default() };
    let result = execute_query(&query, &catalog, &cfg).expect("runs");

    // The machines "not production-ready": highest failed-task counts.
    let mut rows = result.rows.clone();
    rows.sort_by_key(|r| std::cmp::Reverse(r.get(2).as_int().unwrap_or(0)));
    println!("\nworst machines by failed tasks:");
    for row in rows.iter().take(10) {
        println!(
            "  machine {:>4}  {}  {:>5} failed tasks",
            row.get(0),
            row.get(1),
            row.get(2)
        );
    }
    let report = result.report.expect("distributed run");
    println!(
        "\njoin ran on {} machines, skew degree {:.2}, replication factor {:.2}, in {:?}",
        report.loads.len(),
        report.skew_degree,
        report.replication_factor,
        report.elapsed
    );
}
