//! The paper's cluster-administrator scenario (§6): monitor a Google-style
//! cluster trace in real time and count failed tasks per machine — the
//! Google TaskCount query — through both session interfaces, end to end.
//!
//! ```text
//! cargo run --release --example cluster_monitoring
//! ```

use squall::data::google_cluster;
use squall::{col, count, lit, Session};

fn main() {
    // Synthetic trace preserving the 2011 trace's relative table sizes.
    let trace = google_cluster::generate(40_000, 5);
    println!(
        "trace: {} task events, {} job events, {} machine events",
        trace.task_events.len(),
        trace.job_events.len(),
        trace.machine_events.len()
    );

    let mut session = Session::builder().machines(8).build();
    session
        .register("MACHINE_EVENTS", google_cluster::machine_events_schema(), trace.machine_events)
        .unwrap();
    session.register("JOB_EVENTS", google_cluster::job_events_schema(), trace.job_events).unwrap();
    session
        .register("TASK_EVENTS", google_cluster::task_events_schema(), trace.task_events)
        .unwrap();

    // §7.4's query, verbatim SQL (FAIL = 3 in the trace encoding).
    let sql = "SELECT MACHINE_EVENTS.machineID, MACHINE_EVENTS.platform, COUNT(*) \
               FROM JOB_EVENTS, TASK_EVENTS, MACHINE_EVENTS \
               WHERE TASK_EVENTS.eventType = 3 \
                 AND JOB_EVENTS.jobID = TASK_EVENTS.jobID \
                 AND MACHINE_EVENTS.machineID = TASK_EVENTS.machineID \
               GROUP BY MACHINE_EVENTS.machineID, MACHINE_EVENTS.platform";
    let mut result = session.sql(sql).expect("runs");

    // The same monitoring query through the imperative interface.
    let mut imperative = session
        .from("JOB_EVENTS")
        .join("TASK_EVENTS")
        .join("MACHINE_EVENTS")
        .filter(col("TASK_EVENTS.eventType").eq(lit(3)))
        .on(col("JOB_EVENTS.jobID").eq(col("TASK_EVENTS.jobID")))
        .on(col("MACHINE_EVENTS.machineID").eq(col("TASK_EVENTS.machineID")))
        .group_by([col("MACHINE_EVENTS.machineID"), col("MACHINE_EVENTS.platform")])
        .select([count()])
        .run()
        .expect("runs");
    assert_eq!(result.rows(), imperative.rows(), "SQL == imperative");

    // The machines "not production-ready": highest failed-task counts.
    let mut rows = result.rows().to_vec();
    rows.sort_by_key(|r| std::cmp::Reverse(r.get(2).as_int().unwrap_or(0)));
    println!("\nworst machines by failed tasks:");
    for row in rows.iter().take(10) {
        println!("  machine {:>4}  {}  {:>5} failed tasks", row.get(0), row.get(1), row.get(2));
    }
    let report = result.report().expect("distributed run");
    println!(
        "\njoin ran on {} machines, skew degree {:.2}, replication factor {:.2}, in {:?}",
        report.loads.len(),
        report.skew_degree,
        report.replication_factor,
        report.elapsed
    );
}
