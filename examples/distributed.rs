//! Distributed deployment: one query split across a coordinator and two
//! workers over loopback TCP.
//!
//! ```text
//! cargo run --release --example distributed
//! ```
//!
//! For a zero-setup demo the two workers run as threads of this process,
//! each serving one job on its own TCP listener — exactly what a
//! `squall-worker --listen <addr> --once` process does (the e2e suite
//! spawns the real binary). The coordinator side is ordinary session
//! code: the only distributed-specific line is `.cluster([...])`.

use std::net::TcpListener;

use squall::common::{tuple, DataType, Schema, SplitMix64};
use squall::engine::cluster::serve_job;
use squall::Session;

/// Stand-in for `squall-worker --once`: bind an ephemeral listener, serve
/// one job on a background thread, report the address to dial.
fn spawn_worker() -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind worker listener");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || serve_job(&listener).expect("worker job"));
    (addr, handle)
}

fn register_rst(session: &mut Session) {
    let mut rng = SplitMix64::new(17);
    let mut gen = |n: usize, dom: i64| -> Vec<squall::common::Tuple> {
        (0..n).map(|_| tuple![rng.next_range(0, dom), rng.next_range(0, dom)]).collect()
    };
    let two_int = |a: &str, b: &str| Schema::of(&[(a, DataType::Int), (b, DataType::Int)]);
    session.register("R", two_int("x", "y"), gen(4_000, 300)).unwrap();
    session.register("S", two_int("y", "z"), gen(4_000, 300)).unwrap();
    session.register("T", two_int("z", "t"), gen(4_000, 300)).unwrap();
}

fn main() {
    let sql = "SELECT R.x, COUNT(*) FROM R, S, T \
               WHERE R.y = S.y AND S.z = T.z \
               GROUP BY R.x HAVING COUNT(*) > 2";

    // Baseline: everything in this process.
    let mut local = Session::builder().machines(9).seed(3).build();
    register_rst(&mut local);
    let mut local_rs = local.sql(sql).expect("local run");
    let local_rows = local_rs.rows().to_vec();
    let local_report = local_rs.report().expect("distributed-join report");

    // The same session, now backed by a 3-peer cluster: this process is
    // the coordinator (catalog + spouts + its share of join machines);
    // the workers host the remaining join/aggregation task ranges.
    let (addr1, worker1) = spawn_worker();
    let (addr2, worker2) = spawn_worker();
    let mut clustered = Session::builder().machines(9).seed(3).cluster([&addr1, &addr2]).build();
    register_rst(&mut clustered);

    println!("-- plan (note the task→peer placement) --");
    println!("{}", clustered.explain(sql).expect("plannable"));

    let mut dist_rs = clustered.sql(sql).expect("clustered run");
    let dist_rows = dist_rs.rows().to_vec();
    worker1.join().expect("worker 1");
    worker2.join().expect("worker 2");

    assert_eq!(local_rows, dist_rows, "placement must not change results");
    let report = dist_rs.report().expect("cluster report");
    assert_eq!(report.loads, local_report.loads, "loads are placement-independent");

    println!("-- results ({} groups, identical to the local run) --", dist_rows.len());
    for row in dist_rows.iter().take(5) {
        println!("  {row}");
    }
    println!(
        "-- per-machine join loads (max {}, avg {:.1}) --",
        report.max_load(),
        report.avg_load()
    );
    println!("{:?}", report.loads);
    println!("-- wire traffic per peer --");
    print!("{}", report.transport.as_ref().expect("cluster run"));
    println!("(single-process baseline shipped 0 bytes; the cluster moved every batch over TCP)");
}
