//! The paper's WebAnalytics demo scenario (§6–§7.3): find 2-hop hyperlink
//! paths through the dominant hub ('blogspot.com') and join them with
//! per-URL content scores — then compare all three hypercube schemes on
//! the same session, like the demo UI lets attendees do.
//!
//! ```text
//! cargo run --release --example web_analytics
//! ```

use squall::data::webgraph::WebGraphGen;
use squall::data::{crawlcontent, webgraph};
use squall::{SchemeKind, Session};

fn main() {
    // Synthetic Common-Crawl-style hyperlink graph with one dominant hub
    // (integer id 0), plus per-URL content scores.
    let arcs = WebGraphGen::new(2_000, 20_000, 11).generate();
    let content = crawlcontent::generate(2_000, 12);
    let mut session = Session::builder().machines(8).build();
    session.register("WebGraph", webgraph::webgraph_schema(), arcs).unwrap();
    session.register("CrawlContent", crawlcontent::crawlcontent_schema(), content).unwrap();

    // §6's WebAnalytics query: pages linking into the hub, scored.
    let sql = "SELECT W1.FromUrl, C.Score, COUNT(*) \
               FROM WebGraph W1, WebGraph W2, CrawlContent C \
               WHERE W1.ToUrl = 0 AND W2.FromUrl = 0 \
                 AND W1.ToUrl = W2.FromUrl AND W1.FromUrl = C.Url \
               GROUP BY W1.FromUrl, C.Score";
    println!("-- plan --\n{}", session.explain(sql).expect("plannable"));

    // Try every scheme on the same session, as the demo's selector does.
    let mut expected_rows = None;
    for kind in [SchemeKind::Hash, SchemeKind::Random, SchemeKind::Hybrid] {
        session.config_mut().scheme = Some(kind);
        let mut result = session.sql(sql).expect("runs");
        let n = result.rows().len();
        if let Some(prev) = &expected_rows {
            assert_eq!(prev, &result.rows().to_vec(), "schemes must agree");
        } else {
            expected_rows = Some(result.rows().to_vec());
        }
        let rep = result.report().expect("distributed run");
        println!(
            "\n{kind}\n  partitioning:       {}\n  result groups:      {n}\n  max/avg load:       {} / {:.0}\n  skew degree:        {:.2}\n  replication factor: {:.2}\n  runtime:            {:?}",
            rep.scheme_description,
            rep.max_load(),
            rep.avg_load(),
            rep.skew_degree,
            rep.replication_factor,
            rep.elapsed,
        );
    }
    println!(
        "\nThe Hybrid-Hypercube randomizes the single-valued hub key and hash-partitions \
         the skew-free URL key — the SAR principle (§5) in action."
    );
}
