//! The paper's WebAnalytics demo scenario (§6–§7.3): find 2-hop hyperlink
//! paths through the dominant hub ('blogspot.com') and join them with
//! per-URL content scores — then compare all three hypercube schemes on
//! the same query, like the demo UI lets attendees do.
//!
//! ```text
//! cargo run --release --example web_analytics
//! ```

use squall::data::queries;
use squall::data::webgraph::WebGraphGen;
use squall::data::crawlcontent;
use squall::engine::driver::{run_multiway, LocalJoinKind, MultiwayConfig};
use squall::partition::optimizer::SchemeKind;

fn main() {
    // Synthetic Common-Crawl-style hyperlink graph with one dominant hub.
    let arcs = WebGraphGen::new(2_000, 20_000, 11).generate();
    let content = crawlcontent::generate(2_000, 12);
    let q = queries::webanalytics(&arcs, &content);
    println!(
        "WebAnalytics: |W1| = {} (arcs into the hub), |W2| = {} (arcs out), |C| = {}",
        q.data[0].len(),
        q.data[1].len(),
        q.data[2].len()
    );

    // Try every scheme, as the demo's scheme selector does.
    for kind in [SchemeKind::Hash, SchemeKind::Random, SchemeKind::Hybrid] {
        let cfg = MultiwayConfig::new(kind, LocalJoinKind::DBToaster, 8).count_only();
        let rep = run_multiway(&q.spec, q.data.clone(), &cfg).expect("runs");
        println!(
            "\n{kind}\n  partitioning:       {}\n  results:            {}\n  max/avg load:       {} / {:.0}\n  skew degree:        {:.2}\n  replication factor: {:.2}\n  runtime:            {:?}",
            rep.scheme_description,
            rep.result_count,
            rep.max_load(),
            rep.avg_load(),
            rep.skew_degree,
            rep.replication_factor,
            rep.elapsed,
        );
    }
    println!(
        "\nThe Hybrid-Hypercube randomizes the single-valued hub key and hash-partitions \
         the skew-free URL key — the SAR principle (§5) in action."
    );
}
