//! Window semantics (§2) and streaming results: a sliding-window stream
//! join built directly on the runtime (topology, groupings and windowed
//! join bolt by hand — the physical layer under the session API), then
//! the same streams queried through `Session` with results consumed *while
//! the topology runs*.
//!
//! Scenario: match ad impressions to clicks within a 30-time-unit sliding
//! window (the click-stream analytics motivation of §1).
//!
//! ```text
//! cargo run --release --example windowed_stream
//! ```

use std::sync::Arc;

use squall::common::{tuple, DataType, FxHashMap, Schema, SplitMix64, Tuple};
use squall::engine::operators::{JoinBolt, JoinEmit};
use squall::expr::{JoinAtom, MultiJoinSpec, RelationDef};
use squall::join::{DBToasterJoin, WindowSpec};
use squall::runtime::{Grouping, IterSpoutVec, TopologyBuilder};
use squall::{col, Session};

fn main() {
    // impressions(ad_id, ts), clicks(ad_id, ts): matching ad within 30
    // ticks counts as a conversion.
    let mut rng = SplitMix64::new(7);
    let mut impressions = Vec::new();
    let mut clicks = Vec::new();
    let mut ts = 0i64;
    for _ in 0..30_000 {
        ts += rng.next_range(0, 2);
        let ad = rng.next_range(0, 500);
        impressions.push(tuple![ad, ts]);
        if rng.next_f64() < 0.1 {
            clicks.push(tuple![ad, ts + rng.next_range(0, 40)]);
        }
    }
    clicks.sort_by_key(|t| t.get(1).as_int().unwrap());

    let ad_schema = Schema::of(&[("ad_id", DataType::Int), ("ts", DataType::Int)]);
    let spec = MultiJoinSpec::new(
        vec![
            RelationDef::new("impressions", ad_schema.clone(), impressions.len() as u64),
            RelationDef::new("clicks", ad_schema.clone(), clicks.len() as u64),
        ],
        vec![JoinAtom::eq(0, 0, 1, 0)],
    )
    .unwrap();

    // Part 1 — the physical layer: build the windowed topology by hand
    // (window expiration is not expressible in the SPJA session queries
    // yet, so this is what the session API compiles *down to*).
    let mut b = TopologyBuilder::new();
    let imp = Arc::new(impressions);
    let clk = Arc::new(clicks);
    let imp_node = {
        let d = Arc::clone(&imp);
        b.add_spout("impressions", 1, move |t| {
            Box::new(IterSpoutVec::strided(Arc::clone(&d), t, 1))
        })
    };
    let clk_node = {
        let d = Arc::clone(&clk);
        b.add_spout("clicks", 1, move |t| Box::new(IterSpoutVec::strided(Arc::clone(&d), t, 1)))
    };
    let spec2 = Arc::new(spec);
    let machines = 4;
    let join_node = b.add_bolt("window-join", machines, move |task| {
        let mut map = FxHashMap::default();
        map.insert(imp_node, 0usize);
        map.insert(clk_node, 1usize);
        Box::new(JoinBolt::new_windowed(
            task,
            map,
            Box::new(DBToasterJoin::new(&spec2)),
            2,
            JoinEmit::Results,
            WindowSpec::Sliding { size: 30 },
            vec![1, 1], // ts column of each relation
        ))
    });
    // Hash both sides on ad_id: an equi-join on a skew-free key.
    b.connect(imp_node, join_node, Grouping::Fields(vec![0]));
    b.connect(clk_node, join_node, Grouping::Fields(vec![0]));

    let outcome = b.build().unwrap().run();
    assert!(outcome.error.is_none(), "{:?}", outcome.error);
    let conversions: Vec<Tuple> = outcome.tuples();
    println!(
        "{} impressions, {} clicks → {} in-window conversions",
        imp.len(),
        clk.len(),
        conversions.len()
    );
    let m = outcome.metrics.node(join_node);
    println!(
        "window-join loads: {:?} (skew degree {:.2}); state stayed bounded by the window",
        m.received,
        m.skew_degree()
    );

    // Part 2 — the session layer, streaming: the full-history version of
    // the same join through `Session`, with rows consumed while the
    // topology runs (every in-window conversion is a subset of these).
    let mut session = Session::builder().machines(machines).build();
    session.register("impressions", ad_schema.clone(), imp.as_ref().clone());
    session.register("clicks", ad_schema, clk.as_ref().clone());
    let mut stream = session
        .from_as("impressions", "I")
        .join_as("clicks", "C")
        .on(col("I.ad_id").eq(col("C.ad_id")))
        .select([col("I.ad_id"), col("I.ts"), col("C.ts")])
        .stream()
        .expect("runs");
    assert!(stream.is_streaming());
    let mut streamed = 0u64;
    let mut first: Option<Tuple> = None;
    for row in stream.by_ref() {
        if first.is_none() {
            first = Some(row);
        }
        streamed += 1;
    }
    let report = stream.report().expect("metrics after the stream ends");
    println!(
        "\nsession stream: {streamed} full-history matches (first seen: {}), \
         join machines {:?}, elapsed {:?}",
        first.map(|t| t.to_string()).unwrap_or_else(|| "none".into()),
        report.loads,
        report.elapsed,
    );
    assert!(streamed >= conversions.len() as u64, "windowed results are a subset");
}
