//! Window semantics (§2) as a first-class `Session` feature: the paper's
//! click-stream scenario — match ad impressions to clicks within a
//! 30-time-unit sliding window — expressed three equivalent ways:
//!
//! * **Part 1a** — declarative: `WINDOW SLIDING 30 ON ts` in SQL, with the
//!   result rows consumed *while the topology runs*;
//! * **Part 1b** — imperative: `.window(Window::sliding(30).on("ts"))` on
//!   the query builder;
//! * **Part 2** — the physical layer the session API compiles down to:
//!   topology, groupings and the event-time windowed join bolt built by
//!   hand;
//! * **Part 3** — *per-window aggregation*: `WINDOW TUMBLING … GROUP BY`
//!   counts conversions per ad per window, rows shaped
//!   `(window_start, window_end, ad_id, n)` and streamed in window order
//!   as watermarks close each window.
//!
//! All paths produce identical conversions: window results are a pure
//! function of the timestamped inputs (watermark eviction + per-result
//! window predicate), not of thread scheduling.
//!
//! ```text
//! cargo run --release --example windowed_stream
//! ```

use std::sync::Arc;

use squall::common::{tuple, DataType, FxHashMap, Schema, SplitMix64, Tuple};
use squall::engine::operators::{JoinBolt, JoinEmit};
use squall::expr::{JoinAtom, MultiJoinSpec, RelationDef};
use squall::join::{DBToasterJoin, WindowSpec};
use squall::runtime::{Grouping, IterSpoutVec, TopologyBuilder};
use squall::{col, Session, Window};

const WINDOW: u64 = 30;

fn main() {
    // impressions(ad_id, ts), clicks(ad_id, ts): a click within 30 ticks
    // of a matching impression counts as a conversion.
    let mut rng = SplitMix64::new(7);
    let mut impressions = Vec::new();
    let mut clicks = Vec::new();
    let mut ts = 0i64;
    for _ in 0..30_000 {
        ts += rng.next_range(0, 2);
        let ad = rng.next_range(0, 500);
        impressions.push(tuple![ad, ts]);
        if rng.next_f64() < 0.1 {
            clicks.push(tuple![ad, ts + rng.next_range(0, 40)]);
        }
    }
    let ad_schema = Schema::of(&[("ad_id", DataType::Int), ("ts", DataType::Int)]);

    // Part 1 — the session layer: streams registered with a declared
    // event-time column, windows in both query interfaces.
    let machines = 4;
    let mut session = Session::builder().machines(machines).build();
    session
        .register_stream("impressions", ad_schema.clone(), impressions.clone(), "ts")
        .expect("valid stream")
        .register_stream("clicks", ad_schema.clone(), clicks.clone(), "ts")
        .expect("valid stream");

    // 1a: SQL, streaming — conversions are consumed while the topology
    // runs (the natural mode for unbounded sources).
    let sql = "SELECT I.ad_id, I.ts, C.ts FROM impressions I, clicks C \
               WHERE I.ad_id = C.ad_id WINDOW SLIDING 30 ON ts";
    let mut live = session.sql_stream(sql).expect("plans");
    assert!(live.is_streaming());
    let mut sql_rows: Vec<Tuple> = Vec::new();
    let mut first: Option<Tuple> = None;
    for row in live.by_ref() {
        if first.is_none() {
            first = Some(row.clone()); // seen before the run finished
        }
        sql_rows.push(row);
    }
    let report = live.report().expect("metrics after the stream ends");
    assert!(report.error.is_none());
    println!(
        "SQL stream: {} conversions (first while running: {}), join loads {:?}, elapsed {:?}",
        sql_rows.len(),
        first.map(|t| t.to_string()).unwrap_or_else(|| "none".into()),
        report.loads,
        report.elapsed,
    );

    // 1b: the imperative builder lowers to the same plan.
    let mut built = session
        .from_as("impressions", "I")
        .join_as("clicks", "C")
        .on(col("I.ad_id").eq(col("C.ad_id")))
        .window(Window::sliding(WINDOW).on("ts"))
        .select([col("I.ad_id"), col("I.ts"), col("C.ts")])
        .run()
        .expect("plans");
    sql_rows.sort();
    assert_eq!(built.rows(), sql_rows, "SQL and builder paths produce identical rows");

    // Part 2 — the physical layer underneath: the same windowed join as a
    // hand-built topology (spouts must feed each relation in event-time
    // order; the session path does this for us).
    let by_ts = |mut v: Vec<Tuple>| {
        v.sort_by_key(|t| t.get(1).as_int().unwrap());
        v
    };
    let imp = Arc::new(by_ts(impressions));
    let clk = Arc::new(by_ts(clicks));
    let spec = MultiJoinSpec::new(
        vec![
            RelationDef::new("impressions", ad_schema.clone(), imp.len() as u64),
            RelationDef::new("clicks", ad_schema, clk.len() as u64),
        ],
        vec![JoinAtom::eq(0, 0, 1, 0)],
    )
    .unwrap();

    let mut b = TopologyBuilder::new();
    let imp_node = {
        let d = Arc::clone(&imp);
        b.add_spout("impressions", 1, move |t| {
            Box::new(IterSpoutVec::strided(Arc::clone(&d), t, 1))
        })
    };
    let clk_node = {
        let d = Arc::clone(&clk);
        b.add_spout("clicks", 1, move |t| Box::new(IterSpoutVec::strided(Arc::clone(&d), t, 1)))
    };
    let spec2 = Arc::new(spec);
    let join_node = b.add_bolt("window-join", machines, move |task| {
        let mut map = FxHashMap::default();
        map.insert(imp_node, 0usize);
        map.insert(clk_node, 1usize);
        Box::new(JoinBolt::new_windowed(
            task,
            map,
            Box::new(DBToasterJoin::new(&spec2)),
            JoinEmit::Results,
            WindowSpec::Sliding { size: WINDOW },
            vec![1, 1], // ts column of each relation
            &[2, 2],    // relation arities (locate ts in the join output)
        ))
    });
    // Hash both sides on ad_id: an equi-join on a skew-free key.
    b.connect(imp_node, join_node, Grouping::Fields(vec![0]));
    b.connect(clk_node, join_node, Grouping::Fields(vec![0]));

    let outcome = b.build().unwrap().run();
    assert!(outcome.error.is_none(), "{:?}", outcome.error);
    let m = outcome.metrics.node(join_node).clone();
    // Raw join output is (I.ad_id, I.ts, C.ad_id, C.ts); project onto the
    // session query's SELECT list for a row-level comparison.
    let mut hand_built: Vec<Tuple> = outcome
        .into_tuples()
        .into_iter()
        .map(|t| Tuple::new(vec![t.get(0).clone(), t.get(1).clone(), t.get(3).clone()]))
        .collect();
    hand_built.sort();
    println!(
        "hand-built topology: {} conversions, loads {:?} (skew degree {:.2})",
        hand_built.len(),
        m.received,
        m.skew_degree()
    );

    assert_eq!(
        hand_built.len(),
        sql_rows.len(),
        "session API and hand-built topology must count the same conversions"
    );
    assert_eq!(hand_built, sql_rows, "…and produce identical rows");
    println!(
        "\n{} impressions, {} clicks → {} in-window conversions via all three paths",
        imp.len(),
        clk.len(),
        sql_rows.len()
    );

    // Part 3 — per-window aggregation: conversions per ad per tumbling
    // window, with closed windows streaming out in window order while the
    // topology still runs (watermarks from the join tasks close them).
    let per_window_sql = "SELECT I.ad_id, COUNT(*) FROM impressions I, clicks C \
                          WHERE I.ad_id = C.ad_id WINDOW TUMBLING 1000 ON ts \
                          GROUP BY I.ad_id";
    let mut live = session.sql_stream(per_window_sql).expect("plans");
    assert!(live.is_streaming());
    let mut last_start = i64::MIN;
    let mut per_window: Vec<Tuple> = Vec::new();
    for row in live.by_ref() {
        let start = row.get(0).as_int().unwrap();
        assert!(start >= last_start, "closed windows must stream in window order");
        last_start = start;
        per_window.push(row);
    }
    assert!(live.report().expect("report").error.is_none());
    // The per-window counts partition the sliding-free join total: every
    // (impression, click) pair in a shared bucket counts exactly once.
    let windows: std::collections::BTreeSet<i64> =
        per_window.iter().map(|t| t.get(0).as_int().unwrap()).collect();
    let builder_rows = session
        .from_as("impressions", "I")
        .join_as("clicks", "C")
        .on(col("I.ad_id").eq(col("C.ad_id")))
        .window(Window::tumbling(1000).on("ts"))
        .group_by([col("I.ad_id")])
        .select([col("I.ad_id"), squall::count()])
        .run()
        .expect("plans")
        .rows()
        .to_vec();
    assert_eq!(builder_rows, per_window, "SQL and builder per-window rows agree");
    println!(
        "per-window GROUP BY: {} (window, ad) rows across {} tumbling windows, e.g. {}",
        per_window.len(),
        windows.len(),
        per_window.first().map(|t| t.to_string()).unwrap_or_default(),
    );
}
