//! Window semantics (§2): a sliding-window stream join built directly on
//! the imperative interface — topology, groupings and windowed join bolt
//! by hand, the way the paper's imperative interface exposes the physical
//! plan.
//!
//! Scenario: match ad impressions to clicks within a 30-time-unit sliding
//! window (the click-stream analytics motivation of §1).
//!
//! ```text
//! cargo run --release --example windowed_stream
//! ```

use std::sync::Arc;

use squall::common::{tuple, DataType, FxHashMap, Schema, SplitMix64, Tuple};
use squall::engine::operators::{JoinBolt, JoinEmit};
use squall::expr::{JoinAtom, MultiJoinSpec, RelationDef};
use squall::join::{DBToasterJoin, WindowSpec};
use squall::runtime::{Grouping, IterSpoutVec, TopologyBuilder};

fn main() {
    // impressions(ad_id, ts), clicks(ad_id, ts): matching ad within 30
    // ticks counts as a conversion.
    let mut rng = SplitMix64::new(7);
    let mut impressions = Vec::new();
    let mut clicks = Vec::new();
    let mut ts = 0i64;
    for _ in 0..30_000 {
        ts += rng.next_range(0, 2);
        let ad = rng.next_range(0, 500);
        impressions.push(tuple![ad, ts]);
        if rng.next_f64() < 0.1 {
            clicks.push(tuple![ad, ts + rng.next_range(0, 40)]);
        }
    }
    clicks.sort_by_key(|t| t.get(1).as_int().unwrap());

    let spec = MultiJoinSpec::new(
        vec![
            RelationDef::new(
                "impressions",
                Schema::of(&[("ad_id", DataType::Int), ("ts", DataType::Int)]),
                impressions.len() as u64,
            ),
            RelationDef::new(
                "clicks",
                Schema::of(&[("ad_id", DataType::Int), ("ts", DataType::Int)]),
                clicks.len() as u64,
            ),
        ],
        vec![JoinAtom::eq(0, 0, 1, 0)],
    )
    .unwrap();

    // Imperative interface: build the topology by hand.
    let mut b = TopologyBuilder::new();
    let imp = Arc::new(impressions);
    let clk = Arc::new(clicks);
    let imp_node = {
        let d = Arc::clone(&imp);
        b.add_spout("impressions", 1, move |t| Box::new(IterSpoutVec::strided(Arc::clone(&d), t, 1)))
    };
    let clk_node = {
        let d = Arc::clone(&clk);
        b.add_spout("clicks", 1, move |t| Box::new(IterSpoutVec::strided(Arc::clone(&d), t, 1)))
    };
    let spec2 = Arc::new(spec);
    let machines = 4;
    let join_node = b.add_bolt("window-join", machines, move |task| {
        let mut map = FxHashMap::default();
        map.insert(imp_node, 0usize);
        map.insert(clk_node, 1usize);
        Box::new(JoinBolt::new_windowed(
            task,
            map,
            Box::new(DBToasterJoin::new(&spec2)),
            2,
            JoinEmit::Results,
            WindowSpec::Sliding { size: 30 },
            vec![1, 1], // ts column of each relation
        ))
    });
    // Hash both sides on ad_id: an equi-join on a skew-free key.
    b.connect(imp_node, join_node, Grouping::Fields(vec![0]));
    b.connect(clk_node, join_node, Grouping::Fields(vec![0]));

    let outcome = b.build().unwrap().run();
    assert!(outcome.error.is_none(), "{:?}", outcome.error);
    let conversions: Vec<Tuple> = outcome.tuples();
    println!(
        "{} impressions, {} clicks → {} in-window conversions",
        imp.len(),
        clk.len(),
        conversions.len()
    );
    let m = outcome.metrics.node(join_node);
    println!(
        "window-join loads: {:?} (skew degree {:.2}); state stayed bounded by the window",
        m.received,
        m.skew_degree()
    );
}
