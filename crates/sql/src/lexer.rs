//! SQL tokenizer.

use squall_common::{Result, SquallError};

/// A lexical token. Keywords are case-insensitive and normalized to
/// uppercase; identifiers keep their case.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (SELECT, FROM, WHERE, GROUP, BY, HAVING, AS, AND, OR, NOT,
    /// COUNT, SUM, AVG, WINDOW, SLIDING, TUMBLING, ON, ORDER, ASC, DESC,
    /// LIMIT, CREATE, DROP, MATERIALIZED, VIEW).
    Keyword(String),
    /// Possibly qualified identifier (`a` or `a.b`).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// Punctuation / operator: `( ) , * + - / % = <> < <= > >=`.
    Sym(&'static str),
}

const KEYWORDS: [&str; 24] = [
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "AS",
    "AND",
    "OR",
    "NOT",
    "COUNT",
    "SUM",
    "WINDOW",
    "SLIDING",
    "TUMBLING",
    "ON",
    "ORDER",
    "ASC",
    "DESC",
    "LIMIT",
    "CREATE",
    "DROP",
    "MATERIALIZED",
    "VIEW",
];

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenize SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
            // Qualified name a.b (only when followed by an ident part).
            if i + 1 < chars.len() && chars[i] == '.' && is_ident_start(chars[i + 1]) {
                i += 1; // consume '.'
                while i < chars.len() && is_ident_char(chars[i]) {
                    i += 1;
                }
            }
            let word: String = chars[start..i].iter().collect();
            let upper = word.to_ascii_uppercase();
            if KEYWORDS.contains(&upper.as_str()) || upper == "AVG" {
                tokens.push(Token::Keyword(upper));
            } else {
                tokens.push(Token::Ident(word));
            }
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && chars[i].is_ascii_digit() {
                i += 1;
            }
            let is_float = i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit();
            if is_float {
                i += 1;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                tokens.push(Token::Float(
                    text.parse()
                        .map_err(|_| SquallError::Parse(format!("bad float literal {text}")))?,
                ));
            } else {
                let text: String = chars[start..i].iter().collect();
                tokens.push(Token::Int(
                    text.parse()
                        .map_err(|_| SquallError::Parse(format!("bad integer literal {text}")))?,
                ));
            }
            continue;
        }
        if c == '\'' {
            let start = i + 1;
            let mut j = start;
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
            if j == chars.len() {
                return Err(SquallError::Parse("unterminated string literal".into()));
            }
            tokens.push(Token::Str(chars[start..j].iter().collect()));
            i = j + 1;
            continue;
        }
        // Multi-char operators first.
        let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
        let sym = match two.as_str() {
            "<=" => Some("<="),
            ">=" => Some(">="),
            "<>" => Some("<>"),
            "!=" => Some("<>"),
            _ => None,
        };
        if let Some(s) = sym {
            tokens.push(Token::Sym(s));
            i += 2;
            continue;
        }
        let one = match c {
            '(' => "(",
            ')' => ")",
            ',' => ",",
            '*' => "*",
            '+' => "+",
            '-' => "-",
            '/' => "/",
            '%' => "%",
            '=' => "=",
            '<' => "<",
            '>' => ">",
            other => {
                return Err(SquallError::Parse(format!("unexpected character {other:?}")));
            }
        };
        tokens.push(Token::Sym(one));
        i += 1;
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_case_insensitive() {
        let t = tokenize("select From wHeRe window Sliding TUMBLING on").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Keyword("FROM".into()),
                Token::Keyword("WHERE".into()),
                Token::Keyword("WINDOW".into()),
                Token::Keyword("SLIDING".into()),
                Token::Keyword("TUMBLING".into()),
                Token::Keyword("ON".into()),
            ]
        );
    }

    #[test]
    fn qualified_identifiers() {
        let t = tokenize("W1.FromUrl = w2.ToUrl").unwrap();
        assert_eq!(t[0], Token::Ident("W1.FromUrl".into()));
        assert_eq!(t[1], Token::Sym("="));
        assert_eq!(t[2], Token::Ident("w2.ToUrl".into()));
    }

    #[test]
    fn numbers_and_strings() {
        let t = tokenize("42 3.5 'blogspot.com'").unwrap();
        assert_eq!(t, vec![Token::Int(42), Token::Float(3.5), Token::Str("blogspot.com".into())]);
    }

    #[test]
    fn operators() {
        let t = tokenize("<= >= <> != < > = + - * / % ( ) ,").unwrap();
        let syms: Vec<&str> = t
            .iter()
            .map(|tok| match tok {
                Token::Sym(s) => *s,
                _ => panic!("expected symbol"),
            })
            .collect();
        assert_eq!(
            syms,
            vec!["<=", ">=", "<>", "<>", "<", ">", "=", "+", "-", "*", "/", "%", "(", ")", ","]
        );
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ; b").is_err());
    }
}
