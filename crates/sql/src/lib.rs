//! # squall-sql
//!
//! The declarative interface (§2): "Similarly to Hive which provides an
//! SQL interface on top of Hadoop, Squall's declarative interface offers
//! running SQL over Storm." The parser covers the fragment Squall's demo
//! and evaluation queries use:
//!
//! ```sql
//! SELECT <expr | COUNT(*) | SUM(expr) | AVG(expr)> [AS name], ...
//! FROM table [AS] alias, ...
//! [WHERE conjunction of comparisons over arithmetic expressions]
//! [GROUP BY column, ...]
//! ```
//!
//! `parse` yields a [`squall_plan::Query`] logical block; planning and
//! execution are `squall-plan`'s job.
//!
//! ```
//! let q = squall_sql::parse(
//!     "SELECT W1.FromUrl, COUNT(*) \
//!      FROM WebGraph AS W1, WebGraph AS W2, WebGraph AS W3 \
//!      WHERE W1.ToUrl = W2.FromUrl AND W2.ToUrl = W3.FromUrl \
//!      GROUP BY W1.FromUrl",
//! ).unwrap();
//! assert_eq!(q.tables.len(), 3);
//! assert_eq!(q.filters.len(), 2);
//! ```

mod lexer;
mod parser;

pub use lexer::{tokenize, Token};
pub use parser::{parse, parse_statement, Statement};
