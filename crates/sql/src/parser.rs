//! Recursive-descent parser: tokens → [`squall_plan::Query`].

use squall_common::{Result, SquallError, Value};
use squall_expr::{AggFunc, BinOp};
use squall_plan::logical::{Expr, OrderKey, Query, Window};

use crate::lexer::{tokenize, Token};

/// One parsed SQL statement: a query, or a view-lifecycle command.
#[derive(Debug, Clone)]
pub enum Statement {
    /// A SELECT query.
    Select(Query),
    /// `CREATE MATERIALIZED VIEW <name> AS <select>` — launch a resident
    /// topology maintaining the query incrementally.
    CreateView {
        /// The view's name (its own namespace, distinct from sources).
        name: String,
        /// The defining SELECT.
        query: Query,
    },
    /// `DROP MATERIALIZED VIEW <name>` — tear the resident topology down.
    DropView {
        /// The view to drop.
        name: String,
    },
}

/// Parse one SELECT statement.
pub fn parse(sql: &str) -> Result<Query> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_end()?;
    Ok(q)
}

/// Parse one statement: SELECT, CREATE MATERIALIZED VIEW or DROP
/// MATERIALIZED VIEW.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = if p.eat_keyword("CREATE") {
        p.expect_keyword("MATERIALIZED")?;
        p.expect_keyword("VIEW")?;
        let name = p.ident()?;
        p.expect_keyword("AS")?;
        let query = p.query()?;
        Statement::CreateView { name, query }
    } else if p.eat_keyword("DROP") {
        p.expect_keyword("MATERIALIZED")?;
        p.expect_keyword("VIEW")?;
        Statement::DropView { name: p.ident()? }
    } else {
        Statement::Select(p.query()?)
    };
    p.expect_end()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(SquallError::Parse(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Token::Sym(x)) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(SquallError::Parse(format!("expected '{s}', found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(SquallError::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_end(&self) -> Result<()> {
        if self.pos != self.tokens.len() {
            return Err(SquallError::Parse(format!("trailing input at token {:?}", self.peek())));
        }
        Ok(())
    }

    fn query(&mut self) -> Result<Query> {
        self.expect_keyword("SELECT")?;
        let mut select = Vec::new();
        loop {
            let item = self.select_item()?;
            select.push(item);
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_keyword("FROM")?;
        let mut tables = Vec::new();
        loop {
            let name = self.ident()?;
            let alias = if self.eat_keyword("AS") {
                self.ident()?
            } else if let Some(Token::Ident(_)) = self.peek() {
                self.ident()?
            } else {
                name.clone()
            };
            tables.push((name, alias));
            if !self.eat_sym(",") {
                break;
            }
        }
        let mut q = Query { tables, select, ..Query::default() };
        if self.eat_keyword("WHERE") {
            let cond = self.disjunction()?;
            q = q.filter(cond);
        }
        // The WINDOW clause may come before or after GROUP BY.
        if self.eat_keyword("WINDOW") {
            q.window = Some(self.window_clause()?);
        }
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            let mut group = Vec::new();
            loop {
                group.push(Expr::Col(self.ident()?));
                if !self.eat_sym(",") {
                    break;
                }
            }
            q.group_by = group;
        }
        if self.eat_keyword("HAVING") {
            let cond = self.disjunction()?;
            q = q.having(cond);
        }
        if q.window.is_none() && self.eat_keyword("WINDOW") {
            q.window = Some(self.window_clause()?);
        }
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let column = self.ident()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                q.order_by.push(OrderKey { column, desc });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        if self.eat_keyword("LIMIT") {
            q.limit = Some(match self.next() {
                Some(Token::Int(i)) if i >= 0 => i as u64,
                other => {
                    return Err(SquallError::Parse(format!(
                        "LIMIT takes a non-negative integer, found {other:?}"
                    )))
                }
            });
        }
        Ok(q)
    }

    /// `WINDOW (SLIDING | TUMBLING) <n> [ON <col>]` — the WINDOW keyword
    /// has already been consumed.
    fn window_clause(&mut self) -> Result<Window> {
        let sliding = if self.eat_keyword("SLIDING") {
            true
        } else if self.eat_keyword("TUMBLING") {
            false
        } else {
            return Err(SquallError::Parse(format!(
                "expected SLIDING or TUMBLING after WINDOW, found {:?}",
                self.peek()
            )));
        };
        let n = match self.next() {
            Some(Token::Int(i)) if i > 0 => i as u64,
            other => {
                return Err(SquallError::Parse(format!(
                    "window size must be a positive integer, found {other:?}"
                )))
            }
        };
        let mut w = if sliding { Window::sliding(n) } else { Window::tumbling(n) };
        if self.eat_keyword("ON") {
            w = w.on(self.ident()?);
        }
        Ok(w)
    }

    fn select_item(&mut self) -> Result<(Expr, Option<String>)> {
        let e = self.additive()?;
        let alias = if self.eat_keyword("AS") { Some(self.ident()?) } else { None };
        Ok((e, alias))
    }

    /// OR-separated (lowest precedence).
    fn disjunction(&mut self) -> Result<Expr> {
        let mut e = self.conjunction()?;
        while self.eat_keyword("OR") {
            let rhs = self.conjunction()?;
            e = e.bin(BinOp::Or, rhs);
        }
        Ok(e)
    }

    fn conjunction(&mut self) -> Result<Expr> {
        let mut e = self.comparison()?;
        while self.eat_keyword("AND") {
            let rhs = self.comparison()?;
            e = e.bin(BinOp::And, rhs);
        }
        Ok(e)
    }

    fn comparison(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            return Ok(Expr::Not(Box::new(self.comparison()?)));
        }
        let lhs = self.additive()?;
        let op = match self.peek() {
            Some(Token::Sym("=")) => BinOp::Eq,
            Some(Token::Sym("<>")) => BinOp::Ne,
            Some(Token::Sym("<")) => BinOp::Lt,
            Some(Token::Sym("<=")) => BinOp::Le,
            Some(Token::Sym(">")) => BinOp::Gt,
            Some(Token::Sym(">=")) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.additive()?;
        Ok(lhs.bin(op, rhs))
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut e = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym("+")) => BinOp::Add,
                Some(Token::Sym("-")) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            e = e.bin(op, rhs);
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym("*")) => BinOp::Mul,
                Some(Token::Sym("/")) => BinOp::Div,
                Some(Token::Sym("%")) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.primary()?;
            e = e.bin(op, rhs);
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr> {
        // Aggregate calls parse anywhere an expression does (they appear
        // in SELECT and HAVING; the planner rejects misplaced ones).
        if let Some(Token::Keyword(k)) = self.peek() {
            if k == "COUNT" || k == "SUM" || k == "AVG" {
                let func = match k.as_str() {
                    "COUNT" => AggFunc::Count,
                    "SUM" => AggFunc::Sum,
                    _ => AggFunc::Avg,
                };
                self.pos += 1;
                self.expect_sym("(")?;
                let arg = if func == AggFunc::Count && self.eat_sym("*") {
                    None
                } else {
                    Some(Box::new(self.additive()?))
                };
                self.expect_sym(")")?;
                return Ok(Expr::Agg { func, arg });
            }
        }
        match self.next() {
            Some(Token::Ident(s)) => Ok(Expr::Col(s)),
            Some(Token::Int(i)) => Ok(Expr::Lit(Value::Int(i))),
            Some(Token::Float(f)) => Ok(Expr::Lit(Value::Float(f))),
            Some(Token::Str(s)) => Ok(Expr::Lit(Value::str(s))),
            Some(Token::Sym("(")) => {
                let e = self.disjunction()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Token::Sym("-")) => {
                let e = self.primary()?;
                Ok(Expr::Lit(Value::Int(0)).bin(BinOp::Sub, e))
            }
            other => Err(SquallError::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_one_query() {
        // The architecture figure's query: SELECT SUM(T.E) FROM R,S,T
        // WHERE R.B = S.B AND S.D = T.D AND S.C > 3.
        let q = parse("SELECT SUM(T.E) FROM R, S, T WHERE R.B = S.B AND S.D = T.D AND S.C > 3")
            .unwrap();
        assert_eq!(q.tables.len(), 3);
        assert_eq!(q.filters.len(), 3, "AND flattens");
        assert!(q.select[0].0.has_agg());
        assert!(q.group_by.is_empty());
    }

    #[test]
    fn reachability_query() {
        let q = parse(
            "SELECT W1.FromUrl, COUNT(*) \
             FROM WebGraph AS W1, WebGraph AS W2, WebGraph AS W3 \
             WHERE W1.ToUrl = W2.FromUrl AND W2.ToUrl = W3.FromUrl \
             GROUP BY W1.FromUrl",
        )
        .unwrap();
        assert_eq!(q.tables[1], ("WebGraph".to_string(), "W2".to_string()));
        assert_eq!(q.group_by, vec![Expr::Col("W1.FromUrl".into())]);
        assert_eq!(q.select.len(), 2);
    }

    #[test]
    fn webanalytics_query_with_string_literals() {
        let q = parse(
            "SELECT W1.FromUrl, Score, COUNT(*) \
             FROM WebGraph W1, WebGraph W2, CrawlContent C \
             WHERE W1.ToUrl = 'blogspot.com' AND W2.FromUrl = 'blogspot.com' \
               AND W1.ToUrl = W2.FromUrl AND W1.FromUrl = C.Url \
             GROUP BY W1.FromUrl, Score",
        )
        .unwrap();
        assert_eq!(q.tables.len(), 3);
        assert_eq!(q.filters.len(), 4);
        assert_eq!(q.group_by.len(), 2);
        // Implicit aliases (no AS keyword).
        assert_eq!(q.tables[0].1, "W1");
    }

    #[test]
    fn arithmetic_and_precedence() {
        let q = parse("SELECT a FROM R WHERE 2 * b + 1 < c").unwrap();
        // (2*b)+1 < c.
        match &q.filters[0] {
            Expr::Bin { op: BinOp::Lt, lhs, .. } => match lhs.as_ref() {
                Expr::Bin { op: BinOp::Add, lhs: mul, .. } => {
                    assert!(matches!(mul.as_ref(), Expr::Bin { op: BinOp::Mul, .. }));
                }
                other => panic!("expected Add, got {other:?}"),
            },
            other => panic!("expected Lt, got {other:?}"),
        }
    }

    #[test]
    fn aliases_and_sum_alias() {
        let q = parse("SELECT SUM(x) AS total, y AS key FROM R GROUP BY y").unwrap();
        assert_eq!(q.select[0].1.as_deref(), Some("total"));
        assert_eq!(q.select[1].1.as_deref(), Some("key"));
    }

    #[test]
    fn parenthesized_or() {
        let q = parse("SELECT a FROM R WHERE (a = 1 OR a = 2) AND b > 0").unwrap();
        // The parenthesized OR is one conjunct, b > 0 the other.
        assert_eq!(q.filters.len(), 2);
    }

    #[test]
    fn avg_and_negative_literals() {
        let q = parse("SELECT AVG(x) FROM R WHERE x > -5").unwrap();
        assert!(q.select[0].0.has_agg());
        assert_eq!(q.filters.len(), 1);
    }

    #[test]
    fn window_clause_sliding_and_tumbling() {
        use squall_plan::logical::WindowKind;
        let q = parse(
            "SELECT I.ad_id FROM impressions I, clicks C \
             WHERE I.ad_id = C.ad_id WINDOW SLIDING 30 ON ts",
        )
        .unwrap();
        let w = q.window.expect("window parsed");
        assert_eq!(w.kind, WindowKind::Sliding { size: 30 });
        assert_eq!(w.time_col.as_deref(), Some("ts"));

        // ON is optional (streams declare their event-time column).
        let q = parse("SELECT a FROM R, S WHERE R.a = S.a WINDOW TUMBLING 60").unwrap();
        let w = q.window.expect("window parsed");
        assert_eq!(w.kind, WindowKind::Tumbling { width: 60 });
        assert_eq!(w.time_col, None);
    }

    #[test]
    fn window_clause_composes_with_group_by() {
        // Before GROUP BY…
        let q = parse(
            "SELECT R.a, COUNT(*) FROM R, S WHERE R.a = S.a \
             WINDOW SLIDING 10 ON ts GROUP BY R.a",
        )
        .unwrap();
        assert!(q.window.is_some());
        assert_eq!(q.group_by.len(), 1);
        // …and after.
        let q = parse(
            "SELECT R.a, COUNT(*) FROM R, S WHERE R.a = S.a \
             GROUP BY R.a WINDOW TUMBLING 10 ON ts",
        )
        .unwrap();
        assert!(q.window.is_some());
        assert_eq!(q.group_by.len(), 1);
    }

    #[test]
    fn window_clause_errors() {
        assert!(parse("SELECT a FROM R, S WINDOW 30 ON ts").is_err(), "missing shape");
        assert!(parse("SELECT a FROM R, S WINDOW SLIDING ON ts").is_err(), "missing size");
        assert!(parse("SELECT a FROM R, S WINDOW SLIDING 0 ON ts").is_err(), "zero size");
        assert!(parse("SELECT a FROM R, S WINDOW SLIDING 30 ON").is_err(), "missing column");
    }

    #[test]
    fn having_clause_parses_aggregates_and_conjuncts() {
        let q = parse(
            "SELECT R.a, COUNT(*) FROM R, S WHERE R.a = S.a \
             GROUP BY R.a HAVING COUNT(*) > 2 AND SUM(S.c) >= 10",
        )
        .unwrap();
        assert_eq!(q.having.len(), 2, "AND flattens into conjuncts");
        assert!(q.having[0].has_agg());
        assert!(q.having[1].has_agg());
        // HAVING may reference group columns and compose with ORDER BY.
        let q = parse(
            "SELECT R.a, COUNT(*) AS n FROM R, S WHERE R.a = S.a \
             GROUP BY R.a HAVING R.a > 1 ORDER BY n DESC LIMIT 3",
        )
        .unwrap();
        assert_eq!(q.having.len(), 1);
        assert!(!q.having[0].has_agg());
        assert_eq!(q.limit, Some(3));
    }

    #[test]
    fn having_clause_errors() {
        assert!(parse("SELECT a FROM R GROUP BY a HAVING").is_err(), "missing predicate");
        assert!(parse("SELECT a FROM R HAVING COUNT( > 1").is_err(), "malformed aggregate");
    }

    #[test]
    fn order_by_and_limit() {
        let q = parse("SELECT a, b FROM R ORDER BY b DESC, a LIMIT 10").unwrap();
        assert_eq!(
            q.order_by,
            vec![
                OrderKey { column: "b".into(), desc: true },
                OrderKey { column: "a".into(), desc: false },
            ]
        );
        assert_eq!(q.limit, Some(10));
        // Explicit ASC and a bare LIMIT.
        let q = parse("SELECT a FROM R ORDER BY a ASC").unwrap();
        assert_eq!(q.order_by, vec![OrderKey { column: "a".into(), desc: false }]);
        assert_eq!(q.limit, None);
        let q = parse("SELECT a FROM R LIMIT 3").unwrap();
        assert!(q.order_by.is_empty());
        assert_eq!(q.limit, Some(3));
    }

    #[test]
    fn order_by_composes_with_group_by_and_window() {
        let q = parse(
            "SELECT R.a, COUNT(*) AS n FROM R, S WHERE R.a = S.a \
             WINDOW SLIDING 10 ON ts GROUP BY R.a ORDER BY n DESC LIMIT 5",
        )
        .unwrap();
        assert!(q.window.is_some());
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.order_by, vec![OrderKey { column: "n".into(), desc: true }]);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn order_by_and_limit_errors() {
        assert!(parse("SELECT a FROM R ORDER a").is_err(), "missing BY");
        assert!(parse("SELECT a FROM R ORDER BY").is_err(), "missing column");
        assert!(parse("SELECT a FROM R LIMIT").is_err(), "missing count");
        assert!(parse("SELECT a FROM R LIMIT b").is_err(), "non-integer count");
        assert!(parse("SELECT a FROM R LIMIT 3.5").is_err(), "float count");
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("SELECT FROM R").is_err());
        assert!(parse("SELECT a R").is_err());
        assert!(parse("SELECT a FROM R WHERE").is_err());
        assert!(parse("SELECT a FROM R extra garbage ,").is_err());
        assert!(parse("SELECT COUNT( FROM R").is_err());
    }

    #[test]
    fn view_statements_parse() {
        let s = parse_statement(
            "CREATE MATERIALIZED VIEW hot_ads AS \
             SELECT c.ad, COUNT(*) FROM clicks c, ads a \
             WHERE c.ad = a.id GROUP BY c.ad",
        )
        .unwrap();
        match s {
            Statement::CreateView { name, query } => {
                assert_eq!(name, "hot_ads");
                assert_eq!(query.tables.len(), 2);
                assert_eq!(query.group_by.len(), 1);
            }
            other => panic!("expected CreateView, got {other:?}"),
        }
        let s = parse_statement("DROP MATERIALIZED VIEW hot_ads").unwrap();
        assert!(matches!(s, Statement::DropView { name } if name == "hot_ads"));
        // Plain SELECT still routes through.
        let s = parse_statement("SELECT a FROM R").unwrap();
        assert!(matches!(s, Statement::Select(_)));
        // Malformed lifecycle statements are parse errors.
        assert!(parse_statement("CREATE VIEW v AS SELECT a FROM R").is_err());
        assert!(parse_statement("DROP MATERIALIZED VIEW").is_err());
        assert!(parse_statement("CREATE MATERIALIZED VIEW v AS SELECT a FROM R , ,").is_err());
        // `parse` itself refuses lifecycle statements.
        assert!(parse("DROP MATERIALIZED VIEW v").is_err());
    }

    #[test]
    fn taskcount_query() {
        let q = parse(
            "SELECT MACHINE_EVENTS.machineID, MACHINE_EVENTS.platform, COUNT(*) \
             FROM JOB_EVENTS, TASK_EVENTS, MACHINE_EVENTS \
             WHERE TASK_EVENTS.eventType = 3 \
               AND JOB_EVENTS.jobID = TASK_EVENTS.jobID \
               AND MACHINE_EVENTS.machineID = TASK_EVENTS.machineID \
             GROUP BY MACHINE_EVENTS.machineID, MACHINE_EVENTS.platform",
        )
        .unwrap();
        assert_eq!(q.tables.len(), 3);
        assert_eq!(q.filters.len(), 3);
        assert_eq!(q.group_by.len(), 2);
    }
}
