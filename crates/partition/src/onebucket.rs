//! The 1-Bucket scheme of Okcan & Riedewald \[54\]: random partitioning over
//! a matrix (a 2-dimensional hypercube).
//!
//! Each R tuple picks a random *row* and is replicated across that row's
//! columns; each S tuple picks a random *column* and is replicated across
//! its rows. Every (r, s) pair meets on exactly one machine, for *any* join
//! condition — the content-insensitive scheme that anchors the skew-
//! resilient end of the SAR spectrum (§5).

use squall_common::{Result, SquallError};

use crate::hypercube::{Dimension, HypercubeScheme, PartitionKind};

/// Build the optimal 1-Bucket matrix for a 2-way join with the given
/// (estimated) relation sizes over at most `machines` machines.
///
/// The optimal shape balances `|R|/rows + |S|/cols` subject to
/// `rows·cols ≤ machines` (integer sizes, per \[26\]).
pub fn one_bucket(r_size: u64, s_size: u64, machines: usize, seed: u64) -> Result<HypercubeScheme> {
    let (rows, cols) = optimal_matrix(r_size, s_size, machines)?;
    Ok(matrix_scheme(rows, cols, seed))
}

/// The load-minimizing integer matrix shape.
pub fn optimal_matrix(r_size: u64, s_size: u64, machines: usize) -> Result<(usize, usize)> {
    if machines == 0 {
        return Err(SquallError::InvalidPartitioning("zero machines".into()));
    }
    let mut best = (1usize, 1usize);
    let mut best_load = f64::INFINITY;
    for rows in 1..=machines {
        let cols = machines / rows;
        if cols == 0 {
            break;
        }
        let load = r_size as f64 / rows as f64 + s_size as f64 / cols as f64;
        if load < best_load - 1e-12 {
            best_load = load;
            best = (rows, cols);
        }
    }
    Ok(best)
}

/// Build a 1-Bucket scheme with an explicit shape (used by the adaptive
/// operator when it re-shapes at run time, \[32\]).
pub fn matrix_scheme(rows: usize, cols: usize, seed: u64) -> HypercubeScheme {
    HypercubeScheme::new(
        2,
        vec![
            Dimension {
                name: "~R".into(),
                size: rows,
                kind: PartitionKind::Random,
                members: vec![(0, 0)],
            },
            Dimension {
                name: "~S".into(),
                size: cols,
                kind: PartitionKind::Random,
                members: vec![(1, 0)],
            },
        ],
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::{tuple, SplitMix64};

    #[test]
    fn equal_sizes_square_matrix() {
        assert_eq!(optimal_matrix(100, 100, 16).unwrap(), (4, 4));
        assert_eq!(optimal_matrix(100, 100, 64).unwrap(), (8, 8));
    }

    #[test]
    fn skewed_sizes_rectangular_matrix() {
        // |R| = 4|S| → rows:cols = 2:1 at 8 machines... the integer search
        // finds the true optimum.
        let (rows, cols) = optimal_matrix(400, 100, 16).unwrap();
        let load = 400.0 / rows as f64 + 100.0 / cols as f64;
        // Brute-force optimum check.
        for r in 1..=16 {
            let c = 16 / r;
            if c == 0 {
                continue;
            }
            assert!(load <= 400.0 / r as f64 + 100.0 / c as f64 + 1e-12);
        }
        assert_eq!((rows, cols), (8, 2));
    }

    #[test]
    fn tiny_machine_counts() {
        assert_eq!(optimal_matrix(10, 10, 1).unwrap(), (1, 1));
        let (r, c) = optimal_matrix(10, 10, 3).unwrap();
        assert!(r * c <= 3);
    }

    #[test]
    fn every_pair_meets_exactly_once() {
        let scheme = one_bucket(50, 50, 16, 7).unwrap();
        let mut rng = SplitMix64::new(3);
        for i in 0..30i64 {
            for j in 0..30i64 {
                let (mut mr, mut ms) = (vec![], vec![]);
                let r = tuple![i];
                let s = tuple![j];
                scheme.route(0, &r, &mut rng, &mut mr);
                scheme.route(1, &s, &mut rng, &mut ms);
                let meet = mr.iter().filter(|m| ms.contains(m)).count();
                assert_eq!(meet, 1);
            }
        }
    }

    #[test]
    fn content_insensitive_load_balance() {
        // All tuples share one key (extreme skew) — 1-Bucket must still
        // balance rows perfectly in expectation.
        let scheme = one_bucket(1000, 1000, 16, 7).unwrap();
        let mut rng = SplitMix64::new(3);
        let mut per_machine = [0usize; 16];
        let mut out = vec![];
        for _ in 0..4000 {
            scheme.route(0, &tuple![42], &mut rng, &mut out);
            for &m in &out {
                per_machine[m] += 1;
            }
        }
        let max = *per_machine.iter().max().unwrap() as f64;
        let avg = per_machine.iter().sum::<usize>() as f64 / 16.0;
        assert!(max / avg < 1.15, "skew degree {} too high for random scheme", max / avg);
    }

    #[test]
    fn zero_machines_rejected() {
        assert!(one_bucket(1, 1, 0, 0).is_err());
    }
}
