//! The Equi-Weight Histogram (EWH) scheme — Vitorovic, Elseidy & Koch,
//! ICDE 2016 \[66\], summarized in §3.1 of the Squall paper.
//!
//! Like M-Bucket, EWH range-partitions both inputs and assigns only
//! candidate cells. The difference is *what it balances*: EWH "provides an
//! efficient parallel scheme for capturing the input and **output**
//! distribution from the join to a matrix" and tiles the matrix into
//! regions of approximately equal **output** weight. Under join product
//! skew (hot keys whose cells produce quadratically many results) M-Bucket
//! balances input but leaves one machine with most of the output work; EWH
//! balances the work itself and "works well for any data distribution".
//!
//! Output weights are estimated by joining the two *samples* inside each
//! candidate cell — a faithful, laptop-sized stand-in for the paper's
//! parallel distribution-capture pass.

use squall_common::{Result, Tuple};
use squall_runtime::CustomGrouping;

use crate::grid::{bucket_of, equi_depth_bounds, RangeCond, RangeGrid};

/// EWH: candidate cells weighted by estimated output.
#[derive(Debug, Clone)]
pub struct EwhScheme {
    pub grid: RangeGrid,
    r_col: usize,
    s_col: usize,
}

impl EwhScheme {
    /// Build from key samples of both sides.
    pub fn build(
        r_sample: &[i64],
        s_sample: &[i64],
        r_col: usize,
        s_col: usize,
        cond: RangeCond,
        machines: usize,
        granularity: usize,
    ) -> Result<EwhScheme> {
        let r_bounds = equi_depth_bounds(r_sample, granularity);
        let s_bounds = equi_depth_bounds(s_sample, granularity);
        // Bucketize the samples once.
        let rows = r_bounds.len() + 1;
        let cols = s_bounds.len() + 1;
        let mut r_by_bucket: Vec<Vec<i64>> = vec![Vec::new(); rows];
        for &k in r_sample {
            r_by_bucket[bucket_of(&r_bounds, k)].push(k);
        }
        let mut s_by_bucket: Vec<Vec<i64>> = vec![Vec::new(); cols];
        for &k in s_sample {
            s_by_bucket[bucket_of(&s_bounds, k)].push(k);
        }
        // Output weight of a cell = matching sample pairs inside it
        // (+ a small input term so empty-output cells still carry their
        // shipping cost).
        let weight = |i: usize, j: usize| -> f64 {
            let rs = &r_by_bucket[i];
            let ss = &s_by_bucket[j];
            let mut matches = 0usize;
            for &r in rs {
                for &s in ss {
                    if cond.matches(r, s) {
                        matches += 1;
                    }
                }
            }
            matches as f64 + 0.01 * (rs.len() + ss.len()) as f64
        };
        let grid = RangeGrid::build(r_bounds, s_bounds, cond, machines, &weight)?;
        Ok(EwhScheme { grid, r_col, s_col })
    }

    pub fn r_grouping(self: &std::sync::Arc<Self>) -> EwhSideGrouping {
        EwhSideGrouping { scheme: std::sync::Arc::clone(self), left: true }
    }

    pub fn s_grouping(self: &std::sync::Arc<Self>) -> EwhSideGrouping {
        EwhSideGrouping { scheme: std::sync::Arc::clone(self), left: false }
    }
}

/// Runtime adapter for one side of an [`EwhScheme`].
pub struct EwhSideGrouping {
    scheme: std::sync::Arc<EwhScheme>,
    left: bool,
}

impl CustomGrouping for EwhSideGrouping {
    fn route(
        &self,
        _sender: usize,
        _seq: u64,
        tuple: &Tuple,
        n_targets: usize,
        out: &mut Vec<usize>,
    ) {
        let targets = if self.left {
            let k = tuple.get(self.scheme.r_col).as_int().expect("integer key");
            self.scheme.grid.route_r(k)
        } else {
            let k = tuple.get(self.scheme.s_col).as_int().expect("integer key");
            self.scheme.grid.route_s(k)
        };
        debug_assert!(self.scheme.grid.machines <= n_targets);
        out.extend_from_slice(targets);
    }

    fn name(&self) -> &str {
        "ewh"
    }
}

/// Exact per-machine *output* counts for a dataset under a grid — the
/// quantity EWH balances and M-Bucket does not. (Test/bench helper;
/// quadratic, use on small data.)
pub fn output_per_machine(grid: &RangeGrid, r_keys: &[i64], s_keys: &[i64]) -> Vec<u64> {
    let mut counts = vec![0u64; grid.machines];
    for &r in r_keys {
        for &s in s_keys {
            if grid.cond.matches(r, s) {
                if let Some(m) = grid.owner_of(r, s) {
                    counts[m] += 1;
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mbucket::MBucketScheme;
    use squall_common::SplitMix64;

    fn skew_deg(counts: &[u64]) -> f64 {
        let max = *counts.iter().max().unwrap() as f64;
        let avg = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }

    /// Keys with join product skew spread over a *region*: half the input
    /// mass sits in a dense low-key region (keys 0..100, each duplicated,
    /// so band cells there produce quadratically more output), the other
    /// half is sparse (unique keys over a wide range). M-Bucket balances
    /// *cells*; the dense region's cells do most of the output work.
    fn product_skewed_keys(n: usize, seed: u64) -> Vec<i64> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                if rng.next_f64() < 0.5 {
                    rng.next_below(100) as i64
                } else {
                    1_000 + rng.next_below(1_000_000) as i64
                }
            })
            .collect()
    }

    #[test]
    fn correctness_every_matching_pair_owned_once() {
        let r = product_skewed_keys(400, 1);
        let s = product_skewed_keys(400, 2);
        let cond = RangeCond::Band(2);
        let scheme = EwhScheme::build(&r, &s, 0, 0, cond, 8, 16).unwrap();
        for &rk in r.iter().take(50) {
            for &sk in s.iter().take(50) {
                if cond.matches(rk, sk) {
                    let o = scheme.grid.owner_of(rk, sk).unwrap();
                    assert!(scheme.grid.route_r(rk).contains(&o));
                    assert!(scheme.grid.route_s(sk).contains(&o));
                }
            }
        }
    }

    #[test]
    fn ewh_balances_output_better_than_mbucket_under_product_skew() {
        // The §3.1 claim: "The M-Bucket scheme is prone to join product
        // skew. In contrast, the EWH scheme works well for any data
        // distribution."
        let r = product_skewed_keys(3000, 11);
        let s = product_skewed_keys(3000, 22);
        let cond = RangeCond::Band(1);
        let machines = 8;
        let ewh = EwhScheme::build(&r, &s, 0, 0, cond, machines, 32).unwrap();
        let mb = MBucketScheme::build(&r, &s, 0, 0, cond, machines, 32).unwrap();
        let ewh_out = output_per_machine(&ewh.grid, &r, &s);
        let mb_out = output_per_machine(&mb.grid, &r, &s);
        assert_eq!(
            ewh_out.iter().sum::<u64>(),
            mb_out.iter().sum::<u64>(),
            "both schemes must produce the same join output"
        );
        let (e, m) = (skew_deg(&ewh_out), skew_deg(&mb_out));
        assert!(e < m * 0.75, "EWH output skew {e:.2} should clearly beat M-Bucket {m:.2}");
    }

    #[test]
    fn uniform_data_both_schemes_fine() {
        let keys: Vec<i64> = (0..4000).collect();
        let cond = RangeCond::Band(3);
        let ewh = EwhScheme::build(&keys, &keys, 0, 0, cond, 8, 32).unwrap();
        let out = output_per_machine(&ewh.grid, &keys, &keys);
        assert!(skew_deg(&out) < 2.0, "skew {:.2}", skew_deg(&out));
    }

    #[test]
    fn grouping_adapter_works() {
        use squall_common::tuple;
        let keys: Vec<i64> = (0..100).collect();
        let scheme = std::sync::Arc::new(
            EwhScheme::build(&keys, &keys, 0, 0, RangeCond::Band(1), 4, 8).unwrap(),
        );
        let mut out = vec![];
        scheme.r_grouping().route(0, 0, &tuple![5], 4, &mut out);
        assert!(!out.is_empty());
    }
}
