//! Shared machinery for the range-partitioning 2-way join schemes
//! (M-Bucket \[54\] and EWH \[66\]).
//!
//! Both schemes view the join `R ⋈_θ S` as a matrix: rows are ranges of the
//! R-side key, columns ranges of the S-side key (boundaries from equi-depth
//! sample histograms). For *band and inequality* conditions only the cells
//! near/below the diagonal can produce output; those **candidate cells**
//! are assigned to machines and everything else is simply never shipped —
//! the advantage over 1-Bucket ("large continuous matrix portions that
//! produce no output ... are not assigned to machines", §3.1).
//!
//! Candidacy is decided from bucket *ranges* and the condition's geometry,
//! never from the sample, so routing is exact: a matching pair always lands
//! in a candidate cell. The sample only influences *balance*.

use squall_common::{Result, SquallError, Tuple, Value};
use squall_expr::join_cond::CmpOp;

/// The join conditions the range schemes support (integer keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeCond {
    /// `|r − s| ≤ width`.
    Band(i64),
    /// `r op s` for an inequality operator.
    Cmp(CmpOp),
}

impl RangeCond {
    /// Does the condition hold for a concrete pair?
    pub fn matches(&self, r: i64, s: i64) -> bool {
        match self {
            RangeCond::Band(w) => (r - s).abs() <= *w,
            RangeCond::Cmp(op) => op.eval(&Value::Int(r), &Value::Int(s)),
        }
    }

    /// Can *any* pair drawn from the two inclusive ranges match?
    fn ranges_can_match(&self, r_lo: i64, r_hi: i64, s_lo: i64, s_hi: i64) -> bool {
        match self {
            RangeCond::Band(w) => {
                r_lo.saturating_sub(*w) <= s_hi && s_lo.saturating_sub(*w) <= r_hi
            }
            RangeCond::Cmp(CmpOp::Lt) => r_lo < s_hi,
            RangeCond::Cmp(CmpOp::Le) => r_lo <= s_hi,
            RangeCond::Cmp(CmpOp::Gt) => r_hi > s_lo,
            RangeCond::Cmp(CmpOp::Ge) => r_hi >= s_lo,
            RangeCond::Cmp(CmpOp::Eq) => r_lo <= s_hi && s_lo <= r_hi,
            RangeCond::Cmp(CmpOp::Ne) => true,
        }
    }
}

/// Equi-depth histogram boundaries from a sample: `g-1` split points
/// producing `g` buckets. Bucket `i` covers `(bounds[i-1], bounds[i]]` with
/// open ends at ±∞.
pub fn equi_depth_bounds(sample: &[i64], buckets: usize) -> Vec<i64> {
    assert!(buckets > 0);
    let mut sorted: Vec<i64> = sample.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.is_empty() {
        return Vec::new();
    }
    let mut bounds = Vec::with_capacity(buckets.saturating_sub(1));
    for i in 1..buckets {
        let idx = i * sorted.len() / buckets;
        if idx < sorted.len() {
            let b = sorted[idx];
            if bounds.last() != Some(&b) {
                bounds.push(b);
            }
        }
    }
    bounds
}

/// Index of the bucket holding `v` given boundaries (see
/// [`equi_depth_bounds`]): the first `i` with `v <= bounds[i]`, else the
/// last bucket.
pub fn bucket_of(bounds: &[i64], v: i64) -> usize {
    bounds.partition_point(|&b| b < v)
}

/// Inclusive value range of bucket `i`.
pub fn bucket_range(bounds: &[i64], i: usize) -> (i64, i64) {
    let lo = if i == 0 { i64::MIN } else { bounds[i - 1].saturating_add(1) };
    let hi = if i < bounds.len() { bounds[i] } else { i64::MAX };
    (lo, hi)
}

/// A fully assigned candidate-cell grid.
#[derive(Debug, Clone)]
pub struct RangeGrid {
    pub r_bounds: Vec<i64>,
    pub s_bounds: Vec<i64>,
    pub cond: RangeCond,
    /// `owner[row][col]`: machine owning the cell, `None` for non-candidate
    /// cells.
    pub owner: Vec<Vec<Option<u32>>>,
    /// Machines owning at least one candidate cell of the row / column.
    row_targets: Vec<Vec<usize>>,
    col_targets: Vec<Vec<usize>>,
    pub machines: usize,
}

impl RangeGrid {
    /// Assemble a grid: compute candidate cells, weight them with
    /// `cell_weight(row, col)`, then assign contiguous runs of candidate
    /// cells (row-major sweep) so every machine carries ≈ total/p weight.
    pub fn build(
        r_bounds: Vec<i64>,
        s_bounds: Vec<i64>,
        cond: RangeCond,
        machines: usize,
        cell_weight: &dyn Fn(usize, usize) -> f64,
    ) -> Result<RangeGrid> {
        if machines == 0 {
            return Err(SquallError::InvalidPartitioning("zero machines".into()));
        }
        let rows = r_bounds.len() + 1;
        let cols = s_bounds.len() + 1;
        let mut candidate = vec![vec![false; cols]; rows];
        let mut total_weight = 0.0;
        let mut weights = vec![vec![0.0f64; cols]; rows];
        for (i, cand_row) in candidate.iter_mut().enumerate() {
            let (rlo, rhi) = bucket_range(&r_bounds, i);
            for (j, cand) in cand_row.iter_mut().enumerate() {
                let (slo, shi) = bucket_range(&s_bounds, j);
                if cond.ranges_can_match(rlo, rhi, slo, shi) {
                    *cand = true;
                    let w = cell_weight(i, j).max(1e-9);
                    weights[i][j] = w;
                    total_weight += w;
                }
            }
        }
        // Row-major sweep: cut a new machine region when the running
        // weight reaches total/p.
        let per_machine = total_weight / machines as f64;
        let mut owner = vec![vec![None; cols]; rows];
        let mut machine = 0u32;
        let mut acc = 0.0;
        for i in 0..rows {
            for j in 0..cols {
                if !candidate[i][j] {
                    continue;
                }
                owner[i][j] = Some(machine);
                acc += weights[i][j];
                if acc >= per_machine && (machine as usize) < machines - 1 {
                    machine += 1;
                    acc = 0.0;
                }
            }
        }
        // Target lists.
        let mut row_targets = vec![Vec::new(); rows];
        let mut col_targets = vec![Vec::new(); cols];
        for (i, owner_row) in owner.iter().enumerate() {
            for (j, o) in owner_row.iter().enumerate() {
                if let Some(m) = o {
                    let m = *m as usize;
                    if !row_targets[i].contains(&m) {
                        row_targets[i].push(m);
                    }
                    if !col_targets[j].contains(&m) {
                        col_targets[j].push(m);
                    }
                }
            }
        }
        Ok(RangeGrid { r_bounds, s_bounds, cond, owner, row_targets, col_targets, machines })
    }

    pub fn rows(&self) -> usize {
        self.r_bounds.len() + 1
    }

    pub fn cols(&self) -> usize {
        self.s_bounds.len() + 1
    }

    /// Machines an R tuple with key `k` must reach.
    pub fn route_r(&self, k: i64) -> &[usize] {
        &self.row_targets[bucket_of(&self.r_bounds, k)]
    }

    /// Machines an S tuple with key `k` must reach.
    pub fn route_s(&self, k: i64) -> &[usize] {
        &self.col_targets[bucket_of(&self.s_bounds, k)]
    }

    /// The unique machine responsible for producing the pair `(r, s)`, if
    /// the pair can match at all.
    pub fn owner_of(&self, r: i64, s: i64) -> Option<usize> {
        let i = bucket_of(&self.r_bounds, r);
        let j = bucket_of(&self.s_bounds, s);
        self.owner[i][j].map(|m| m as usize)
    }

    /// Does machine `m` own the cell of the pair `(r, s)`? The local theta
    /// join calls this to guarantee exactly-once output when a machine owns
    /// several cells.
    pub fn owns(&self, m: usize, r: i64, s: i64) -> bool {
        self.owner_of(r, s) == Some(m)
    }

    /// Total candidate cells (the work the scheme ships, ∝ replication).
    pub fn candidate_cells(&self) -> usize {
        self.owner.iter().flatten().filter(|o| o.is_some()).count()
    }

    /// Average number of machines an input tuple of each side reaches.
    pub fn avg_replication(&self) -> (f64, f64) {
        let r = self.row_targets.iter().map(|t| t.len()).sum::<usize>() as f64 / self.rows() as f64;
        let s = self.col_targets.iter().map(|t| t.len()).sum::<usize>() as f64 / self.cols() as f64;
        (r, s)
    }
}

/// Extract an integer key column from tuples, for sampling.
pub fn int_keys<'a>(tuples: impl IntoIterator<Item = &'a Tuple>, col: usize) -> Vec<i64> {
    tuples
        .into_iter()
        .map(|t| t.get(col).as_int().expect("range schemes need integer keys"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_depth_bounds_split_evenly() {
        let sample: Vec<i64> = (0..100).collect();
        let bounds = equi_depth_bounds(&sample, 4);
        assert_eq!(bounds, vec![25, 50, 75]);
        assert_eq!(bucket_of(&bounds, 0), 0);
        assert_eq!(bucket_of(&bounds, 25), 0);
        assert_eq!(bucket_of(&bounds, 26), 1);
        assert_eq!(bucket_of(&bounds, 99), 3);
        assert_eq!(bucket_of(&bounds, 1_000_000), 3);
    }

    #[test]
    fn equi_depth_handles_duplicates() {
        // A heavy key occupies one boundary at most once.
        let mut sample = vec![5i64; 1000];
        sample.extend(0..10);
        let bounds = equi_depth_bounds(&sample, 4);
        let mut dedup = bounds.clone();
        dedup.dedup();
        assert_eq!(bounds, dedup, "boundaries must be strictly increasing");
    }

    #[test]
    fn bucket_ranges_partition_the_domain() {
        let bounds = vec![10i64, 20, 30];
        let mut prev_hi = None;
        for i in 0..4 {
            let (lo, hi) = bucket_range(&bounds, i);
            assert!(lo <= hi);
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1i64, "ranges must tile without gaps");
            }
            prev_hi = Some(hi);
        }
        assert_eq!(bucket_range(&bounds, 0).0, i64::MIN);
        assert_eq!(bucket_range(&bounds, 3).1, i64::MAX);
    }

    #[test]
    fn band_candidacy_geometry() {
        let c = RangeCond::Band(5);
        assert!(c.ranges_can_match(0, 10, 12, 20)); // 10 vs 12 within 5
        assert!(!c.ranges_can_match(0, 10, 16, 20)); // gap 6 > 5
        assert!(c.ranges_can_match(0, 10, 3, 4)); // overlap
        let lt = RangeCond::Cmp(CmpOp::Lt);
        assert!(lt.ranges_can_match(0, 10, 5, 7)); // 0 < 7
        assert!(!lt.ranges_can_match(10, 20, 0, 9)); // no r < s possible
    }

    #[test]
    fn matching_pairs_always_land_in_candidate_cells() {
        let r_keys: Vec<i64> = (0..200).map(|i| i * 3 % 101).collect();
        let s_keys: Vec<i64> = (0..200).map(|i| i * 7 % 97).collect();
        let cond = RangeCond::Band(2);
        let grid = RangeGrid::build(
            equi_depth_bounds(&r_keys, 8),
            equi_depth_bounds(&s_keys, 8),
            cond,
            4,
            &|_, _| 1.0,
        )
        .unwrap();
        for &r in &r_keys {
            for &s in &s_keys {
                if cond.matches(r, s) {
                    let owner = grid.owner_of(r, s).expect("matching pair must have an owner");
                    assert!(grid.route_r(r).contains(&owner), "owner receives r");
                    assert!(grid.route_s(s).contains(&owner), "owner receives s");
                }
            }
        }
    }

    #[test]
    fn exactly_one_owner_per_pair() {
        let keys: Vec<i64> = (0..100).collect();
        let grid = RangeGrid::build(
            equi_depth_bounds(&keys, 10),
            equi_depth_bounds(&keys, 10),
            RangeCond::Cmp(CmpOp::Lt),
            6,
            &|_, _| 1.0,
        )
        .unwrap();
        // owner_of is a function: trivially unique. Verify `owns` agrees
        // and that exactly one machine answers true.
        for r in (0..100).step_by(7) {
            for s in (0..100).step_by(11) {
                if r < s {
                    let owners: Vec<usize> = (0..6).filter(|&m| grid.owns(m, r, s)).collect();
                    assert_eq!(owners.len(), 1);
                }
            }
        }
    }

    #[test]
    fn band_join_prunes_most_cells() {
        // The selling point vs 1-Bucket: a narrow band over a wide domain
        // assigns only the near-diagonal cells.
        let keys: Vec<i64> = (0..10_000).collect();
        let grid = RangeGrid::build(
            equi_depth_bounds(&keys, 32),
            equi_depth_bounds(&keys, 32),
            RangeCond::Band(10),
            8,
            &|_, _| 1.0,
        )
        .unwrap();
        let total_cells = grid.rows() * grid.cols();
        assert!(
            grid.candidate_cells() * 5 < total_cells,
            "only near-diagonal cells should be candidates: {}/{total_cells}",
            grid.candidate_cells()
        );
        let (rr, rs) = grid.avg_replication();
        assert!(rr < 3.0 && rs < 3.0, "replication {rr}/{rs} should be small");
    }

    #[test]
    fn inequality_join_covers_half_matrix() {
        let keys: Vec<i64> = (0..1000).collect();
        let grid = RangeGrid::build(
            equi_depth_bounds(&keys, 8),
            equi_depth_bounds(&keys, 8),
            RangeCond::Cmp(CmpOp::Lt),
            4,
            &|_, _| 1.0,
        )
        .unwrap();
        // Roughly the upper triangle (plus the diagonal cells).
        let cells = grid.candidate_cells();
        assert!((36..=44).contains(&cells), "got {cells}");
    }

    #[test]
    fn zero_machines_rejected() {
        assert!(RangeGrid::build(vec![], vec![], RangeCond::Band(1), 0, &|_, _| 1.0).is_err());
    }
}
