//! Temporal-skew analysis (§5).
//!
//! Temporal skew is load imbalance caused by the tuple *arrival order*
//! rather than the key distribution: under hash or range partitioning, a
//! sorted stream activates one machine at a time ("equivalent to a
//! sequential execution"), even when the overall key distribution is
//! uniform. Content-insensitive (random) schemes are immune.
//!
//! The measurable signature is the number of *distinct machines active in a
//! window of consecutive tuples*: ≈1 for a sorted stream under hash
//! partitioning, ≈min(window, p) under random partitioning. This module
//! computes that profile for any grouping over any stream.

use squall_common::Tuple;
use squall_runtime::Grouping;

/// Distinct target machines per window of `window` consecutive tuples.
pub fn active_machines_profile(
    targets: impl IntoIterator<Item = usize>,
    window: usize,
) -> Vec<usize> {
    assert!(window > 0);
    let mut profile = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    let mut n = 0usize;
    for t in targets {
        if !current.contains(&t) {
            current.push(t);
        }
        n += 1;
        if n == window {
            profile.push(current.len());
            current.clear();
            n = 0;
        }
    }
    if n > 0 {
        profile.push(current.len());
    }
    profile
}

/// Mean of the active-machine profile — the paper's indirect measure of
/// temporal skew ("we also need to capture the temporal skew, which we can
/// do indirectly by monitoring the machine load").
pub fn mean_active_machines(
    grouping: &Grouping,
    tuples: impl IntoIterator<Item = Tuple>,
    machines: usize,
    window: usize,
) -> f64 {
    let mut scratch = Vec::new();
    let mut targets = Vec::new();
    for (seq, t) in tuples.into_iter().enumerate() {
        grouping.route(0, seq as u64, &t, machines, &mut scratch);
        // For replicated routings, count the first (primary) target; the
        // temporal-skew question is about where *work* concentrates.
        targets.extend(scratch.iter().copied());
    }
    let profile = active_machines_profile(targets, window);
    if profile.is_empty() {
        0.0
    } else {
        profile.iter().sum::<usize>() as f64 / profile.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::tuple;

    /// A sorted stream: key increases slowly (run length 100), the §5
    /// "sorted tuple arrival and moderate join key frequencies" case.
    fn sorted_stream(n: usize) -> Vec<Tuple> {
        (0..n).map(|i| tuple![(i / 100) as i64]).collect()
    }

    #[test]
    fn profile_basic() {
        assert_eq!(active_machines_profile([0, 0, 1, 1, 2, 2], 2), vec![1, 1, 1]);
        assert_eq!(active_machines_profile([0, 1, 2, 3], 4), vec![4]);
        assert_eq!(active_machines_profile([0, 1, 0], 2), vec![2, 1]);
        assert_eq!(active_machines_profile(Vec::<usize>::new(), 3), Vec::<usize>::new());
    }

    #[test]
    fn sorted_stream_under_hash_is_sequential() {
        // §5: "for hash partitioning, in the case of sorted tuple arrival
        // ... only one machine will be active at a time."
        let mean = mean_active_machines(&Grouping::Fields(vec![0]), sorted_stream(10_000), 8, 50);
        assert!(mean < 1.6, "hash on sorted arrival should be ~sequential, got {mean}");
    }

    #[test]
    fn sorted_stream_under_shuffle_uses_all_machines() {
        // Content-insensitive schemes "perform the same independently of
        // tuple arrival order".
        let mean = mean_active_machines(&Grouping::Shuffle, sorted_stream(10_000), 8, 50);
        assert!(mean > 7.5, "shuffle should keep all 8 machines active, got {mean}");
    }

    #[test]
    fn random_stream_under_hash_is_fine() {
        // Temporal skew is an *ordering* problem: the same keys shuffled
        // keep all machines busy under hash partitioning too.
        let mut tuples = sorted_stream(10_000);
        let mut rng = squall_common::SplitMix64::new(3);
        rng.shuffle(&mut tuples);
        let mean = mean_active_machines(&Grouping::Fields(vec![0]), tuples, 8, 50);
        assert!(mean > 5.0, "shuffled arrival removes temporal skew, got {mean}");
    }
}
