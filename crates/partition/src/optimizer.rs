//! The hypercube optimization algorithms of §4.
//!
//! All three schemes share one integer dimension-sizing step (the
//! breadth-first enumeration of Chu et al. \[26\], which avoids the
//! non-integer dimension sizes of the original formulations [8, 18]): given
//! dimension descriptors and relation sizes, enumerate every size vector
//! with `∏ pⱼ ≤ p` and keep the one minimizing the per-machine load
//! `L = Σᵢ |Rᵢ| / ∏_{j ∋ Rᵢ} pⱼ`, breaking ties by total communication and
//! then lexicographically (determinism).
//!
//! * **Hash-Hypercube** \[8\]: one dimension per join-key equivalence class
//!   (the paper's observation that *join keys suffice* — non-join
//!   attributes never improve the load).
//! * **Random-Hypercube** \[74\]: reduced to the Hash-Hypercube problem by
//!   introducing one fresh *quasi-attribute* per relation (the paper's
//!   reduction), then using random placement on every dimension.
//! * **Hybrid-Hypercube** (the paper's contribution): rename each *skewed*
//!   join-key occurrence onto its own randomly partitioned dimension, keep
//!   skew-free occurrences shared and hashed, give every theta-atom side a
//!   (hash or random) dimension unless it already has one, then run the
//!   same sizing step. Dimensions sized 1 vanish — the paper's
//!   dimensionality reduction.

use squall_common::{Result, SquallError};
use squall_expr::MultiJoinSpec;

use crate::hypercube::{Dimension, HypercubeScheme, PartitionKind};

/// Which §3.1 scheme to build (used by callers that sweep all three).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    Hash,
    Random,
    Hybrid,
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemeKind::Hash => write!(f, "Hash-Hypercube"),
            SchemeKind::Random => write!(f, "Random-Hypercube"),
            SchemeKind::Hybrid => write!(f, "Hybrid-Hypercube"),
        }
    }
}

/// Build the scheme of the given kind (convenience dispatcher).
pub fn build_scheme(
    kind: SchemeKind,
    spec: &MultiJoinSpec,
    machines: usize,
    seed: u64,
) -> Result<HypercubeScheme> {
    match kind {
        SchemeKind::Hash => hash_hypercube(spec, machines, seed),
        SchemeKind::Random => random_hypercube(spec, machines, seed),
        SchemeKind::Hybrid => hybrid_hypercube(spec, machines, seed),
    }
}

/// Hash-Hypercube \[8\]: dimensions are the join-key equivalence classes,
/// hash partitioned. Rejects non-equi joins (the scheme cannot express
/// them, §3.1).
pub fn hash_hypercube(spec: &MultiJoinSpec, machines: usize, seed: u64) -> Result<HypercubeScheme> {
    if spec.theta_atoms().next().is_some() {
        return Err(SquallError::InvalidPartitioning(
            "Hash-Hypercube supports only equi-joins".into(),
        ));
    }
    let classes: Vec<_> = spec.key_classes().into_iter().filter(|c| c.is_join_key()).collect();
    if classes.is_empty() {
        return Err(SquallError::InvalidPartitioning(
            "Hash-Hypercube needs at least one join key".into(),
        ));
    }
    let dims: Vec<Dimension> = classes
        .iter()
        .map(|c| {
            let (rel, col) = c.members[0];
            Dimension {
                name: spec.relations[rel].schema.field(col).name.clone(),
                size: 1,
                kind: PartitionKind::Hash,
                members: c.members.clone(),
            }
        })
        .collect();
    size_dimensions(spec, dims, machines, seed)
}

/// Random-Hypercube \[74\] via the paper's quasi-attribute reduction: one
/// fresh dimension per relation, randomly partitioned. Supports any
/// condition (the condition is evaluated locally).
pub fn random_hypercube(
    spec: &MultiJoinSpec,
    machines: usize,
    seed: u64,
) -> Result<HypercubeScheme> {
    let dims: Vec<Dimension> = spec
        .relations
        .iter()
        .enumerate()
        .map(|(rel, r)| Dimension {
            name: format!("~{}", r.name),
            size: 1,
            kind: PartitionKind::Random,
            members: vec![(rel, 0)],
        })
        .collect();
    size_dimensions(spec, dims, machines, seed)
}

/// Hybrid-Hypercube (§3.1, §4): the scheme that subsumes the other two.
///
/// Skew hints are read from the relations' schemas
/// ([`squall_common::Field::skew_free`]); "a user needs to provide only the
/// relation sizes and whether each join key is skew-free or not" (§4).
pub fn hybrid_hypercube(
    spec: &MultiJoinSpec,
    machines: usize,
    seed: u64,
) -> Result<HypercubeScheme> {
    let mut dims: Vec<Dimension> = Vec::new();

    // 1. Equi classes: shared hash dimension for skew-free occurrences,
    //    a private random dimension per skewed occurrence (renaming).
    for class in spec.key_classes().into_iter().filter(|c| c.is_join_key()) {
        let (free, skewed): (Vec<_>, Vec<_>) =
            class.members.iter().copied().partition(|&(rel, col)| spec.is_skew_free(rel, col));
        let base_name = {
            let (rel, col) = class.members[0];
            spec.relations[rel].schema.field(col).name.clone()
        };
        if !free.is_empty() {
            dims.push(Dimension {
                name: base_name.clone(),
                size: 1,
                kind: PartitionKind::Hash,
                members: free,
            });
        }
        for (i, (rel, col)) in skewed.into_iter().enumerate() {
            dims.push(Dimension {
                name: format!("{base_name}{}@{}", "'".repeat(i + 1), spec.relations[rel].name),
                size: 1,
                kind: PartitionKind::Random,
                members: vec![(rel, col)],
            });
        }
    }

    // 2. Theta atoms: each side occurrence needs *some* dimension so the
    //    1-Bucket-style meet is guaranteed; reuse an existing one when the
    //    occurrence is already partitioned (the paper reuses hash(S.x) for
    //    the S.x < T.y side).
    for atom in spec.theta_atoms() {
        for &(rel, col) in &[(atom.left_rel, atom.left_col), (atom.right_rel, atom.right_col)] {
            let covered = dims.iter().any(|d| d.members.contains(&(rel, col)));
            if covered {
                continue;
            }
            let skew_free = spec.is_skew_free(rel, col);
            dims.push(Dimension {
                name: format!(
                    "{}.{}",
                    spec.relations[rel].name,
                    spec.relations[rel].schema.field(col).name
                ),
                size: 1,
                kind: if skew_free { PartitionKind::Hash } else { PartitionKind::Random },
                members: vec![(rel, col)],
            });
        }
    }

    // 3. A relation with no dimension at all (no join key, no theta side —
    //    only possible in degenerate specs) gets a quasi-dimension so it is
    //    at least spread correctly.
    for rel in 0..spec.n_relations() {
        if !dims.iter().any(|d| d.members.iter().any(|&(r, _)| r == rel)) {
            dims.push(Dimension {
                name: format!("~{}", spec.relations[rel].name),
                size: 1,
                kind: PartitionKind::Random,
                members: vec![(rel, 0)],
            });
        }
    }

    size_dimensions(spec, dims, machines, seed)
}

/// §3.4's offline chooser, generalized: derive skew flags from measured
/// top-key frequencies, then build the Hybrid-Hypercube. An attribute
/// occurrence is marked skewed when the hash-partitioning load estimate
/// `(L − L_mf)/p + L_mf` exceeds the random-partitioning load `L/p`
/// by more than `slack` (hash also loses when the key domain is smaller
/// than the machine count — "hash partitioning assigns work only to a few
/// machines").
pub fn hybrid_with_frequencies(
    spec: &MultiJoinSpec,
    machines: usize,
    seed: u64,
    top_freq: &dyn Fn(usize, usize) -> f64,
    distinct_keys: &dyn Fn(usize, usize) -> usize,
    slack: f64,
) -> Result<HypercubeScheme> {
    let mut spec = spec.clone();
    for rel in 0..spec.relations.len() {
        for col in 0..spec.relations[rel].schema.arity() {
            let f = top_freq(rel, col);
            let d = distinct_keys(rel, col);
            let hash_load = (1.0 - f) / machines as f64 + f;
            let random_load = 1.0 / machines as f64;
            let skewed = hash_load > random_load * (1.0 + slack) || d < machines;
            if skewed {
                let name = spec.relations[rel].schema.field(col).name.clone();
                spec.relations[rel].schema.set_skewed(&name)?;
            }
        }
    }
    hybrid_hypercube(&spec, machines, seed)
}

/// One scheme's predicted cost on a concrete join spec — the planner's
/// comparison unit. Built by [`estimate_scheme_cost`] from the analytic
/// load model of [`HypercubeScheme`]; collapsed to a scalar by
/// [`CostEstimate::cost`] under a [`CostCalibration`].
#[derive(Debug, Clone, PartialEq)]
pub struct CostEstimate {
    /// The scheme this estimate describes.
    pub kind: SchemeKind,
    /// Predicted max per-machine load as a fraction of the total input —
    /// the paper's `L` (§4), the balance term of the cost.
    pub max_load: f64,
    /// Predicted tuples sent ÷ total input (≥ 1; the replication /
    /// communication term, Table 2's replication factor).
    pub total_load: f64,
    /// Machines the sized hypercube actually uses (`∏` dimension sizes).
    pub machines_used: usize,
    /// Human-readable dimension vector, e.g. `y:8(hash) × z:8(hash)`.
    pub description: String,
}

impl CostEstimate {
    /// Scalar cost under `calib`: `balance·max_load + comm·total_load/p`.
    /// `max_load` models the critical-path machine; `total_load/p` the
    /// per-machine share of network traffic.
    pub fn cost(&self, calib: &CostCalibration) -> f64 {
        let p = self.machines_used.max(1) as f64;
        calib.balance_weight * self.max_load + calib.comm_weight * self.total_load / p
    }
}

/// Weights turning a [`CostEstimate`] into a scalar, with a calibration
/// hook: [`CostCalibration::fit`] regresses the weights from observed
/// `(estimate, elapsed)` pairs of past runs, so the model can be tuned to
/// the deployment's actual compute/network balance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostCalibration {
    /// Weight of the max-per-machine-load (balance / critical path) term.
    pub balance_weight: f64,
    /// Weight of the per-machine communication term.
    pub comm_weight: f64,
}

impl Default for CostCalibration {
    /// Balance-dominated default: the critical-path machine sets the
    /// wall-clock; communication is the tie-breaker.
    fn default() -> CostCalibration {
        CostCalibration { balance_weight: 1.0, comm_weight: 0.5 }
    }
}

impl CostCalibration {
    /// Least-squares fit of the two weights to observed wall-clock times:
    /// each observation pairs a [`CostEstimate`] with the measured seconds
    /// of the run it predicted. Falls back to the default on a singular or
    /// degenerate system (fewer than two observations, collinear inputs,
    /// or non-positive fitted weights).
    pub fn fit(observations: &[(CostEstimate, f64)]) -> CostCalibration {
        if observations.len() < 2 {
            return CostCalibration::default();
        }
        // Normal equations for elapsed ≈ w_b·x + w_c·y with
        // x = max_load, y = total_load / machines.
        let (mut xx, mut xy, mut yy, mut xt, mut yt) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
        for (e, t) in observations {
            let x = e.max_load;
            let y = e.total_load / e.machines_used.max(1) as f64;
            xx += x * x;
            xy += x * y;
            yy += y * y;
            xt += x * t;
            yt += y * t;
        }
        let det = xx * yy - xy * xy;
        if det.abs() < 1e-12 {
            return CostCalibration::default();
        }
        let balance_weight = (xt * yy - yt * xy) / det;
        let comm_weight = (yt * xx - xt * xy) / det;
        if !(balance_weight.is_finite() && comm_weight.is_finite())
            || balance_weight <= 0.0
            || comm_weight < 0.0
        {
            return CostCalibration::default();
        }
        CostCalibration { balance_weight, comm_weight }
    }
}

/// Predict one scheme's cost on `spec` without running it: build the sized
/// hypercube, then read the analytic per-machine max load and total
/// communication off the load model, normalized by total input size.
/// `top_freq(rel, col)` is the measured hottest-key share feeding the
/// skewed-hash-dimension penalty (return `0.0` when unknown). Skew flags
/// on the spec's schemas steer the Hybrid build exactly as in §4.
pub fn estimate_scheme_cost(
    kind: SchemeKind,
    spec: &MultiJoinSpec,
    machines: usize,
    seed: u64,
    top_freq: &dyn Fn(usize, usize) -> f64,
) -> Result<CostEstimate> {
    let hc = build_scheme(kind, spec, machines, seed)?;
    let total: f64 = spec.relations.iter().map(|r| r.est_size as f64).sum();
    let total = if total > 0.0 { total } else { 1.0 };
    let fracs: Vec<f64> = spec.relations.iter().map(|r| r.est_size as f64 / total).collect();
    Ok(CostEstimate {
        kind,
        max_load: hc.max_load(&fracs, top_freq),
        total_load: hc.total_load(&fracs),
        machines_used: hc.machines(),
        description: hc.describe(),
    })
}

/// Pick the cheapest scheme for `spec` under `calib`, returning the choice
/// plus every candidate's estimate (for `explain`). Candidates are tried
/// in `[Hash, Hybrid, Random]` order and a later candidate must *strictly*
/// beat the incumbent, so ties resolve to the simplest scheme — in the
/// skew-free equi case Hybrid builds the very same hypercube as Hash and
/// the choice reads "Hash". Schemes that cannot express the condition
/// (Hash under a theta atom) are skipped, not errors.
pub fn choose_scheme(
    spec: &MultiJoinSpec,
    machines: usize,
    seed: u64,
    top_freq: &dyn Fn(usize, usize) -> f64,
    calib: &CostCalibration,
) -> Result<(SchemeKind, Vec<CostEstimate>)> {
    let mut candidates = Vec::new();
    for kind in [SchemeKind::Hash, SchemeKind::Hybrid, SchemeKind::Random] {
        if let Ok(est) = estimate_scheme_cost(kind, spec, machines, seed, top_freq) {
            candidates.push(est);
        }
    }
    let mut best: Option<usize> = None;
    for (i, est) in candidates.iter().enumerate() {
        let better = match best {
            None => true,
            Some(b) => est.cost(calib) < candidates[b].cost(calib) - 1e-9,
        };
        if better {
            best = Some(i);
        }
    }
    match best {
        Some(i) => Ok((candidates[i].kind, candidates)),
        None => Err(SquallError::InvalidPartitioning(
            "no partitioning scheme can express this join".into(),
        )),
    }
}

/// The shared integer sizing step. Mutates the `size` field of each
/// dimension to the load-minimizing assignment with `∏ sizes ≤ machines`.
fn size_dimensions(
    spec: &MultiJoinSpec,
    mut dims: Vec<Dimension>,
    machines: usize,
    seed: u64,
) -> Result<HypercubeScheme> {
    if machines == 0 {
        return Err(SquallError::InvalidPartitioning("zero machines".into()));
    }
    if dims.is_empty() {
        return Err(SquallError::InvalidPartitioning("no dimensions".into()));
    }
    let sizes: Vec<f64> = spec.relations.iter().map(|r| r.est_size as f64).collect();
    // membership[d] = relations participating in dimension d.
    let membership: Vec<Vec<usize>> = dims
        .iter()
        .map(|d| {
            let mut rels: Vec<usize> = d.members.iter().map(|&(r, _)| r).collect();
            rels.sort_unstable();
            rels.dedup();
            rels
        })
        .collect();

    let k = dims.len();
    let mut best: Option<(f64, f64, Vec<usize>)> = None;
    let mut current = vec![1usize; k];

    // The load of an assignment: Σᵢ |Rᵢ| / ∏_{d ∋ i} p_d.
    let load = |assign: &[usize]| -> f64 {
        sizes
            .iter()
            .enumerate()
            .map(|(rel, &s)| {
                let denom: usize = membership
                    .iter()
                    .enumerate()
                    .filter(|(_, rels)| rels.contains(&rel))
                    .map(|(d, _)| assign[d])
                    .product();
                s / denom as f64
            })
            .sum()
    };
    // Total communication (tie-break): Σᵢ |Rᵢ| · ∏_{d ∌ i} p_d.
    let total = |assign: &[usize]| -> f64 {
        sizes
            .iter()
            .enumerate()
            .map(|(rel, &s)| {
                let spread: usize = membership
                    .iter()
                    .enumerate()
                    .filter(|(_, rels)| !rels.contains(&rel))
                    .map(|(d, _)| assign[d])
                    .product();
                s * spread as f64
            })
            .sum()
    };

    // DFS over size vectors with product ≤ machines.
    fn dfs(dim: usize, budget: usize, current: &mut Vec<usize>, eval: &mut dyn FnMut(&[usize])) {
        if dim == current.len() {
            eval(current);
            return;
        }
        let mut s = 1;
        while s <= budget {
            current[dim] = s;
            dfs(dim + 1, budget / s, current, eval);
            s += 1;
        }
        current[dim] = 1;
    }

    {
        let mut eval = |assign: &[usize]| {
            let l = load(assign);
            let t = total(assign);
            let better = match &best {
                None => true,
                Some((bl, bt, ba)) => {
                    l < bl - 1e-12
                        || ((l - bl).abs() <= 1e-12
                            && (t < bt - 1e-9
                                || ((t - bt).abs() <= 1e-9 && assign < ba.as_slice())))
                }
            };
            if better {
                best = Some((l, t, assign.to_vec()));
            }
        };
        dfs(0, machines, &mut current, &mut eval);
    }

    let (_, _, assignment) = best.expect("at least the all-ones assignment is evaluated");
    for (d, s) in dims.iter_mut().zip(&assignment) {
        d.size = *s;
    }
    Ok(HypercubeScheme::new(spec.n_relations(), dims, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::{DataType, Schema};
    use squall_expr::join_cond::CmpOp;
    use squall_expr::{JoinAtom, RelationDef};

    /// R(x,y) ⋈ S(y,z) ⋈ T(z,t), all of size H (§3.1). `skew_z` marks both
    /// S.z and T.z as skewed.
    fn rst(h: u64, skew_z: bool) -> MultiJoinSpec {
        let mut s_schema = Schema::of(&[("y", DataType::Int), ("z", DataType::Int)]);
        let mut t_schema = Schema::of(&[("z", DataType::Int), ("t", DataType::Int)]);
        if skew_z {
            s_schema.set_skewed("z").unwrap();
            t_schema.set_skewed("z").unwrap();
        }
        MultiJoinSpec::new(
            vec![
                RelationDef::new("R", Schema::of(&[("x", DataType::Int), ("y", DataType::Int)]), h),
                RelationDef::new("S", s_schema, h),
                RelationDef::new("T", t_schema, h),
            ],
            vec![JoinAtom::eq(0, 1, 1, 0), JoinAtom::eq(1, 1, 2, 0)],
        )
        .unwrap()
    }

    #[test]
    fn hash_hypercube_finds_8x8_for_uniform_rst() {
        // §3.1: "given 64 machines ... the dimensions y × z = 8 × 8
        // minimize the load" with L ≈ 0.26H.
        let hc = hash_hypercube(&rst(100, false), 64, 1).unwrap();
        let sizes: Vec<usize> = hc.dims.iter().map(|d| d.size).collect();
        assert_eq!(sizes, vec![8, 8]);
        let l = hc.max_load(&[1.0, 1.0, 1.0], &|_, _| 0.0);
        assert!((l - 0.265625).abs() < 1e-12);
    }

    #[test]
    fn random_hypercube_finds_4x4x4_for_equal_sizes() {
        // §3.1: "the dimensions R × S × T = 4 × 4 × 4 minimize the load"
        // with L = 0.75H.
        let hc = random_hypercube(&rst(100, false), 64, 1).unwrap();
        let sizes: Vec<usize> = hc.dims.iter().map(|d| d.size).collect();
        assert_eq!(sizes, vec![4, 4, 4]);
        assert!((hc.max_load(&[1.0; 3], &|_, _| 0.0) - 0.75).abs() < 1e-12);
        assert_eq!(hc.total_load(&[1.0; 3]), 48.0);
    }

    #[test]
    fn random_hypercube_proportional_to_relation_sizes() {
        // §4: "if R1 is 4× bigger than R2, the optimal partitioning is
        // {16 × 4}" for 64 machines.
        let spec = MultiJoinSpec::new(
            vec![
                RelationDef::new("R1", Schema::of(&[("a", DataType::Int)]), 400),
                RelationDef::new("R2", Schema::of(&[("a", DataType::Int)]), 100),
            ],
            vec![JoinAtom { left_rel: 0, left_col: 0, op: CmpOp::Lt, right_rel: 1, right_col: 0 }],
        )
        .unwrap();
        let hc = random_hypercube(&spec, 64, 1).unwrap();
        let sizes: Vec<usize> = hc.dims.iter().map(|d| d.size).collect();
        assert_eq!(sizes, vec![16, 4]);
    }

    #[test]
    fn hybrid_equals_hash_when_skew_free() {
        // §3.1: "in the case of equi-joins and skew-free attributes, the
        // Hybrid-Hypercube produces the same partitioning as the
        // Hash-Hypercube."
        let hy = hybrid_hypercube(&rst(100, false), 64, 1).unwrap();
        let sizes: Vec<usize> = hy.dims.iter().map(|d| d.size).collect();
        assert_eq!(sizes, vec![8, 8]);
        assert!(hy.dims.iter().all(|d| d.kind == PartitionKind::Hash));
    }

    #[test]
    fn hybrid_renames_skewed_z_and_reduces_dimensionality() {
        // §4: with S.z and T.z skewed the input is R(y), S(y,z'), T(z'');
        // the optimizer sets |z'| = 1 (S is already partitioned by y) and
        // the final partitioning is (y, z'') — Fig. 2d — with max load
        // 2H/9 + H/7 ≈ 0.365H and total load 23H.
        let hy = hybrid_hypercube(&rst(100, true), 64, 1).unwrap();
        let by_name: Vec<(String, usize, PartitionKind)> =
            hy.dims.iter().map(|d| (d.name.clone(), d.size, d.kind)).collect();
        // Dim 0: shared skew-free y (R.y, S.y), hash.
        assert_eq!(by_name[0].0, "y");
        assert_eq!(by_name[0].2, PartitionKind::Hash);
        // One renamed dim per skewed occurrence; S's collapses to 1.
        let z_s = hy.dims.iter().find(|d| d.members == vec![(1, 1)]).unwrap();
        let z_t = hy.dims.iter().find(|d| d.members == vec![(2, 0)]).unwrap();
        assert_eq!(z_s.size, 1, "S.z' is removed: S is already partitioned by y");
        assert_eq!(z_t.kind, PartitionKind::Random);
        assert_eq!((by_name[0].1, z_t.size), (9, 7), "optimal 9×7 over 64 machines");
        let l = hy.max_load(&[1.0; 3], &|rel, col| {
            if (rel, col) == (1, 1) || (rel, col) == (2, 0) {
                0.5
            } else {
                0.0
            }
        });
        assert!((l - (2.0 / 9.0 + 1.0 / 7.0)).abs() < 1e-12);
        assert_eq!(hy.total_load(&[1.0; 3]), 23.0);
    }

    #[test]
    fn hybrid_four_relations_collapses_to_two_dims() {
        // §4: R(x,y) ⋈ S(y,z) ⋈ T(z,t) ⋈ U(t) with only z skewed →
        // Random-Hypercube needs 4 dims, Hybrid needs 2 (y and t): a
        // replicated hash join R⋈S and T⋈U, and a 1-Bucket RS ⋈ TU.
        let mut s_schema = Schema::of(&[("y", DataType::Int), ("z", DataType::Int)]);
        let mut t_schema = Schema::of(&[("z", DataType::Int), ("t", DataType::Int)]);
        s_schema.set_skewed("z").unwrap();
        t_schema.set_skewed("z").unwrap();
        let spec = MultiJoinSpec::new(
            vec![
                RelationDef::new(
                    "R",
                    Schema::of(&[("x", DataType::Int), ("y", DataType::Int)]),
                    100,
                ),
                RelationDef::new("S", s_schema, 100),
                RelationDef::new("T", t_schema, 100),
                RelationDef::new("U", Schema::of(&[("t", DataType::Int)]), 100),
            ],
            vec![
                JoinAtom::eq(0, 1, 1, 0), // R.y = S.y
                JoinAtom::eq(1, 1, 2, 0), // S.z = T.z
                JoinAtom::eq(2, 1, 3, 0), // T.t = U.t
            ],
        )
        .unwrap();
        let hy = hybrid_hypercube(&spec, 64, 1).unwrap();
        let nontrivial: Vec<&Dimension> = hy.dims.iter().filter(|d| d.size > 1).collect();
        assert_eq!(nontrivial.len(), 2, "dims: {}", hy.describe());
        assert!(nontrivial.iter().all(|d| d.kind == PartitionKind::Hash));
        let names: Vec<&str> = nontrivial.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["y", "t"]);
        // 8×8 over 64 machines, every relation replicated 8×.
        assert!(nontrivial.iter().all(|d| d.size == 8));
        for rel in 0..4 {
            assert_eq!(hy.replication(rel), 8);
        }
    }

    #[test]
    fn hybrid_nonequi_uses_hash_on_skew_free_sides() {
        // §4: "R.x = S.x and S.x < T.y ... we can consider this query as an
        // equi-join R(x), S(x), T(y) and dimensions (x, y) ... hash
        // partitioning for both x and y."
        let spec = MultiJoinSpec::new(
            vec![
                RelationDef::new("R", Schema::of(&[("x", DataType::Int)]), 100),
                RelationDef::new("S", Schema::of(&[("x", DataType::Int)]), 100),
                RelationDef::new("T", Schema::of(&[("y", DataType::Int)]), 100),
            ],
            vec![
                JoinAtom::eq(0, 0, 1, 0),
                JoinAtom { left_rel: 1, left_col: 0, op: CmpOp::Lt, right_rel: 2, right_col: 0 },
            ],
        )
        .unwrap();
        let hy = hybrid_hypercube(&spec, 64, 1).unwrap();
        assert_eq!(hy.dims.len(), 2);
        assert!(hy.dims.iter().all(|d| d.kind == PartitionKind::Hash));
        // S.x is shared between the equi class and the theta atom: no
        // renaming, 2 dims only.
        assert_eq!(hy.dims[0].members, vec![(0, 0), (1, 0)]);
        assert_eq!(hy.dims[1].members, vec![(2, 0)]);
    }

    #[test]
    fn hybrid_nonequi_skewed_side_goes_random() {
        // §4 continued: "if there is skew on T.y ... employ random (rather
        // than hash) partitioning on T.y."
        let mut t_schema = Schema::of(&[("y", DataType::Int)]);
        t_schema.set_skewed("y").unwrap();
        let spec = MultiJoinSpec::new(
            vec![
                RelationDef::new("R", Schema::of(&[("x", DataType::Int)]), 100),
                RelationDef::new("S", Schema::of(&[("x", DataType::Int)]), 100),
                RelationDef::new("T", t_schema, 100),
            ],
            vec![
                JoinAtom::eq(0, 0, 1, 0),
                JoinAtom { left_rel: 1, left_col: 0, op: CmpOp::Lt, right_rel: 2, right_col: 0 },
            ],
        )
        .unwrap();
        let hy = hybrid_hypercube(&spec, 64, 1).unwrap();
        let t_dim = hy.dims.iter().find(|d| d.members == vec![(2, 0)]).unwrap();
        assert_eq!(t_dim.kind, PartitionKind::Random);
    }

    #[test]
    fn hybrid_skew_on_one_equi_side_renames_it() {
        // §4: "if there is skew only on S.x we need to rename this
        // attribute to x′, and the optimization algorithm produces a
        // hypercube with (x, x′, y) dimensions, using hash, random and
        // hash partitioning."
        let mut s_schema = Schema::of(&[("x", DataType::Int)]);
        s_schema.set_skewed("x").unwrap();
        let spec = MultiJoinSpec::new(
            vec![
                RelationDef::new("R", Schema::of(&[("x", DataType::Int)]), 100),
                RelationDef::new("S", s_schema, 100),
                RelationDef::new("T", Schema::of(&[("y", DataType::Int)]), 100),
            ],
            vec![
                JoinAtom::eq(0, 0, 1, 0),
                JoinAtom { left_rel: 1, left_col: 0, op: CmpOp::Lt, right_rel: 2, right_col: 0 },
            ],
        )
        .unwrap();
        let hy = hybrid_hypercube(&spec, 64, 1).unwrap();
        assert_eq!(hy.dims.len(), 3, "{}", hy.describe());
        let kinds: Vec<PartitionKind> = hy.dims.iter().map(|d| d.kind).collect();
        assert_eq!(kinds, vec![PartitionKind::Hash, PartitionKind::Random, PartitionKind::Hash]);
    }

    #[test]
    fn star_schema_partitions_fact_broadcasts_dimensions() {
        // §3.2: fact F(k1,k2) with small D1(k1), D2(k2) → p×1×1: partition
        // the fact table, replicate the dimension tables.
        let spec = MultiJoinSpec::new(
            vec![
                RelationDef::new(
                    "F",
                    Schema::of(&[("k1", DataType::Int), ("k2", DataType::Int)]),
                    1_000_000,
                ),
                RelationDef::new("D1", Schema::of(&[("k1", DataType::Int)]), 100),
                RelationDef::new("D2", Schema::of(&[("k2", DataType::Int)]), 100),
            ],
            vec![JoinAtom::eq(0, 0, 1, 0), JoinAtom::eq(0, 1, 2, 0)],
        )
        .unwrap();
        for scheme in
            [hash_hypercube(&spec, 16, 1).unwrap(), hybrid_hypercube(&spec, 16, 1).unwrap()]
        {
            assert_eq!(scheme.replication(0), 1, "fact partitioned ({})", scheme.describe());
            let used: usize = scheme.dims.iter().map(|d| d.size).product();
            assert_eq!(used, 16);
            assert!(scheme.replication(1) * scheme.replication(2) == 16);
        }
        // Random-Hypercube also complies (§3.2), randomly partitioning F.
        let r = random_hypercube(&spec, 16, 1).unwrap();
        assert_eq!(r.replication(0), 1);
    }

    #[test]
    fn same_key_multiway_needs_no_replication() {
        // §3.2: L ⋈ PS ⋈ P all on Partkey → 1-dimensional hypercube, no
        // replication at all (the TPCH9-Partial uniform case of [70]).
        let mk = |n: &str, sz: u64| RelationDef::new(n, Schema::of(&[("pk", DataType::Int)]), sz);
        let spec = MultiJoinSpec::new(
            vec![mk("L", 6000), mk("PS", 800), mk("P", 200)],
            vec![JoinAtom::eq(0, 0, 1, 0), JoinAtom::eq(1, 0, 2, 0)],
        )
        .unwrap();
        let hc = hash_hypercube(&spec, 8, 1).unwrap();
        assert_eq!(hc.dims.len(), 1);
        assert_eq!(hc.dims[0].size, 8);
        for rel in 0..3 {
            assert_eq!(hc.replication(rel), 1);
        }
        let hy = hybrid_hypercube(&spec, 8, 1).unwrap();
        assert_eq!(hy.dims[0].size, 8, "hybrid yields the same partitioning");
    }

    #[test]
    fn hash_rejects_theta() {
        let spec = MultiJoinSpec::new(
            vec![
                RelationDef::new("R", Schema::of(&[("a", DataType::Int)]), 1),
                RelationDef::new("S", Schema::of(&[("a", DataType::Int)]), 1),
            ],
            vec![JoinAtom { left_rel: 0, left_col: 0, op: CmpOp::Lt, right_rel: 1, right_col: 0 }],
        )
        .unwrap();
        assert!(hash_hypercube(&spec, 4, 1).is_err());
        assert!(random_hypercube(&spec, 4, 1).is_ok());
        assert!(hybrid_hypercube(&spec, 4, 1).is_ok());
    }

    #[test]
    fn zero_machines_rejected() {
        assert!(hash_hypercube(&rst(1, false), 0, 1).is_err());
    }

    #[test]
    fn non_power_machine_counts_use_integers() {
        // The [26] motivation: 7 machines, 3 equal relations — naive
        // fractional sizing gives 7^(1/3) ≈ 1.91 per dim; the integer
        // search must still use several machines, not fall back to 1.
        let hc = random_hypercube(&rst(100, false), 7, 1).unwrap();
        let used: usize = hc.dims.iter().map(|d| d.size).product();
        assert!(used >= 6, "should use ≥6 of 7 machines, used {used}");
    }

    #[test]
    fn frequency_driven_chooser_marks_hot_keys() {
        // With a 0.5-frequency top key, hash load (≈0.5) ≫ random load
        // (1/64): the chooser must go random; with uniform keys it must
        // stay hash.
        let spec = rst(100, false);
        let skewed = hybrid_with_frequencies(
            &spec,
            64,
            1,
            &|rel, col| if (rel, col) == (1, 1) || (rel, col) == (2, 0) { 0.5 } else { 0.001 },
            &|_, _| 1_000_000,
            0.5,
        )
        .unwrap();
        assert!(skewed.dims.iter().any(|d| d.kind == PartitionKind::Random));

        let uniform =
            hybrid_with_frequencies(&spec, 64, 1, &|_, _| 0.001, &|_, _| 1_000_000, 0.5).unwrap();
        assert!(uniform.dims.iter().all(|d| d.kind == PartitionKind::Hash));
    }

    #[test]
    fn small_domain_forces_random() {
        // §3.4: "if a relation has only a few distinct join keys, hash
        // partitioning assigns work only to a few machines ... we consider
        // the relation as skewed."
        let spec = rst(100, false);
        let hy = hybrid_with_frequencies(
            &spec,
            64,
            1,
            &|_, _| 0.001,
            &|rel, col| if (rel, col) == (2, 0) { 5 } else { 1_000_000 },
            0.5,
        )
        .unwrap();
        let t_dim = hy.dims.iter().find(|d| d.members.contains(&(2, 0))).unwrap();
        assert_eq!(t_dim.kind, PartitionKind::Random);
    }

    /// The documented cost ordering between schemes, table-driven: a model
    /// regression that flips a row fails loudly here instead of silently
    /// picking worse plans.
    #[test]
    fn cost_ordering_between_schemes() {
        let calib = CostCalibration::default();
        // (top frequency on S.z/T.z, skew flags set, expected winner).
        let table: &[(f64, bool, SchemeKind)] = &[
            // Skew-free equi joins: Hash-Hypercube replicates least and
            // balances fine; Hybrid builds the identical cube (tie goes to
            // the simpler scheme), Random pays 0.75H vs 0.26H (§3.1).
            (0.0, false, SchemeKind::Hash),
            (0.001, false, SchemeKind::Hash),
            // The paper's zipf skew (top key ≈ half the stream): hash's
            // hot machine holds ≥ 0.5H, hybrid reroutes the skewed
            // occurrences onto random dims — 0.365H (§4 worked example).
            (0.5, true, SchemeKind::Hybrid),
            (0.9, true, SchemeKind::Hybrid),
        ];
        for &(f, flag, expected) in table {
            let spec = rst(100, flag);
            let top = move |rel: usize, col: usize| {
                if (rel, col) == (1, 1) || (rel, col) == (2, 0) {
                    f
                } else {
                    0.0
                }
            };
            let (kind, ests) = choose_scheme(&spec, 64, 1, &top, &calib).unwrap();
            assert_eq!(kind, expected, "top_freq {f}: expected {expected:?}, estimates {ests:?}");
            assert_eq!(ests.len(), 3, "all three schemes build on an equi join");
        }
    }

    /// Hypercube (hash) vs 1-Bucket-style random placement on a plain
    /// 2-way equi join: the paper's skew thresholds. Uniform keys →
    /// hash's max load 1/p beats random's 1/√p-ish; a hot key past the
    /// 1/p + slack threshold flips the ordering.
    #[test]
    fn hypercube_beats_one_bucket_until_skew_threshold() {
        let spec = MultiJoinSpec::new(
            vec![
                RelationDef::new("R", Schema::of(&[("k", DataType::Int)]), 100),
                RelationDef::new("S", Schema::of(&[("k", DataType::Int)]), 100),
            ],
            vec![JoinAtom::eq(0, 0, 1, 0)],
        )
        .unwrap();
        let uniform = |_: usize, _: usize| 0.0;
        let hot = |_: usize, _: usize| 0.5;
        let hash_u = estimate_scheme_cost(SchemeKind::Hash, &spec, 16, 1, &uniform).unwrap();
        let rand_u = estimate_scheme_cost(SchemeKind::Random, &spec, 16, 1, &uniform).unwrap();
        assert!(
            hash_u.max_load < rand_u.max_load,
            "uniform: hash {} should beat 1-bucket-style random {}",
            hash_u.max_load,
            rand_u.max_load
        );
        let hash_s = estimate_scheme_cost(SchemeKind::Hash, &spec, 16, 1, &hot).unwrap();
        let rand_s = estimate_scheme_cost(SchemeKind::Random, &spec, 16, 1, &hot).unwrap();
        assert!(
            rand_s.max_load < hash_s.max_load,
            "50% hot key: random {} must beat hash {} (hot machine owns half the input)",
            rand_s.max_load,
            hash_s.max_load
        );
    }

    #[test]
    fn theta_join_skips_hash_candidate() {
        let spec = MultiJoinSpec::new(
            vec![
                RelationDef::new("R", Schema::of(&[("a", DataType::Int)]), 100),
                RelationDef::new("S", Schema::of(&[("a", DataType::Int)]), 100),
            ],
            vec![JoinAtom { left_rel: 0, left_col: 0, op: CmpOp::Lt, right_rel: 1, right_col: 0 }],
        )
        .unwrap();
        let (kind, ests) =
            choose_scheme(&spec, 16, 1, &|_, _| 0.0, &CostCalibration::default()).unwrap();
        assert_eq!(ests.len(), 2, "Hash cannot express a theta atom");
        assert!(kind == SchemeKind::Hybrid || kind == SchemeKind::Random);
    }

    #[test]
    fn calibration_fit_recovers_weights() {
        // Synthesize observations from known weights; the fit must recover
        // them (the calibration hook's correctness contract).
        let truth = CostCalibration { balance_weight: 2.0, comm_weight: 0.3 };
        let mk = |ml: f64, tl: f64, p: usize| CostEstimate {
            kind: SchemeKind::Hybrid,
            max_load: ml,
            total_load: tl,
            machines_used: p,
            description: String::new(),
        };
        let obs: Vec<(CostEstimate, f64)> = [(0.3, 1.0, 4), (0.7, 2.5, 8), (0.1, 1.2, 16)]
            .into_iter()
            .map(|(ml, tl, p)| {
                let e = mk(ml, tl, p);
                let t = e.cost(&truth);
                (e, t)
            })
            .collect();
        let fit = CostCalibration::fit(&obs);
        assert!((fit.balance_weight - 2.0).abs() < 1e-6, "{fit:?}");
        assert!((fit.comm_weight - 0.3).abs() < 1e-6, "{fit:?}");
        // Degenerate systems fall back to the default.
        assert_eq!(CostCalibration::fit(&obs[..1]), CostCalibration::default());
    }
}
