//! The hypercube machinery shared by the Hash-, Random- and
//! Hybrid-Hypercube schemes (§3.1, §4).
//!
//! A hypercube scheme models the join result space as a hypercube whose
//! axes are *dimensions* — either a join-key equivalence class (hash
//! partitioned) or a renamed/quasi attribute (randomly partitioned). The
//! machines form a grid over the dimensions; an input tuple is *partitioned*
//! on the dimensions its relation participates in and *replicated* (spread)
//! on all others, so that every potential output tuple is produced on
//! exactly one machine.

use std::sync::Arc;

use squall_common::hash::{fx_hash, partition_of};
use squall_common::Tuple;
use squall_runtime::grouping::tuple_rng;
use squall_runtime::CustomGrouping;

/// How a dimension partitions the attribute occurrences mapped to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionKind {
    /// Content-sensitive: coordinate = hash(attribute value). Cheap (no
    /// replication on this axis for member relations) but skew-prone.
    Hash,
    /// Content-insensitive: coordinate drawn uniformly at random per tuple.
    /// Skew- and temporal-skew-resilient, forces non-member relations to
    /// replicate across the axis.
    Random,
}

/// One hypercube axis.
#[derive(Debug, Clone)]
pub struct Dimension {
    /// Human-readable name, e.g. `"y"`, `"z'"` (renamed), `"~R"` (quasi).
    pub name: String,
    /// Number of coordinates; the product over dimensions is the number of
    /// machines the scheme uses (≤ the machines available, per Chu et al.
    /// \[26\] integer dimension sizing).
    pub size: usize,
    pub kind: PartitionKind,
    /// Attribute occurrences `(relation, column)` partitioned on this axis.
    pub members: Vec<(usize, usize)>,
}

impl Dimension {
    /// The column of `rel` partitioned on this dimension, if any.
    pub fn member_col(&self, rel: usize) -> Option<usize> {
        self.members.iter().find(|&&(r, _)| r == rel).map(|&(_, c)| c)
    }
}

/// The role a dimension plays for one relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimRole {
    /// Coordinate fixed by hashing the given column.
    Hash(usize),
    /// Coordinate drawn at random.
    Random,
    /// Replicated across every coordinate of the axis.
    Spread,
}

/// A fully specified hypercube partitioning for an n-way join.
#[derive(Debug, Clone)]
pub struct HypercubeScheme {
    pub dims: Vec<Dimension>,
    /// `roles[rel][dim]` — derived from the dimensions' member lists.
    pub roles: Vec<Vec<DimRole>>,
    /// Seed for the deterministic "random" coordinates.
    pub seed: u64,
}

impl HypercubeScheme {
    /// Assemble a scheme from dimensions for `n_relations` relations.
    pub fn new(n_relations: usize, dims: Vec<Dimension>, seed: u64) -> HypercubeScheme {
        let roles = (0..n_relations)
            .map(|rel| {
                dims.iter()
                    .map(|d| match d.member_col(rel) {
                        Some(col) => match d.kind {
                            PartitionKind::Hash => DimRole::Hash(col),
                            PartitionKind::Random => DimRole::Random,
                        },
                        None => DimRole::Spread,
                    })
                    .collect()
            })
            .collect();
        HypercubeScheme { dims, roles, seed }
    }

    pub fn n_relations(&self) -> usize {
        self.roles.len()
    }

    /// Machines the scheme uses (product of dimension sizes).
    pub fn machines(&self) -> usize {
        self.dims.iter().map(|d| d.size).product::<usize>().max(1)
    }

    /// Row-major strides for coordinate → machine-id conversion.
    fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1].size;
        }
        strides
    }

    /// Number of machines each tuple of `rel` is sent to — the paper's
    /// per-relation replication (a tuple is replicated across the spread
    /// axes).
    pub fn replication(&self, rel: usize) -> usize {
        self.roles[rel]
            .iter()
            .zip(&self.dims)
            .map(|(role, d)| if matches!(role, DimRole::Spread) { d.size } else { 1 })
            .product()
    }

    /// Route one tuple of `rel`: the set of target machine ids.
    /// `rand_stream` supplies the random coordinates (callers derive it
    /// deterministically from `(seed, sender, seq)`).
    pub fn route(
        &self,
        rel: usize,
        tuple: &Tuple,
        rand_stream: &mut squall_common::SplitMix64,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        out.push(0);
        let strides = self.strides();
        for (dim_idx, (role, dim)) in self.roles[rel].iter().zip(&self.dims).enumerate() {
            let stride = strides[dim_idx];
            match role {
                DimRole::Hash(col) => {
                    let coord = partition_of(fx_hash(tuple.get(*col)), dim.size);
                    for m in out.iter_mut() {
                        *m += coord * stride;
                    }
                }
                DimRole::Random => {
                    let coord = rand_stream.next_below(dim.size);
                    for m in out.iter_mut() {
                        *m += coord * stride;
                    }
                }
                DimRole::Spread => {
                    let base = std::mem::take(out);
                    out.reserve(base.len() * dim.size);
                    for coord in 0..dim.size {
                        for &m in &base {
                            out.push(m + coord * stride);
                        }
                    }
                }
            }
        }
    }

    /// Analytic **maximum load per machine** (§3.1's `L`), in tuples, given
    /// relation cardinalities and the frequency of each attribute
    /// occurrence's most popular key (`top_freq(rel, col)`, the `L_mf/L`
    /// ratio of §3.4; pass `1/size` or less for uniform attributes).
    ///
    /// For each relation the fraction of its tuples landing on the most
    /// loaded machine is the product over dimensions of: `1` for a spread
    /// axis, `1/size` for a random axis, and `max(top_freq, 1/size)` for a
    /// hashed axis (the hottest key pins its entire mass to one
    /// coordinate).
    pub fn max_load(&self, sizes: &[f64], top_freq: &dyn Fn(usize, usize) -> f64) -> f64 {
        sizes
            .iter()
            .enumerate()
            .map(|(rel, &size)| {
                let frac: f64 = self.roles[rel]
                    .iter()
                    .zip(&self.dims)
                    .map(|(role, d)| match role {
                        DimRole::Hash(col) => {
                            (top_freq(rel, *col)).max(1.0 / d.size as f64).min(1.0)
                        }
                        DimRole::Random => 1.0 / d.size as f64,
                        DimRole::Spread => 1.0,
                    })
                    .product();
                size * frac
            })
            .sum()
    }

    /// Analytic **total load** over all machines (the paper's §3.1 totals
    /// 17H / 48H / 23H): Σ |Rᵢ| · replication(Rᵢ).
    pub fn total_load(&self, sizes: &[f64]) -> f64 {
        sizes.iter().enumerate().map(|(rel, &s)| s * self.replication(rel) as f64).sum()
    }

    /// The runtime grouping for one relation's edge into the join
    /// component.
    pub fn grouping_for(self: &Arc<Self>, rel: usize) -> HypercubeGrouping {
        HypercubeGrouping { scheme: Arc::clone(self), rel }
    }

    /// One-line description, e.g. `"y:9(hash) × z'':7(random)"`.
    pub fn describe(&self) -> String {
        self.dims
            .iter()
            .map(|d| {
                format!(
                    "{}:{}({})",
                    d.name,
                    d.size,
                    match d.kind {
                        PartitionKind::Hash => "hash",
                        PartitionKind::Random => "random",
                    }
                )
            })
            .collect::<Vec<_>>()
            .join(" × ")
    }
}

/// [`CustomGrouping`] adapter: routes one relation's tuples through the
/// scheme. Deterministic: random coordinates derive from
/// `(scheme.seed, relation, sender_task, seq)`.
pub struct HypercubeGrouping {
    scheme: Arc<HypercubeScheme>,
    rel: usize,
}

impl CustomGrouping for HypercubeGrouping {
    fn route(
        &self,
        sender_task: usize,
        seq: u64,
        tuple: &Tuple,
        n_targets: usize,
        out: &mut Vec<usize>,
    ) {
        debug_assert!(
            self.scheme.machines() <= n_targets,
            "scheme uses {} machines but component has {n_targets} tasks",
            self.scheme.machines()
        );
        let mut rng = tuple_rng(self.scheme.seed ^ (self.rel as u64) << 32, sender_task, seq);
        self.scheme.route(self.rel, tuple, &mut rng, out);
    }

    fn name(&self) -> &str {
        "hypercube"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::{tuple, SplitMix64};

    /// Fig. 2a — Hash-Hypercube for R(x,y) ⋈ S(y,z) ⋈ T(z,t), 64 machines,
    /// dims y×z = 8×8.
    fn fig2a() -> HypercubeScheme {
        HypercubeScheme::new(
            3,
            vec![
                Dimension {
                    name: "y".into(),
                    size: 8,
                    kind: PartitionKind::Hash,
                    members: vec![(0, 1), (1, 0)],
                },
                Dimension {
                    name: "z".into(),
                    size: 8,
                    kind: PartitionKind::Hash,
                    members: vec![(1, 1), (2, 0)],
                },
            ],
            7,
        )
    }

    /// Fig. 2b — Random-Hypercube, dims R×S×T = 4×4×4.
    fn fig2b() -> HypercubeScheme {
        let dim = |name: &str, rel: usize| Dimension {
            name: name.into(),
            size: 4,
            kind: PartitionKind::Random,
            members: vec![(rel, 0)],
        };
        HypercubeScheme::new(3, vec![dim("~R", 0), dim("~S", 1), dim("~T", 2)], 7)
    }

    /// Fig. 2d — Hybrid-Hypercube with z skewed: dims y:9(hash) ×
    /// z'':7(random); R,S hash on y and spread on z''; T random on z'' and
    /// spread on y. (The paper's text prints 7×9 but its total-load
    /// arithmetic `R·7 + S·7 + T·9 = 23H` is the 9×7 assignment, which is
    /// also the optimum our optimizer finds.)
    fn fig2d() -> HypercubeScheme {
        HypercubeScheme::new(
            3,
            vec![
                Dimension {
                    name: "y".into(),
                    size: 9,
                    kind: PartitionKind::Hash,
                    members: vec![(0, 1), (1, 0)],
                },
                Dimension {
                    name: "z''".into(),
                    size: 7,
                    kind: PartitionKind::Random,
                    members: vec![(2, 0)],
                },
            ],
            7,
        )
    }

    #[test]
    fn machines_and_replication() {
        let hc = fig2a();
        assert_eq!(hc.machines(), 64);
        // R is hashed on y, replicated on z → 8 copies. S partitioned on
        // both → 1. T replicated on y → 8.
        assert_eq!(hc.replication(0), 8);
        assert_eq!(hc.replication(1), 1);
        assert_eq!(hc.replication(2), 8);
    }

    #[test]
    fn paper_worked_example_loads_uniform() {
        // §3.1: Hash-Hypercube L = |R|/8 + |S|/64 + |T|/8 ≈ 0.26H.
        let uniform = |_: usize, _: usize| 0.0;
        let h = fig2a().max_load(&[1.0, 1.0, 1.0], &uniform);
        assert!((h - (1.0 / 8.0 + 1.0 / 64.0 + 1.0 / 8.0)).abs() < 1e-12);
        assert!((h - 0.2656).abs() < 1e-3, "≈0.26H, got {h}");

        // Random-Hypercube: L = 3·H/4 = 0.75H regardless of skew.
        let r = fig2b().max_load(&[1.0, 1.0, 1.0], &uniform);
        assert!((r - 0.75).abs() < 1e-12);
    }

    #[test]
    fn paper_worked_example_loads_skewed() {
        // §3.1 / Fig. 2c: z zipfian with skew parameter 2 → the paper uses
        // top-key frequency 1/2. Hash-Hypercube max load becomes
        // |R|/8 + |S|/(8·2) + |T|/2 ≈ 0.69H.
        let top = |rel: usize, col: usize| -> f64 {
            // S.z is (1,1), T.z is (2,0): skewed with f_top = 0.5.
            if (rel, col) == (1, 1) || (rel, col) == (2, 0) {
                0.5
            } else {
                0.0
            }
        };
        let h = fig2a().max_load(&[1.0, 1.0, 1.0], &top);
        assert!((h - (1.0 / 8.0 + 1.0 / 16.0 + 0.5)).abs() < 1e-12);
        assert!((h - 0.6875).abs() < 1e-12, "≈0.69H, got {h}");

        // Random-Hypercube unchanged under skew.
        let r = fig2b().max_load(&[1.0, 1.0, 1.0], &top);
        assert!((r - 0.75).abs() < 1e-12);

        // Hybrid-Hypercube: (|R|+|S|)/9 + |T|/7 ≈ 0.365H — the paper's
        // "≈0.36H", beating Hash (0.69H) and Random (0.75H).
        let hy = fig2d().max_load(&[1.0, 1.0, 1.0], &top);
        assert!((hy - (2.0 / 9.0 + 1.0 / 7.0)).abs() < 1e-12);
        assert!(hy < h && hy < r);
        // Paper's speedups: 2.08× vs Random, 1.92× vs Hash (text rounds).
        assert!((r / hy - 2.05).abs() < 0.05, "vs random: {}", r / hy);
        assert!((h / hy - 1.88).abs() < 0.05, "vs hash: {}", h / hy);
    }

    #[test]
    fn paper_worked_example_total_loads() {
        // §3.1 totals: Hash 17H, Random 48H, Hybrid 23H.
        let sizes = [1.0, 1.0, 1.0];
        assert_eq!(fig2a().total_load(&sizes), 17.0);
        assert_eq!(fig2b().total_load(&sizes), 48.0);
        assert_eq!(fig2d().total_load(&sizes), 23.0);
    }

    #[test]
    fn routing_covers_all_joinable_triples_exactly_once() {
        // Correctness (§3.1): every potential output tuple
        // R(x,y) ⋈ S(y,z) ⋈ T(z,t) is assigned to exactly one machine.
        for scheme in [fig2a(), fig2b(), fig2d()] {
            let mut rng = SplitMix64::new(99);
            for y in 0..20i64 {
                for z in 0..20i64 {
                    let r = tuple![1000 + y, y];
                    let s = tuple![y, z];
                    let t = tuple![z, 2000 + z];
                    let (mut mr, mut ms, mut mt) = (vec![], vec![], vec![]);
                    // Random coordinates are drawn per tuple; a stored tuple
                    // has *one* placement, so route once per tuple.
                    scheme.route(0, &r, &mut rng, &mut mr);
                    scheme.route(1, &s, &mut rng, &mut ms);
                    scheme.route(2, &t, &mut rng, &mut mt);
                    let common: Vec<usize> =
                        mr.iter().filter(|m| ms.contains(m) && mt.contains(m)).copied().collect();
                    assert_eq!(
                        common.len(),
                        1,
                        "triple (y={y}, z={z}) met on {common:?} under {}",
                        scheme.describe()
                    );
                }
            }
        }
    }

    #[test]
    fn routing_targets_in_range_and_match_replication() {
        for scheme in [fig2a(), fig2b(), fig2d()] {
            let mut rng = SplitMix64::new(1);
            for rel in 0..3 {
                let t = tuple![7, 13];
                let mut out = vec![];
                scheme.route(rel, &t, &mut rng, &mut out);
                assert_eq!(out.len(), scheme.replication(rel));
                assert!(out.iter().all(|&m| m < scheme.machines()));
                // No duplicate targets.
                let mut sorted = out.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), out.len());
            }
        }
    }

    #[test]
    fn hash_dims_are_content_deterministic() {
        let scheme = fig2a();
        let mut rng1 = SplitMix64::new(1);
        let mut rng2 = SplitMix64::new(2);
        let (mut a, mut b) = (vec![], vec![]);
        scheme.route(1, &tuple![3, 4], &mut rng1, &mut a);
        scheme.route(1, &tuple![3, 4], &mut rng2, &mut b);
        // S is hashed on both dims: placement is independent of the rng.
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn grouping_adapter_is_deterministic() {
        let scheme = Arc::new(fig2d());
        let g = scheme.grouping_for(2);
        let t = tuple![5, 6];
        let (mut a, mut b) = (vec![], vec![]);
        g.route(3, 17, &t, 64, &mut a);
        g.route(3, 17, &t, 64, &mut b);
        assert_eq!(a, b);
        // Different seq → (almost surely) different random column.
        let mut c = vec![];
        g.route(3, 18, &t, 64, &mut c);
        assert_eq!(c.len(), a.len());
    }

    #[test]
    fn star_schema_special_case() {
        // §3.2: with one big fact table the optimizer yields p×1×…×1 —
        // partition the fact table, broadcast the dimension tables. Model
        // it directly: fact F(k1, k2) ⋈ D1(k1) ⋈ D2(k2), dims k1:p, k2:1.
        let scheme = HypercubeScheme::new(
            3,
            vec![
                Dimension {
                    name: "k1".into(),
                    size: 8,
                    kind: PartitionKind::Hash,
                    members: vec![(0, 0), (1, 0)],
                },
                Dimension {
                    name: "k2".into(),
                    size: 1,
                    kind: PartitionKind::Hash,
                    members: vec![(0, 1), (2, 0)],
                },
            ],
            7,
        );
        assert_eq!(scheme.replication(0), 1, "fact table is partitioned");
        assert_eq!(scheme.replication(2), 8, "dimension table is broadcast");
        assert_eq!(scheme.machines(), 8);
    }

    #[test]
    fn describe_is_informative() {
        assert_eq!(fig2d().describe(), "y:9(hash) × z'':7(random)");
    }
}
