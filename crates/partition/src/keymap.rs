//! Round-robin key mapping for small key domains — the fix for *skew due
//! to hash imperfections* (§5).
//!
//! When the number of distinct GROUP BY/join keys `d` is close to the
//! parallelism `p`, a hash function very likely assigns ⌈d/p⌉+1 keys to
//! some machine (and leaves others idle), e.g. TPC-H Q4/Q12/Q5 final
//! aggregations with 5/7/25 distinct values. When the distinct values are
//! known up front ("possible values for ship priorities are predefined"),
//! Squall assigns them round-robin before execution starts, so no two
//! machines differ by more than one key.

use squall_common::hash::{fx_hash, partition_of};
use squall_common::{FxHashMap, Tuple, Value};
use squall_runtime::CustomGrouping;

/// An optimal predefined-key grouping: key *i* (in the given order) is
/// owned by machine `i % p`. Unknown keys fall back to hashing, so the
/// grouping stays total.
pub struct KeyMapGrouping {
    column: usize,
    map: FxHashMap<Value, usize>,
}

impl KeyMapGrouping {
    /// Build from the predefined distinct keys of `column`.
    pub fn new(
        column: usize,
        keys: impl IntoIterator<Item = Value>,
        machines: usize,
    ) -> KeyMapGrouping {
        assert!(machines > 0);
        let map = keys.into_iter().enumerate().map(|(i, k)| (k, i % machines)).collect();
        KeyMapGrouping { column, map }
    }

    /// Largest number of keys mapped to any one machine minus the smallest
    /// — always 0 or 1 by construction (the §5 optimality criterion).
    pub fn imbalance(&self, machines: usize) -> usize {
        let mut counts = vec![0usize; machines];
        for &m in self.map.values() {
            counts[m] += 1;
        }
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        max - min
    }
}

impl CustomGrouping for KeyMapGrouping {
    fn route(
        &self,
        _sender: usize,
        _seq: u64,
        tuple: &Tuple,
        n_targets: usize,
        out: &mut Vec<usize>,
    ) {
        let key = tuple.get(self.column);
        let m = match self.map.get(key) {
            Some(&m) => m % n_targets,
            None => partition_of(fx_hash(key), n_targets),
        };
        out.push(m);
    }

    fn name(&self) -> &str {
        "key-map"
    }
}

/// The expected *hash-assignment* imbalance the key map avoids: assign `d`
/// keys to `p` machines by hashing and report `max_keys_per_machine`.
/// Useful for the §5 ablation ("it is very likely that some machine is
/// assigned 3 keys" for d=15, p=8).
pub fn hash_assignment_max_keys(keys: impl IntoIterator<Item = Value>, machines: usize) -> usize {
    let mut counts = vec![0usize; machines];
    for k in keys {
        counts[partition_of(fx_hash(&k), machines)] += 1;
    }
    counts.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::tuple;

    #[test]
    fn round_robin_is_within_one() {
        for (d, p) in [(5usize, 8usize), (7, 8), (15, 8), (25, 8), (8, 8), (9, 8)] {
            let g = KeyMapGrouping::new(0, (0..d as i64).map(Value::Int), p);
            assert!(g.imbalance(p) <= 1, "d={d}, p={p}");
        }
    }

    #[test]
    fn exact_multiple_is_perfectly_even() {
        let g = KeyMapGrouping::new(0, (0..16i64).map(Value::Int), 8);
        assert_eq!(g.imbalance(8), 0);
    }

    #[test]
    fn routes_known_keys_deterministically() {
        let g = KeyMapGrouping::new(0, (0..5i64).map(Value::Int), 8);
        let mut out = vec![];
        g.route(0, 0, &tuple![3], 8, &mut out);
        assert_eq!(out, vec![3]);
        out.clear();
        g.route(9, 99, &tuple![3], 8, &mut out);
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn unknown_keys_fall_back_to_hash() {
        let g = KeyMapGrouping::new(0, (0..5i64).map(Value::Int), 8);
        let mut out = vec![];
        g.route(0, 0, &tuple![12345], 8, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0] < 8);
    }

    #[test]
    fn d_equals_p_keeps_every_machine_busy() {
        // §5: "the performance gap deepens for d = p, as it becomes very
        // likely that one machine is assigned 2 keys (keeping another
        // machine completely idle)". Round-robin assigns exactly 1 key per
        // machine.
        let p = 8;
        let g = KeyMapGrouping::new(0, (0..8i64).map(Value::Int), p);
        let mut seen = vec![false; p];
        let mut out = vec![];
        for k in 0..8i64 {
            out.clear();
            g.route(0, 0, &tuple![k], p, &mut out);
            seen[out[0]] = true;
        }
        assert!(seen.iter().all(|&s| s), "no machine idle under the key map");
    }

    #[test]
    fn hash_assignment_is_usually_worse() {
        // Not a tautology — but across many small domains, hashing
        // overloads some machine at least once while round-robin never
        // does. (We check a d=p domain where hashing is near-certain to
        // collide.)
        let worst = (0..20)
            .map(|shift| {
                hash_assignment_max_keys((shift * 100..shift * 100 + 8).map(Value::Int), 8)
            })
            .max()
            .unwrap();
        assert!(worst >= 2, "hash assignment should collide for some d=p domain");
    }
}
