//! # squall-partition
//!
//! Partitioning schemes and their optimization algorithms — the substance of
//! the paper's §3.1 and §4.
//!
//! A partitioning scheme decides, for every input tuple of every relation,
//! the set of machines (tasks of the join component) that must receive it.
//! Squall's schemes trade *replication* for *skew resilience and adaptivity*
//! (the SAR principle, §5):
//!
//! | scheme | replication | skew-resilient | conditions |
//! |---|---|---|---|
//! | hash / Fields               | none      | no  | equi |
//! | round-robin key map         | none      | n/a (small domains) | equi |
//! | M-Bucket range \[54\]         | small     | redistribution skew only | band/inequality |
//! | EWH histogram \[66\]          | small     | redistribution + join product skew | band/inequality |
//! | 1-Bucket random \[54\]        | O(√p)     | all skew types | any theta |
//! | Hash-Hypercube \[8\]          | per-dim   | no  | multi-way equi |
//! | Random-Hypercube \[74\]       | high      | all | multi-way theta |
//! | **Hybrid-Hypercube** (ours) | minimal needed | all | multi-way, mixed |
//!
//! The [`hypercube`] module holds the shared machinery (dimension vectors,
//! routing, the analytic load model); [`optimizer`] holds the three §4
//! optimization algorithms; [`onebucket`]/[`mbucket`]/[`ewh`] the 2-way
//! schemes; [`adaptive`] the Adaptive 1-Bucket controller of \[32\];
//! [`stats`] run-time statistics (top-k sketch, skew detection, the
//! `(L−L_mf)/p + L_mf` cost model of §3.4); [`keymap`] the predefined-key
//! round-robin assignment that fixes hash-imperfection skew (§5); and
//! [`temporal`] the temporal-skew analysis (§5).

pub mod adaptive;
pub mod ewh;
pub mod grid;
pub mod hypercube;
pub mod keymap;
pub mod mbucket;
pub mod onebucket;
pub mod optimizer;
pub mod stats;
pub mod temporal;

pub use adaptive::AdaptiveMatrix;
pub use ewh::EwhScheme;
pub use hypercube::{DimRole, Dimension, HypercubeGrouping, HypercubeScheme, PartitionKind};
pub use keymap::KeyMapGrouping;
pub use mbucket::MBucketScheme;
pub use onebucket::one_bucket;
pub use optimizer::{
    choose_scheme, estimate_scheme_cost, hash_hypercube, hybrid_hypercube, random_hypercube,
    CostCalibration, CostEstimate, SchemeKind,
};
pub use stats::{collect_table_stats, ColumnStats, SkewEstimate, SpaceSaving, TableStats};
