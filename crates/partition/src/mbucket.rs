//! The M-Bucket scheme of Okcan & Riedewald \[54\].
//!
//! M-Bucket range-partitions both join inputs and assigns the candidate
//! cells of the matrix to machines balancing the *input* each machine
//! receives. It beats 1-Bucket on low-selectivity band/inequality joins
//! because non-candidate regions are never shipped — but, as §3.1 notes, it
//! is "prone to join product skew": balancing input says nothing about the
//! *output* work per machine, which EWH fixes.

use squall_common::{Result, Tuple};
use squall_runtime::CustomGrouping;

use crate::grid::{equi_depth_bounds, RangeCond, RangeGrid};

/// M-Bucket: candidate cells weighted uniformly (input balance).
#[derive(Debug, Clone)]
pub struct MBucketScheme {
    pub grid: RangeGrid,
    r_col: usize,
    s_col: usize,
}

impl MBucketScheme {
    /// Build from key samples of both sides.
    ///
    /// `granularity` is the bucket count per side (the paper's number of
    /// histogram buckets); `machines` the join parallelism.
    pub fn build(
        r_sample: &[i64],
        s_sample: &[i64],
        r_col: usize,
        s_col: usize,
        cond: RangeCond,
        machines: usize,
        granularity: usize,
    ) -> Result<MBucketScheme> {
        let grid = RangeGrid::build(
            equi_depth_bounds(r_sample, granularity),
            equi_depth_bounds(s_sample, granularity),
            cond,
            machines,
            // Uniform cell weight: M-Bucket balances covered cells
            // (a proxy for input), blind to output density.
            &|_, _| 1.0,
        )?;
        Ok(MBucketScheme { grid, r_col, s_col })
    }

    /// Grouping for the R side.
    pub fn r_grouping(self: &std::sync::Arc<Self>) -> SideGrouping {
        SideGrouping { scheme: std::sync::Arc::clone(self), left: true }
    }

    /// Grouping for the S side.
    pub fn s_grouping(self: &std::sync::Arc<Self>) -> SideGrouping {
        SideGrouping { scheme: std::sync::Arc::clone(self), left: false }
    }
}

/// Runtime adapter for one side of an [`MBucketScheme`].
pub struct SideGrouping {
    scheme: std::sync::Arc<MBucketScheme>,
    left: bool,
}

impl CustomGrouping for SideGrouping {
    fn route(
        &self,
        _sender: usize,
        _seq: u64,
        tuple: &Tuple,
        n_targets: usize,
        out: &mut Vec<usize>,
    ) {
        let (col, targets) = if self.left {
            let k = tuple.get(self.scheme.r_col).as_int().expect("integer key");
            (k, self.scheme.grid.route_r(k))
        } else {
            let k = tuple.get(self.scheme.s_col).as_int().expect("integer key");
            (k, self.scheme.grid.route_s(k))
        };
        let _ = col;
        debug_assert!(self.scheme.grid.machines <= n_targets);
        out.extend_from_slice(targets);
    }

    fn name(&self) -> &str {
        "m-bucket"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::tuple;

    #[test]
    fn routes_matching_pairs_to_common_owner() {
        let r: Vec<i64> = (0..500).map(|i| i % 97).collect();
        let s: Vec<i64> = (0..500).map(|i| (i * 3) % 89).collect();
        let cond = RangeCond::Band(3);
        let scheme = MBucketScheme::build(&r, &s, 0, 0, cond, 6, 12).unwrap();
        for &rk in r.iter().take(60) {
            for &sk in s.iter().take(60) {
                if cond.matches(rk, sk) {
                    let owner = scheme.grid.owner_of(rk, sk).unwrap();
                    assert!(scheme.grid.route_r(rk).contains(&owner));
                    assert!(scheme.grid.route_s(sk).contains(&owner));
                }
            }
        }
    }

    #[test]
    fn grouping_adapter_routes_both_sides() {
        let keys: Vec<i64> = (0..100).collect();
        let scheme = std::sync::Arc::new(
            MBucketScheme::build(&keys, &keys, 0, 1, RangeCond::Band(1), 4, 8).unwrap(),
        );
        let rg = scheme.r_grouping();
        let sg = scheme.s_grouping();
        let mut out = vec![];
        rg.route(0, 0, &tuple![50], 4, &mut out);
        assert!(!out.is_empty());
        assert!(out.iter().all(|&m| m < 4));
        let mut out2 = vec![];
        sg.route(0, 0, &tuple![0, 50], 4, &mut out2);
        assert!(!out2.is_empty());
    }

    #[test]
    fn input_balanced_cell_counts() {
        let keys: Vec<i64> = (0..10_000).collect();
        let scheme = MBucketScheme::build(
            &keys,
            &keys,
            0,
            0,
            RangeCond::Cmp(squall_expr::join_cond::CmpOp::Lt),
            8,
            24,
        )
        .unwrap();
        // Cells per machine within 2× of each other (sweep balance).
        let mut counts = vec![0usize; 8];
        for row in &scheme.grid.owner {
            for o in row.iter().flatten() {
                counts[*o as usize] += 1;
            }
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap().max(&1) as f64;
        assert!(max / min < 2.0, "cell counts {counts:?}");
    }
}
