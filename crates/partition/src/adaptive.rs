//! The Adaptive 1-Bucket controller (Elseidy et al. \[32\], §5 "Hypercube
//! sizes").
//!
//! In an online system the relative relation sizes change at run time, so a
//! statically sized 1-Bucket matrix drifts away from the optimum. The
//! adaptive operator monitors the observed cardinalities and, when the
//! current shape's load is far enough from the optimal shape's load to pay
//! for the state migration, re-shapes the matrix *without blocking* new
//! input (migration is interleaved with processing; this module provides
//! the decision logic and the migration accounting, the executing operator
//! lives in `squall-core`).

use squall_common::Result;

use crate::onebucket::optimal_matrix;

/// A reshape decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reshape {
    pub from: (usize, usize),
    pub to: (usize, usize),
}

/// Decides *when* to re-shape a 1-Bucket matrix.
#[derive(Debug, Clone)]
pub struct AdaptiveMatrix {
    machines: usize,
    rows: usize,
    cols: usize,
    n_r: u64,
    n_s: u64,
    /// Reshape when `current_load / optimal_load` exceeds this factor
    /// (hysteresis against oscillation; \[32\] uses a similar trigger).
    trigger_ratio: f64,
    /// Do not consider reshaping before this many tuples were observed
    /// (early cardinalities are noise).
    min_tuples: u64,
    /// Number of reshapes performed so far.
    pub reshapes: u64,
}

impl AdaptiveMatrix {
    /// Start with the square-ish default shape for `machines` machines.
    pub fn new(machines: usize) -> Result<AdaptiveMatrix> {
        let (rows, cols) = optimal_matrix(1, 1, machines)?;
        Ok(AdaptiveMatrix {
            machines,
            rows,
            cols,
            n_r: 0,
            n_s: 0,
            trigger_ratio: 1.2,
            min_tuples: 64,
            reshapes: 0,
        })
    }

    /// Override the reshape trigger (`> 1`).
    pub fn with_trigger(mut self, ratio: f64) -> AdaptiveMatrix {
        assert!(ratio > 1.0);
        self.trigger_ratio = ratio;
        self
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn counts(&self) -> (u64, u64) {
        (self.n_r, self.n_s)
    }

    /// Record arrivals.
    pub fn observe_r(&mut self, n: u64) {
        self.n_r += n;
    }

    pub fn observe_s(&mut self, n: u64) {
        self.n_s += n;
    }

    /// Per-machine load of a shape for the observed cardinalities.
    fn load_of(&self, rows: usize, cols: usize) -> f64 {
        self.n_r as f64 / rows as f64 + self.n_s as f64 / cols as f64
    }

    /// Check whether a reshape is worthwhile; if so, adopt the new shape
    /// and return it. Deterministic in the observation sequence.
    pub fn check(&mut self) -> Option<Reshape> {
        if self.n_r + self.n_s < self.min_tuples {
            return None;
        }
        let (opt_r, opt_c) = optimal_matrix(self.n_r.max(1), self.n_s.max(1), self.machines)
            .expect("machines > 0 by construction");
        if (opt_r, opt_c) == (self.rows, self.cols) {
            return None;
        }
        let current = self.load_of(self.rows, self.cols);
        let optimal = self.load_of(opt_r, opt_c);
        if current > optimal * self.trigger_ratio {
            let reshape = Reshape { from: (self.rows, self.cols), to: (opt_r, opt_c) };
            self.rows = opt_r;
            self.cols = opt_c;
            self.reshapes += 1;
            Some(reshape)
        } else {
            None
        }
    }

    /// Expected number of (tuple, machine) placements that must be shipped
    /// over the network to realize a reshape, given the currently stored
    /// cardinalities: each stored R tuple must cover a row of the new grid
    /// (`new_cols` machines) and keeps, in expectation, the machines shared
    /// between its old row and its new row (`old_cols·new_cols/p`);
    /// symmetrically for S.
    pub fn migration_cost(&self, reshape: Reshape) -> f64 {
        let p = self.machines as f64;
        let (r1, c1) = (reshape.from.0 as f64, reshape.from.1 as f64);
        let (r2, c2) = (reshape.to.0 as f64, reshape.to.1 as f64);
        let r_kept = (c1 * c2 / p).min(c2);
        let s_kept = (r1 * r2 / p).min(r2);
        self.n_r as f64 * (c2 - r_kept) + self.n_s as f64 * (r2 - s_kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_square_for_unknown_sizes() {
        let a = AdaptiveMatrix::new(16).unwrap();
        assert_eq!(a.shape(), (4, 4));
    }

    #[test]
    fn no_reshape_before_min_tuples() {
        let mut a = AdaptiveMatrix::new(16).unwrap();
        a.observe_r(10);
        assert!(a.check().is_none());
    }

    #[test]
    fn no_reshape_when_balanced() {
        let mut a = AdaptiveMatrix::new(16).unwrap();
        a.observe_r(10_000);
        a.observe_s(10_000);
        assert!(a.check().is_none(), "square shape is already optimal");
    }

    #[test]
    fn reshapes_under_drift_and_improves_load() {
        // The [32] scenario: |R| grows 16× past |S|; the static 4×4 load is
        // far from optimal and the controller must adapt.
        let mut a = AdaptiveMatrix::new(16).unwrap();
        a.observe_r(16_000);
        a.observe_s(1_000);
        let before = a.load_of(4, 4);
        let reshape = a.check().expect("drift must trigger a reshape");
        assert_eq!(reshape.from, (4, 4));
        let (r, c) = reshape.to;
        assert!(r > 4, "more rows for the bigger relation, got {r}x{c}");
        let after = a.load_of(r, c);
        assert!(after < before / 1.2, "load {before} → {after}");
    }

    #[test]
    fn hysteresis_prevents_oscillation() {
        let mut a = AdaptiveMatrix::new(16).unwrap();
        a.observe_r(16_000);
        a.observe_s(1_000);
        assert!(a.check().is_some());
        // Immediately after adapting, small drift must NOT reshape again.
        a.observe_s(200);
        assert!(a.check().is_none());
        assert_eq!(a.reshapes, 1);
    }

    #[test]
    fn repeated_drift_reshapes_again() {
        let mut a = AdaptiveMatrix::new(64).unwrap();
        a.observe_r(10_000);
        a.observe_s(10_000);
        assert!(a.check().is_none());
        a.observe_r(300_000);
        assert!(a.check().is_some());
        // Now S floods.
        a.observe_s(3_000_000);
        assert!(a.check().is_some());
        assert_eq!(a.reshapes, 2);
    }

    #[test]
    fn migration_cost_scales_with_state() {
        let mut a = AdaptiveMatrix::new(16).unwrap();
        a.observe_r(1_000);
        a.observe_s(1_000);
        let reshape = Reshape { from: (4, 4), to: (8, 2) };
        let cost_small = a.migration_cost(reshape);
        a.observe_r(9_000);
        a.observe_s(9_000);
        let cost_big = a.migration_cost(reshape);
        assert!(cost_big > cost_small * 5.0);
        assert!(cost_small > 0.0);
    }

    #[test]
    fn identity_reshape_costs_little() {
        let mut a = AdaptiveMatrix::new(16).unwrap();
        a.observe_r(1_000);
        // from == to: kept machines = full overlap → R moves nothing
        // (c2 - c1*c2/p = 4 - 1 = 3 ... overlap is probabilistic for random
        // rows, so some residual cost remains; it must be below a full
        // re-placement).
        let same = a.migration_cost(Reshape { from: (4, 4), to: (4, 4) });
        assert!(same < 1_000.0 * 4.0);
    }
}
