//! Run-time statistics for partitioning decisions.
//!
//! The Hybrid-Hypercube only needs to know whether each join key is
//! skew-free (§3.4); this module estimates that from samples or from the
//! live stream:
//!
//! * [`SpaceSaving`] — the classic top-k heavy-hitter sketch, used to
//!   estimate the most-frequent-key share `L_mf / L`;
//! * [`SkewEstimate`] — the top-frequency + distinct-count summary feeding
//!   the §3.4 cost comparison `(L − L_mf)/p + L_mf` vs `L/p`.

use squall_common::{FxHashMap, FxHashSet, SplitMix64, Tuple, Value};

/// The Space-Saving heavy hitter sketch (Metwally et al.): maintains at
/// most `capacity` counters; the most frequent keys' counts are
/// overestimated by at most the smallest counter.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    counters: FxHashMap<Value, u64>,
    total: u64,
}

impl SpaceSaving {
    pub fn new(capacity: usize) -> SpaceSaving {
        assert!(capacity > 0);
        SpaceSaving { capacity, counters: FxHashMap::default(), total: 0 }
    }

    /// Observe one key.
    pub fn offer(&mut self, key: &Value) {
        self.total += 1;
        if let Some(c) = self.counters.get_mut(key) {
            *c += 1;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(key.clone(), 1);
            return;
        }
        // Evict the minimum counter and inherit its count (+1).
        let (min_key, min_count) = self
            .counters
            .iter()
            .min_by_key(|(_, &c)| c)
            .map(|(k, &c)| (k.clone(), c))
            .expect("capacity > 0");
        self.counters.remove(&min_key);
        self.counters.insert(key.clone(), min_count + 1);
    }

    /// Total keys observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Top keys with (over-)estimated counts, descending.
    pub fn top(&self, k: usize) -> Vec<(Value, u64)> {
        let mut v: Vec<(Value, u64)> = self.counters.iter().map(|(k, &c)| (k.clone(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Estimated frequency (share of the stream) of the most popular key —
    /// the `L_mf/L` input of the §3.4 cost model.
    pub fn top_frequency(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let max = self.counters.values().copied().max().unwrap_or(0);
        max as f64 / self.total as f64
    }
}

/// Skew summary of one attribute, built from a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewEstimate {
    /// Share of the hottest key.
    pub top_frequency: f64,
    /// Distinct keys seen (capped by the sketch capacity — a lower bound).
    pub distinct: usize,
    /// Sample size.
    pub sample_size: u64,
}

impl SkewEstimate {
    /// Summarize a value sample.
    pub fn from_sample<'a>(values: impl IntoIterator<Item = &'a Value>) -> SkewEstimate {
        let mut sketch = SpaceSaving::new(256);
        let mut distinct: FxHashSet<Value> = FxHashSet::default();
        let mut n = 0u64;
        for v in values {
            sketch.offer(v);
            if distinct.len() < 100_000 {
                distinct.insert(v.clone());
            }
            n += 1;
        }
        SkewEstimate {
            top_frequency: sketch.top_frequency(),
            distinct: distinct.len(),
            sample_size: n,
        }
    }

    /// §3.4 offline chooser: estimated max load per machine under hash
    /// partitioning, `(L − L_mf)/p + L_mf`, normalized by `L` (so the
    /// result is the *fraction* of the relation on the hottest machine).
    pub fn hash_load_fraction(&self, machines: usize) -> f64 {
        let f = self.top_frequency;
        // Fewer distinct keys than machines leaves machines idle: the
        // effective parallelism is the distinct count.
        let p = machines.min(self.distinct.max(1)) as f64;
        ((1.0 - f) / p + f).min(1.0)
    }

    /// Max-load fraction under random partitioning: `1/p`.
    pub fn random_load_fraction(&self, machines: usize) -> f64 {
        1.0 / machines as f64
    }

    /// Should this attribute be marked skewed (forcing random
    /// partitioning)? `slack` is the tolerated hash-over-random ratio
    /// (random also costs replication elsewhere, so hash gets the benefit
    /// of the doubt up to `1 + slack`).
    pub fn is_skewed(&self, machines: usize, slack: f64) -> bool {
        self.hash_load_fraction(machines) > self.random_load_fraction(machines) * (1.0 + slack)
    }
}

/// Sampling-based statistics of one column, scaled to the full relation —
/// the cardinality/selectivity inputs of the planner's join-order DP
/// (`squall-plan::optimizer`).
///
/// Collected by [`collect_table_stats`] (the engine of `Session::analyze`):
/// the distinct count is estimated by inverting the expected
/// distinct-in-sample curve `E[d] = D·(1 − (1 − 1/D)^s)` of a uniform
/// domain (exact when the sample covers the relation), and the top-key
/// frequency comes from a [`SpaceSaving`] sketch over the sample.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Estimated distinct values in the *full* relation (exact when the
    /// sample is the full relation).
    pub distinct: u64,
    /// Estimated share of the most frequent key (the §3.4 `L_mf/L`).
    pub top_frequency: f64,
    /// Rows actually sampled.
    pub sample_size: u64,
    /// Rows in the full relation.
    pub total_rows: u64,
}

impl ColumnStats {
    /// Summarize one column sample drawn from a relation of `total_rows`.
    pub fn from_sample<'a>(
        values: impl IntoIterator<Item = &'a Value>,
        total_rows: u64,
    ) -> ColumnStats {
        let mut sketch = SpaceSaving::new(256);
        let mut seen: FxHashSet<Value> = FxHashSet::default();
        let mut n = 0u64;
        for v in values {
            sketch.offer(v);
            if seen.len() < 1_000_000 {
                seen.insert(v.clone());
            }
            n += 1;
        }
        ColumnStats {
            distinct: estimate_distinct(seen.len() as u64, n, total_rows),
            top_frequency: sketch.top_frequency(),
            sample_size: n,
            total_rows,
        }
    }

    /// Equi-join selectivity contribution of this column under the
    /// classic uniform assumption: `1 / distinct`.
    pub fn selectivity(&self) -> f64 {
        1.0 / self.distinct.max(1) as f64
    }

    /// Bridge into the §3.4 skew chooser.
    pub fn skew(&self) -> SkewEstimate {
        SkewEstimate {
            top_frequency: self.top_frequency,
            distinct: usize::try_from(self.distinct).unwrap_or(usize::MAX),
            sample_size: self.sample_size,
        }
    }
}

/// Sampling-based statistics of one relation: row count plus per-column
/// [`ColumnStats`] (in the relation's original column order).
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Exact row count at collection time.
    pub rows: u64,
    /// Rows sampled per column.
    pub sample_size: u64,
    /// One entry per column of the relation's schema.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Stats for column `c`, if collected.
    pub fn column(&self, c: usize) -> Option<&ColumnStats> {
        self.columns.get(c)
    }
}

/// Collect [`TableStats`] over `rows` with at most `sample_cap` sampled
/// rows per column. Deterministic: the same rows, cap and seed produce the
/// same sample (a seeded uniform row filter — deliberately not systematic
/// striding, which aliases with periodic data). A relation at or under the
/// cap is scanned fully, making every estimate exact.
pub fn collect_table_stats(
    rows: &[Tuple],
    arity: usize,
    sample_cap: usize,
    seed: u64,
) -> TableStats {
    let n = rows.len();
    let sample: Vec<&Tuple> = if n <= sample_cap || sample_cap == 0 {
        rows.iter().collect()
    } else {
        let mut rng = SplitMix64::new(seed ^ 0x5157_ab1e);
        rows.iter().filter(|_| rng.next_below(n) < sample_cap).collect()
    };
    let columns = (0..arity)
        .map(|c| ColumnStats::from_sample(sample.iter().map(|t| t.get(c)), n as u64))
        .collect();
    TableStats { rows: n as u64, sample_size: sample.len() as u64, columns }
}

/// Scale a sample's distinct count `d_s` (out of `s` sampled rows) to a
/// relation of `n` rows by inverting the expected-distinct curve of a
/// uniform domain, `E[d] = D·(1 − (1 − 1/D)^s)`, which is monotonically
/// increasing in `D`. A sample with no repeats carries no curvature to
/// invert — fall back to linear extrapolation, capped at `n`.
fn estimate_distinct(d_s: u64, s: u64, n: u64) -> u64 {
    if s == 0 || d_s == 0 {
        return 0;
    }
    if s >= n {
        return d_s; // full scan: exact
    }
    if d_s >= s {
        return (((d_s as f64) * (n as f64) / (s as f64)).round() as u64).min(n);
    }
    let target = d_s as f64;
    let s = s as f64;
    let expected = |d: f64| d * (1.0 - (1.0 - 1.0 / d).powf(s));
    let (mut lo, mut hi) = (d_s as f64, n as f64);
    if expected(hi) < target {
        return n; // even n distinct values would show fewer: saturate
    }
    for _ in 0..64 {
        let mid = (lo + hi) / 2.0;
        if expected(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (hi.round() as u64).clamp(d_s, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::{tuple, SplitMix64, Zipf};

    #[test]
    fn space_saving_exact_when_under_capacity() {
        let mut s = SpaceSaving::new(16);
        for i in 0..10i64 {
            for _ in 0..=i {
                s.offer(&Value::Int(i));
            }
        }
        let top = s.top(3);
        assert_eq!(top[0], (Value::Int(9), 10));
        assert_eq!(top[1], (Value::Int(8), 9));
        assert_eq!(s.total(), 55);
        assert!((s.top_frequency() - 10.0 / 55.0).abs() < 1e-12);
    }

    #[test]
    fn space_saving_finds_heavy_hitter_beyond_capacity() {
        let mut s = SpaceSaving::new(8);
        let mut rng = SplitMix64::new(5);
        // 50% of the stream is key 0; the rest spread over 10k keys.
        for _ in 0..20_000 {
            if rng.next_f64() < 0.5 {
                s.offer(&Value::Int(0));
            } else {
                s.offer(&Value::Int(1 + rng.next_below(10_000) as i64));
            }
        }
        let top = s.top(1);
        assert_eq!(top[0].0, Value::Int(0));
        let f = s.top_frequency();
        assert!((f - 0.5).abs() < 0.1, "estimated top frequency {f}");
    }

    #[test]
    fn zipf_two_is_detected_as_skewed() {
        // The paper's workloads use zipf(2): top key ≈ 0.6 of the stream.
        let z = Zipf::new(100_000, 2.0);
        let mut rng = SplitMix64::new(9);
        let values: Vec<Value> =
            (0..30_000).map(|_| Value::Int(z.sample(&mut rng) as i64)).collect();
        let est = SkewEstimate::from_sample(values.iter());
        assert!(est.top_frequency > 0.5);
        assert!(est.is_skewed(8, 0.5));
        assert!(est.is_skewed(100, 0.5));
    }

    #[test]
    fn uniform_is_not_skewed() {
        let mut rng = SplitMix64::new(9);
        let values: Vec<Value> =
            (0..30_000).map(|_| Value::Int(rng.next_below(100_000) as i64)).collect();
        let est = SkewEstimate::from_sample(values.iter());
        assert!(est.top_frequency < 0.01);
        assert!(!est.is_skewed(8, 0.5));
    }

    #[test]
    fn small_domain_counts_as_skewed_via_idle_machines() {
        // 5 distinct keys on 64 machines: hash load fraction ≥ 1/5 ≫ 1/64.
        let values: Vec<Value> = (0..1000).map(|i| Value::Int(i % 5)).collect();
        let est = SkewEstimate::from_sample(values.iter());
        assert_eq!(est.distinct, 5);
        assert!(est.hash_load_fraction(64) >= 0.2);
        assert!(est.is_skewed(64, 0.5));
        // Even on 4 machines, 5 keys force one machine to own 2 of 5 keys
        // (0.4 of the load vs 0.25 random): still skewed.
        assert!(est.is_skewed(4, 0.5));
        // A 40-key domain on 4 machines is fine.
        let wide: Vec<Value> = (0..1000).map(|i| Value::Int(i % 40)).collect();
        let est2 = SkewEstimate::from_sample(wide.iter());
        assert!(!est2.is_skewed(4, 0.5));
    }

    #[test]
    fn cost_model_matches_paper_formula() {
        // (L − L_mf)/p + L_mf with L normalized to 1.
        let est = SkewEstimate { top_frequency: 0.3, distinct: 1_000_000, sample_size: 1000 };
        let expected = (1.0 - 0.3) / 10.0 + 0.3;
        assert!((est.hash_load_fraction(10) - expected).abs() < 1e-12);
    }

    #[test]
    fn table_stats_exact_under_sample_cap() {
        // At or under the cap the whole relation is scanned: row count,
        // distinct count and top frequency are exact.
        let rows: Vec<Tuple> = (0..500).map(|i| tuple![i % 50, 7]).collect();
        let st = collect_table_stats(&rows, 2, 1_000, 42);
        assert_eq!(st.rows, 500);
        assert_eq!(st.sample_size, 500);
        assert_eq!(st.columns[0].distinct, 50);
        assert!((st.columns[0].top_frequency - 10.0 / 500.0).abs() < 1e-12);
        assert_eq!(st.columns[1].distinct, 1);
        assert!((st.columns[1].top_frequency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_estimates_stay_within_error_bound() {
        // The documented estimator bound this suite pins: on a uniform
        // domain with a known hot key, a 20% sample keeps the distinct
        // estimate within ±15% relative error and the top-frequency
        // estimate within ±0.05 absolute. A regression past these bounds
        // means the DP would be fed junk cardinalities — fail loudly.
        let mut rng = SplitMix64::new(11);
        let n = 40_000u64;
        let rows: Vec<Tuple> = (0..n)
            .map(|_| {
                let uniform = rng.next_below(2_000) as i64;
                let hot = if rng.next_f64() < 0.5 { 0 } else { 1 + rng.next_below(10_000) as i64 };
                tuple![uniform, hot]
            })
            .collect();
        let true_distinct: std::collections::HashSet<i64> =
            rows.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        let st = collect_table_stats(&rows, 2, 8_000, 99);
        assert!(st.sample_size < n, "must actually sample, got {}", st.sample_size);
        let est = st.columns[0].distinct as f64;
        let truth = true_distinct.len() as f64;
        assert!(
            (est - truth).abs() / truth < 0.15,
            "distinct estimate {est} vs true {truth} exceeds 15% relative error"
        );
        let f = st.columns[1].top_frequency;
        assert!((f - 0.5).abs() < 0.05, "top-frequency estimate {f} vs true 0.5");
    }

    #[test]
    fn sampling_is_deterministic_and_seed_sensitive() {
        let rows: Vec<Tuple> = (0..10_000).map(|i| tuple![i]).collect();
        let a = collect_table_stats(&rows, 1, 1_000, 7);
        let b = collect_table_stats(&rows, 1, 1_000, 7);
        assert_eq!(a, b, "same seed, same sample, same estimates");
        let c = collect_table_stats(&rows, 1, 1_000, 8);
        assert_ne!(a.sample_size, 0);
        // A different seed may draw a different sample size; either way the
        // estimates must stay in the documented bound.
        assert!((c.columns[0].distinct as f64 - 10_000.0).abs() / 10_000.0 < 0.15);
    }

    #[test]
    fn distinct_inversion_handles_degenerate_inputs() {
        assert_eq!(estimate_distinct(0, 0, 100), 0);
        assert_eq!(estimate_distinct(10, 10, 10), 10, "full scan is exact");
        assert_eq!(estimate_distinct(10, 10, 1000), 1000, "no repeats: linear scale, capped");
        assert!(estimate_distinct(5, 100, 1000) >= 5);
        assert!(estimate_distinct(5, 100, 1000) <= 10, "heavy repeats: stays near sample distinct");
    }
}
