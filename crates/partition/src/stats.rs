//! Run-time statistics for partitioning decisions.
//!
//! The Hybrid-Hypercube only needs to know whether each join key is
//! skew-free (§3.4); this module estimates that from samples or from the
//! live stream:
//!
//! * [`SpaceSaving`] — the classic top-k heavy-hitter sketch, used to
//!   estimate the most-frequent-key share `L_mf / L`;
//! * [`SkewEstimate`] — the top-frequency + distinct-count summary feeding
//!   the §3.4 cost comparison `(L − L_mf)/p + L_mf` vs `L/p`.

use squall_common::{FxHashMap, FxHashSet, Value};

/// The Space-Saving heavy hitter sketch (Metwally et al.): maintains at
/// most `capacity` counters; the most frequent keys' counts are
/// overestimated by at most the smallest counter.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    counters: FxHashMap<Value, u64>,
    total: u64,
}

impl SpaceSaving {
    pub fn new(capacity: usize) -> SpaceSaving {
        assert!(capacity > 0);
        SpaceSaving { capacity, counters: FxHashMap::default(), total: 0 }
    }

    /// Observe one key.
    pub fn offer(&mut self, key: &Value) {
        self.total += 1;
        if let Some(c) = self.counters.get_mut(key) {
            *c += 1;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(key.clone(), 1);
            return;
        }
        // Evict the minimum counter and inherit its count (+1).
        let (min_key, min_count) = self
            .counters
            .iter()
            .min_by_key(|(_, &c)| c)
            .map(|(k, &c)| (k.clone(), c))
            .expect("capacity > 0");
        self.counters.remove(&min_key);
        self.counters.insert(key.clone(), min_count + 1);
    }

    /// Total keys observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Top keys with (over-)estimated counts, descending.
    pub fn top(&self, k: usize) -> Vec<(Value, u64)> {
        let mut v: Vec<(Value, u64)> = self.counters.iter().map(|(k, &c)| (k.clone(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Estimated frequency (share of the stream) of the most popular key —
    /// the `L_mf/L` input of the §3.4 cost model.
    pub fn top_frequency(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let max = self.counters.values().copied().max().unwrap_or(0);
        max as f64 / self.total as f64
    }
}

/// Skew summary of one attribute, built from a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewEstimate {
    /// Share of the hottest key.
    pub top_frequency: f64,
    /// Distinct keys seen (capped by the sketch capacity — a lower bound).
    pub distinct: usize,
    /// Sample size.
    pub sample_size: u64,
}

impl SkewEstimate {
    /// Summarize a value sample.
    pub fn from_sample<'a>(values: impl IntoIterator<Item = &'a Value>) -> SkewEstimate {
        let mut sketch = SpaceSaving::new(256);
        let mut distinct: FxHashSet<Value> = FxHashSet::default();
        let mut n = 0u64;
        for v in values {
            sketch.offer(v);
            if distinct.len() < 100_000 {
                distinct.insert(v.clone());
            }
            n += 1;
        }
        SkewEstimate {
            top_frequency: sketch.top_frequency(),
            distinct: distinct.len(),
            sample_size: n,
        }
    }

    /// §3.4 offline chooser: estimated max load per machine under hash
    /// partitioning, `(L − L_mf)/p + L_mf`, normalized by `L` (so the
    /// result is the *fraction* of the relation on the hottest machine).
    pub fn hash_load_fraction(&self, machines: usize) -> f64 {
        let f = self.top_frequency;
        // Fewer distinct keys than machines leaves machines idle: the
        // effective parallelism is the distinct count.
        let p = machines.min(self.distinct.max(1)) as f64;
        ((1.0 - f) / p + f).min(1.0)
    }

    /// Max-load fraction under random partitioning: `1/p`.
    pub fn random_load_fraction(&self, machines: usize) -> f64 {
        1.0 / machines as f64
    }

    /// Should this attribute be marked skewed (forcing random
    /// partitioning)? `slack` is the tolerated hash-over-random ratio
    /// (random also costs replication elsewhere, so hash gets the benefit
    /// of the doubt up to `1 + slack`).
    pub fn is_skewed(&self, machines: usize, slack: f64) -> bool {
        self.hash_load_fraction(machines) > self.random_load_fraction(machines) * (1.0 + slack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::{SplitMix64, Zipf};

    #[test]
    fn space_saving_exact_when_under_capacity() {
        let mut s = SpaceSaving::new(16);
        for i in 0..10i64 {
            for _ in 0..=i {
                s.offer(&Value::Int(i));
            }
        }
        let top = s.top(3);
        assert_eq!(top[0], (Value::Int(9), 10));
        assert_eq!(top[1], (Value::Int(8), 9));
        assert_eq!(s.total(), 55);
        assert!((s.top_frequency() - 10.0 / 55.0).abs() < 1e-12);
    }

    #[test]
    fn space_saving_finds_heavy_hitter_beyond_capacity() {
        let mut s = SpaceSaving::new(8);
        let mut rng = SplitMix64::new(5);
        // 50% of the stream is key 0; the rest spread over 10k keys.
        for _ in 0..20_000 {
            if rng.next_f64() < 0.5 {
                s.offer(&Value::Int(0));
            } else {
                s.offer(&Value::Int(1 + rng.next_below(10_000) as i64));
            }
        }
        let top = s.top(1);
        assert_eq!(top[0].0, Value::Int(0));
        let f = s.top_frequency();
        assert!((f - 0.5).abs() < 0.1, "estimated top frequency {f}");
    }

    #[test]
    fn zipf_two_is_detected_as_skewed() {
        // The paper's workloads use zipf(2): top key ≈ 0.6 of the stream.
        let z = Zipf::new(100_000, 2.0);
        let mut rng = SplitMix64::new(9);
        let values: Vec<Value> =
            (0..30_000).map(|_| Value::Int(z.sample(&mut rng) as i64)).collect();
        let est = SkewEstimate::from_sample(values.iter());
        assert!(est.top_frequency > 0.5);
        assert!(est.is_skewed(8, 0.5));
        assert!(est.is_skewed(100, 0.5));
    }

    #[test]
    fn uniform_is_not_skewed() {
        let mut rng = SplitMix64::new(9);
        let values: Vec<Value> =
            (0..30_000).map(|_| Value::Int(rng.next_below(100_000) as i64)).collect();
        let est = SkewEstimate::from_sample(values.iter());
        assert!(est.top_frequency < 0.01);
        assert!(!est.is_skewed(8, 0.5));
    }

    #[test]
    fn small_domain_counts_as_skewed_via_idle_machines() {
        // 5 distinct keys on 64 machines: hash load fraction ≥ 1/5 ≫ 1/64.
        let values: Vec<Value> = (0..1000).map(|i| Value::Int(i % 5)).collect();
        let est = SkewEstimate::from_sample(values.iter());
        assert_eq!(est.distinct, 5);
        assert!(est.hash_load_fraction(64) >= 0.2);
        assert!(est.is_skewed(64, 0.5));
        // Even on 4 machines, 5 keys force one machine to own 2 of 5 keys
        // (0.4 of the load vs 0.25 random): still skewed.
        assert!(est.is_skewed(4, 0.5));
        // A 40-key domain on 4 machines is fine.
        let wide: Vec<Value> = (0..1000).map(|i| Value::Int(i % 40)).collect();
        let est2 = SkewEstimate::from_sample(wide.iter());
        assert!(!est2.is_skewed(4, 0.5));
    }

    #[test]
    fn cost_model_matches_paper_formula() {
        // (L − L_mf)/p + L_mf with L normalized to 1.
        let est = SkewEstimate { top_frequency: 0.3, distinct: 1_000_000, sample_size: 1000 };
        let expected = (1.0 - 0.3) / 10.0 + 0.3;
        assert!((est.hash_load_fraction(10) - expected).abs() < 1e-12);
    }
}
