//! Live, externally-fed sources for **resident** topologies.
//!
//! A standing materialized view keeps its topology up after the initial
//! load: each source relation is backed by a [`LiveQueue`] that an
//! external writer (the session's `append`/`retract` path) pushes
//! [`LiveItem`]s into, and a [`LiveSpout`] that drains the queue from
//! inside the worker pool. When the queue is empty the spout reports
//! [`SpoutPoll::Idle`] and its task parks — no Eos, no busy loop — until
//! the writer wakes it through a [`crate::executor::TaskWaker`]. Closing
//! the queue (`DROP MATERIALIZED VIEW`) turns the next poll into
//! [`SpoutPoll::Eos`], which triggers the normal flush/punctuate shutdown
//! cascade of the whole topology.

use std::collections::VecDeque;
use std::sync::Mutex;

use squall_common::Tuple;

use crate::topology::{Spout, SpoutPoll};

/// One item queued on a live source.
#[derive(Debug, Clone)]
pub enum LiveItem {
    /// A data delta: the tuple already carries its trailing
    /// multiplicity/epoch bookkeeping columns (the live data plane is
    /// payload-agnostic).
    Delta(Tuple),
    /// An epoch watermark to broadcast downstream after the deltas that
    /// precede it in the queue.
    Watermark(u64),
    /// A checkpoint barrier to broadcast downstream after the epoch
    /// watermark it seals (see [`crate::message::Message::Barrier`]).
    Barrier(u64),
}

struct LiveState {
    queue: VecDeque<LiveItem>,
    closed: bool,
}

/// An unbounded MPSC queue feeding one resident spout task. Writers push
/// deltas and epoch watermarks; the owning [`LiveSpout`] drains them in
/// order. Unboundedness is deliberate: the producer is the user's
/// `append()` call, and backpressure is applied further downstream by the
/// topology's inbox capacities (the spout task parks when its targets are
/// over capacity, leaving items queued here).
pub struct LiveQueue {
    inner: Mutex<LiveState>,
}

impl Default for LiveQueue {
    fn default() -> Self {
        LiveQueue::new()
    }
}

impl LiveQueue {
    /// A fresh, open, empty queue.
    pub fn new() -> LiveQueue {
        LiveQueue { inner: Mutex::new(LiveState { queue: VecDeque::new(), closed: false }) }
    }

    /// Queue one item. Pushes to a closed queue are dropped silently (the
    /// view is shutting down; the topology will never poll them).
    pub fn push(&self, item: LiveItem) {
        let mut inner = self.inner.lock().expect("live queue poisoned");
        if !inner.closed {
            inner.queue.push_back(item);
        }
    }

    /// Close the queue: the spout's next empty poll returns Eos and the
    /// resident topology begins its normal shutdown cascade. Items already
    /// queued are still delivered first.
    pub fn close(&self) {
        self.inner.lock().expect("live queue poisoned").closed = true;
    }

    /// Items currently queued (diagnostics).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("live queue poisoned").queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn pop(&self) -> SpoutPoll {
        let mut inner = self.inner.lock().expect("live queue poisoned");
        match inner.queue.pop_front() {
            Some(LiveItem::Delta(t)) => SpoutPoll::Tuple(t),
            Some(LiveItem::Watermark(ts)) => SpoutPoll::Watermark(ts),
            Some(LiveItem::Barrier(epoch)) => SpoutPoll::Barrier(epoch),
            None if inner.closed => SpoutPoll::Eos,
            None => SpoutPoll::Idle,
        }
    }
}

/// The spout half of a [`LiveQueue`]: drains the queue, parking idle when
/// it runs dry and ending only once the queue has been closed *and*
/// drained.
pub struct LiveSpout {
    queue: std::sync::Arc<LiveQueue>,
}

impl LiveSpout {
    /// A spout draining `queue`.
    pub fn new(queue: std::sync::Arc<LiveQueue>) -> LiveSpout {
        LiveSpout { queue }
    }
}

impl Spout for LiveSpout {
    fn next(&mut self) -> Option<Tuple> {
        // Only meaningful for bounded use; the executor drives resident
        // spouts through `poll`. Watermarks and barriers cannot be
        // represented here, so skip them and stop on Idle/Eos.
        loop {
            match self.queue.pop() {
                SpoutPoll::Tuple(t) => return Some(t),
                SpoutPoll::Watermark(_) | SpoutPoll::Barrier(_) => continue,
                SpoutPoll::Idle | SpoutPoll::Eos => return None,
            }
        }
    }

    fn poll(&mut self) -> SpoutPoll {
        self.queue.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::tuple;

    #[test]
    fn pops_in_order_and_idles_when_dry() {
        let q = std::sync::Arc::new(LiveQueue::new());
        q.push(LiveItem::Delta(tuple![1]));
        q.push(LiveItem::Watermark(7));
        let mut s = LiveSpout::new(std::sync::Arc::clone(&q));
        assert!(matches!(s.poll(), SpoutPoll::Tuple(_)));
        assert!(matches!(s.poll(), SpoutPoll::Watermark(7)));
        assert!(matches!(s.poll(), SpoutPoll::Idle));
        q.push(LiveItem::Delta(tuple![2]));
        assert!(matches!(s.poll(), SpoutPoll::Tuple(_)));
        q.close();
        assert!(matches!(s.poll(), SpoutPoll::Eos));
    }

    #[test]
    fn close_delivers_queued_items_first() {
        let q = std::sync::Arc::new(LiveQueue::new());
        q.push(LiveItem::Delta(tuple![1]));
        q.close();
        q.push(LiveItem::Delta(tuple![2])); // dropped: queue already closed
        let mut s = LiveSpout::new(std::sync::Arc::clone(&q));
        assert!(matches!(s.poll(), SpoutPoll::Tuple(_)));
        assert!(matches!(s.poll(), SpoutPoll::Eos));
    }

    #[test]
    fn next_skips_watermarks() {
        let q = std::sync::Arc::new(LiveQueue::new());
        q.push(LiveItem::Watermark(1));
        q.push(LiveItem::Delta(tuple![5]));
        let mut s = LiveSpout::new(std::sync::Arc::clone(&q));
        assert_eq!(s.next(), Some(tuple![5]));
        assert_eq!(s.next(), None);
    }
}
