//! Stream groupings: how tuples flowing over one topology edge are routed
//! from a sender task to the tasks of the downstream node.
//!
//! These mirror Storm's built-in groupings (§2: "An edge in the topology
//! graph is called stream grouping, and it represents partitioning of
//! incoming tuples from a stream among the machines of a bolt") plus the
//! `Custom` escape hatch through which all of Squall's partitioning schemes
//! (1-Bucket, M-Bucket, EWH, the hypercube family) are installed.

use std::sync::Arc;

use squall_common::hash::{fx_hash, partition_of};
use squall_common::{SplitMix64, Tuple};

/// A routing decision: the set of target task indexes for one tuple.
/// Replication (the R in the paper's SAR principle) is expressed by
/// returning more than one target.
pub trait CustomGrouping: Send + Sync {
    /// Compute targets for `tuple`, the `seq`-th tuple emitted over this
    /// edge by `sender_task`. Implementations must be deterministic in
    /// `(sender_task, seq, tuple)` so that load measurements are exactly
    /// reproducible; "random" schemes derive their randomness from a seed
    /// and `(sender_task, seq)`.
    fn route(
        &self,
        sender_task: usize,
        seq: u64,
        tuple: &Tuple,
        n_targets: usize,
        out: &mut Vec<usize>,
    );

    /// Human-readable name for plan explain output.
    fn name(&self) -> &str {
        "custom"
    }
}

/// Per-edge tuple routing policy.
#[derive(Clone)]
pub enum Grouping {
    /// Round-robin per sender: even load, content-insensitive.
    Shuffle,
    /// Hash on the given key columns (Storm's fields grouping) — the
    /// content-sensitive scheme that is cheap but skew-prone (§5).
    Fields(Vec<usize>),
    /// Replicate to every task (Storm's all grouping) — used to broadcast
    /// small relations (§3.2 star schema).
    All,
    /// Everything to task 0 (Storm's global grouping) — final aggregation.
    Global,
    /// A Squall partitioning scheme.
    Custom(Arc<dyn CustomGrouping>),
}

impl std::fmt::Debug for Grouping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Grouping::Shuffle => write!(f, "Shuffle"),
            Grouping::Fields(cols) => write!(f, "Fields({cols:?})"),
            Grouping::All => write!(f, "All"),
            Grouping::Global => write!(f, "Global"),
            Grouping::Custom(c) => write!(f, "Custom({})", c.name()),
        }
    }
}

impl Grouping {
    /// Route one tuple. `out` is cleared and filled with target tasks.
    #[inline]
    pub fn route(
        &self,
        sender_task: usize,
        seq: u64,
        tuple: &Tuple,
        n_targets: usize,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        match self {
            Grouping::Shuffle => {
                // Round-robin offset by sender so senders interleave.
                out.push(((seq as usize) + sender_task) % n_targets);
            }
            Grouping::Fields(cols) => {
                let mut h = squall_common::hash::FxHasher::default();
                use std::hash::{Hash, Hasher};
                for &c in cols {
                    tuple.get(c).hash(&mut h);
                }
                out.push(partition_of(h.finish(), n_targets));
            }
            Grouping::All => out.extend(0..n_targets),
            Grouping::Global => out.push(0),
            Grouping::Custom(c) => c.route(sender_task, seq, tuple, n_targets, out),
        }
    }
}

/// Deterministic per-tuple randomness helper for "random" groupings:
/// a SplitMix64 stream keyed by `(seed, sender_task, seq)`.
#[inline]
pub fn tuple_rng(seed: u64, sender_task: usize, seq: u64) -> SplitMix64 {
    SplitMix64::new(fx_hash(&(seed, sender_task as u64, seq)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::tuple;

    #[test]
    fn shuffle_round_robins() {
        let g = Grouping::Shuffle;
        let t = tuple![1];
        let mut out = vec![];
        let mut seen = vec![0usize; 4];
        for seq in 0..400 {
            g.route(0, seq, &t, 4, &mut out);
            assert_eq!(out.len(), 1);
            seen[out[0]] += 1;
        }
        assert!(seen.iter().all(|&c| c == 100), "round robin must be exactly even: {seen:?}");
    }

    #[test]
    fn fields_is_key_deterministic() {
        let g = Grouping::Fields(vec![0]);
        let mut a = vec![];
        let mut b = vec![];
        g.route(0, 0, &tuple![42, "x"], 8, &mut a);
        g.route(3, 99, &tuple![42, "y"], 8, &mut b);
        assert_eq!(a, b, "same key must go to the same task regardless of sender/seq");
    }

    #[test]
    fn fields_spreads_keys() {
        let g = Grouping::Fields(vec![0]);
        let mut out = vec![];
        let mut seen = std::collections::HashSet::new();
        for k in 0..100i64 {
            g.route(0, 0, &tuple![k], 8, &mut out);
            seen.insert(out[0]);
        }
        assert!(seen.len() >= 7, "100 keys should hit almost all of 8 tasks");
    }

    #[test]
    fn all_broadcasts() {
        let g = Grouping::All;
        let mut out = vec![];
        g.route(0, 0, &tuple![1], 5, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn global_targets_task_zero() {
        let g = Grouping::Global;
        let mut out = vec![];
        g.route(2, 17, &tuple![1], 5, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn custom_grouping_plugs_in() {
        struct Evens;
        impl CustomGrouping for Evens {
            fn route(&self, _s: usize, _q: u64, t: &Tuple, n: usize, out: &mut Vec<usize>) {
                let v = t.get(0).as_int().unwrap() as usize;
                out.push(v % n);
            }
        }
        let g = Grouping::Custom(Arc::new(Evens));
        let mut out = vec![];
        g.route(0, 0, &tuple![7], 4, &mut out);
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn tuple_rng_is_deterministic_and_varies() {
        let a = tuple_rng(1, 2, 3).next_u64();
        let b = tuple_rng(1, 2, 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(tuple_rng(1, 2, 3).next_u64(), tuple_rng(1, 2, 4).next_u64());
        assert_ne!(tuple_rng(1, 2, 3).next_u64(), tuple_rng(2, 2, 3).next_u64());
    }
}
