//! Messages exchanged between tasks.

use squall_common::Chunk;

/// Identifier of a topology node (spout or bolt). Tasks of a node are
/// addressed as `(NodeId, task_index)`.
pub type NodeId = usize;

/// A message on a task's inbox.
///
/// The data plane is *batched and columnar*: senders route tuples per-row
/// into per-target [`ChunkBuilder`](squall_common::ChunkBuilder) scatter
/// buffers (see [`crate::topology::OutputCollector`]) and ship one
/// `Batch` — a columnar [`Chunk`] — per `batch_size` rows (or whatever is
/// buffered when the stream punctuates). Batching amortizes the
/// per-message queue and scheduling costs without introducing micro-batch
/// *barriers* — a batch is flushed the moment it fills, so pipelining is
/// preserved (§8.1's argument against synchronized micro-batching still
/// holds). Because routing happens per row *before* buffering, chunk
/// boundaries never affect partitioning, loads, or results.
#[derive(Debug, Clone)]
pub enum Message {
    /// A run of data rows in columnar layout, tagged with the node that
    /// emitted them (bolts with several upstream streams — e.g. joiners —
    /// dispatch on the origin, exactly like Storm bolts dispatch on the
    /// source component id). All rows of a batch share one origin (and one
    /// arity) and arrive in the sender's emission order.
    Batch {
        /// The node that emitted the rows.
        origin: NodeId,
        /// The rows, as a columnar chunk.
        chunk: Chunk,
    },
    /// End-of-stream punctuation from one upstream *task*. A task finishes
    /// once it has received one `Eos` per upstream task. `Eos` follows all
    /// of that sender's data (scatter buffers are flushed first).
    Eos,
    /// Event-time progress punctuation from one upstream task: the sender
    /// promises that every data tuple it emits *after* this message
    /// carries event time ≥ `ts`. Watermarks are broadcast to every
    /// downstream task (groupings do not apply — progress is global) and
    /// are ordered after the sender's earlier data (scatter buffers are
    /// flushed first, exactly like `Eos`). Windowed aggregation closes
    /// windows on the minimum watermark across its upstream tasks; a task
    /// that finishes emits a final `ts = u64::MAX` watermark so completed
    /// inputs never hold the minimum down.
    Watermark {
        /// The node that emitted the watermark.
        origin: NodeId,
        /// The emitting task's index *within* `origin` (watermark minima
        /// are tracked per upstream task, not per node).
        from_task: usize,
        /// The event-time frontier being promised.
        ts: u64,
    },
    /// A checkpoint barrier (Chandy-Lamport style alignment marker). The
    /// coordinator injects one per source after the epoch-`epoch`
    /// watermark; barriers are broadcast downstream exactly like
    /// watermarks (flushed after the sender's earlier data, one per
    /// upstream task). A task *aligns* once it has received one barrier
    /// for `epoch` from every upstream task; at that instant its operator
    /// state reflects precisely the deltas of epochs ≤ `epoch`, so the
    /// aligned task snapshots its state and forwards the barrier. Because
    /// every channel is FIFO and each task applies input single-threadedly,
    /// alignment needs no channel capture and never stalls the pipeline.
    Barrier {
        /// The checkpoint epoch this barrier seals.
        epoch: u64,
    },
}
