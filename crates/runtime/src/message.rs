//! Messages exchanged between tasks.

use squall_common::Tuple;

/// Identifier of a topology node (spout or bolt). Tasks of a node are
/// addressed as `(NodeId, task_index)`.
pub type NodeId = usize;

/// A message on a task's input channel.
#[derive(Debug, Clone)]
pub enum Message {
    /// A data tuple, tagged with the node it was emitted by (bolts with
    /// several upstream streams — e.g. joiners — dispatch on the origin,
    /// exactly like Storm bolts dispatch on the source component id).
    Data { origin: NodeId, tuple: Tuple },
    /// End-of-stream punctuation from one upstream *task*. A task finishes
    /// once it has received one `Eos` per upstream task.
    Eos,
}
