//! # squall-runtime
//!
//! A from-scratch replacement for the distribution platform Squall runs on
//! (Twitter Storm, §2 "Distribution platform"). The paper's contributions
//! are explicitly "orthogonal to the underlying system (Storm)"; what the
//! engine needs from the substrate is:
//!
//! * **topologies** — DAGs of *spouts* (data sources) and *bolts*
//!   (computation), each with a requested parallelism;
//! * **stream groupings** — per-edge routing of tuples from the tasks of an
//!   upstream node to the tasks of a downstream node (shuffle / fields /
//!   all / global / custom). Squall's partitioning schemes are implemented
//!   as [`CustomGrouping`]s;
//! * **tuple-at-a-time, pipelined execution** with no micro-batch
//!   synchronization barriers (§8.1 explains why micro-batching raises
//!   latency; this runtime, like Storm, has none);
//! * **per-task load accounting** — the number of input tuples each task
//!   (the paper's "machine": a core with an exclusive slice of memory)
//!   receives, which is the quantity behind Table 1, Table 2 and the skew
//!   degree / replication factor metrics of §6.
//!
//! A "machine" in the paper maps to a *task* here: one OS thread with
//! exclusive state, connected to peers by bounded channels (backpressure
//! replaces Storm's flow control). Message delivery is exactly-once and in
//! order per sender-receiver pair, which matches the guarantees Squall
//! relies on from Storm. [`Topology::run`] collects everything a finished
//! run produced; [`Topology::launch`] instead returns a [`RunHandle`]
//! whose sink output can be consumed while the topology is still running —
//! the streaming face used by `ResultSet` at the session layer.

pub mod executor;
pub mod grouping;
pub mod message;
pub mod metrics;
pub mod topology;

pub use executor::{RunHandle, RunOutcome};
pub use grouping::{CustomGrouping, Grouping};
pub use message::NodeId;
pub use metrics::{MetricsSnapshot, NodeMetrics};
pub use topology::{
    sort_by_event_time, Bolt, FnBolt, IterSpout, IterSpoutVec, OutputCollector, Spout, Topology,
    TopologyBuilder,
};
