//! # squall-runtime
//!
//! A from-scratch replacement for the distribution platform Squall runs on
//! (Twitter Storm, §2 "Distribution platform"). The paper's contributions
//! are explicitly "orthogonal to the underlying system (Storm)"; what the
//! engine needs from the substrate is:
//!
//! * **topologies** — DAGs of *spouts* (data sources) and *bolts*
//!   (computation), each with a requested parallelism;
//! * **stream groupings** — per-edge routing of tuples from the tasks of an
//!   upstream node to the tasks of a downstream node (shuffle / fields /
//!   all / global / custom). Squall's partitioning schemes are implemented
//!   as [`CustomGrouping`]s;
//! * **pipelined execution** with no micro-batch synchronization barriers
//!   (§8.1 explains why barrier micro-batching raises latency). The data
//!   plane here is *transport-batched* — tuples ship in
//!   [`message::Message::Batch`]es that flush the moment they fill — which
//!   amortizes per-message costs without ever stalling the pipeline on a
//!   batch boundary;
//! * **per-task load accounting** — the number of input tuples each task
//!   (the paper's "machine": a core with an exclusive slice of memory)
//!   receives, which is the quantity behind Table 1, Table 2 and the skew
//!   degree / replication factor metrics of §6.
//!
//! A "machine" in the paper maps to a *task* here: a cooperatively
//! scheduled state machine with exclusive operator state, executed by a
//! **fixed pool of worker threads** (work-stealing deques + shared
//! injector), so task counts far beyond the core count cost queue entries
//! rather than OS threads. Tasks communicate through bounded inboxes; a
//! sender that overfills one *yields* to the scheduler instead of blocking
//! its thread (backpressure replaces Storm's flow control). Message
//! delivery is exactly-once and in order per sender-receiver pair, which
//! matches the guarantees Squall relies on from Storm.
//!
//! [`Topology::run`] collects everything a finished run produced;
//! [`Topology::launch`] instead returns a [`RunHandle`] whose sink output
//! can be consumed while the topology is still running — the streaming
//! face used by `ResultSet` at the session layer. Scheduling behaviour
//! (worker count, steals, yields, queue depth) is reported in
//! [`MetricsSnapshot::scheduler`].

pub mod executor;
pub mod grouping;
pub mod live;
pub mod message;
pub mod metrics;
pub mod topology;
pub mod transport;

pub use executor::{RunHandle, RunOutcome, TaskId, TaskWaker};
pub use grouping::{CustomGrouping, Grouping};
pub use live::{LiveItem, LiveQueue, LiveSpout};
pub use message::NodeId;
pub use metrics::{MetricsSnapshot, NodeMetrics, SchedulerStats};
pub use topology::{
    sort_by_event_time, Bolt, FnBolt, IterSpout, IterSpoutVec, OutputCollector, Spout, SpoutPoll,
    Topology, TopologyBuilder, DEFAULT_BATCH_SIZE,
};
pub use transport::{
    accept_with_deadline, connect_with_retry, describe_placement, plan_placement,
    read_frame_deadline, ClusterLinks, ClusterRun, ClusterSummary, Frame, FrameSender,
    LocalTransport, PeerWireStats, Placement, TcpTransport, Transport, TransportStats,
    HANDSHAKE_TIMEOUT,
};
