//! Thread-per-task execution of a topology.
//!
//! Each task (the paper's "machine") runs on its own OS thread and owns its
//! operator state exclusively — a faithful shared-nothing model (§2: "Squall
//! assumes a shared-nothing architecture"). Tasks communicate only through
//! bounded channels; a full downstream queue blocks the sender, giving the
//! same backpressure behaviour Storm's max-spout-pending provides.
//!
//! ## Termination
//! Sources are bounded streams; when a spout is exhausted it punctuates all
//! downstream tasks with `Eos`. A bolt task finishes once it has received
//! one `Eos` from every upstream task, then runs `Bolt::finish` and
//! punctuates its own downstreams. The topology is a DAG, so this
//! terminates.
//!
//! ## Failures
//! A task that returns an error (e.g. [`SquallError::MemoryOverflow`] when a
//! skewed Hash-Hypercube machine exceeds its budget, §7.3) records the
//! error, raises a global abort flag and keeps *draining* its input so
//! upstream tasks can terminate. Spouts stop producing when they observe
//! the flag. The run returns the partial outputs, the metrics accumulated
//! so far and the error — exactly what the paper's "extrapolate from tuples
//! processed before running out of memory" methodology needs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use squall_common::{SquallError, Tuple};

use crate::message::{Message, NodeId};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::topology::{EdgeOut, NodeKind, OutputCollector, Topology};

/// Everything a finished run reports.
#[derive(Debug)]
pub struct RunOutcome {
    /// Tuples emitted by sink nodes, tagged with the emitting node.
    pub outputs: Vec<(NodeId, Tuple)>,
    /// Frozen per-task counters.
    pub metrics: MetricsSnapshot,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// First error raised by any task, if the run aborted.
    pub error: Option<SquallError>,
}

impl RunOutcome {
    /// Output tuples without node tags (single-sink convenience).
    pub fn tuples(&self) -> Vec<Tuple> {
        self.outputs.iter().map(|(_, t)| t.clone()).collect()
    }

    /// Fail the caller if the run aborted.
    pub fn into_result(self) -> squall_common::Result<RunOutcome> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self),
        }
    }
}

struct Shared {
    abort: AtomicBool,
    error: Mutex<Option<SquallError>>,
    /// Task threads still running; the last one to exit stamps
    /// `finished_at`, so `elapsed` measures engine time even when a
    /// streaming consumer drains the sink slowly.
    live_tasks: std::sync::atomic::AtomicUsize,
    finished_at: Mutex<Option<Instant>>,
}

impl Shared {
    fn raise(&self, e: SquallError) {
        let mut slot = self.error.lock().expect("error slot poisoned");
        if slot.is_none() {
            *slot = Some(e);
        }
        self.abort.store(true, Ordering::SeqCst);
    }
}

/// Stamps the engine finish time when the last task exits — held by each
/// task thread and dropped on exit, panic included.
struct TaskGuard(Arc<Shared>);

impl Drop for TaskGuard {
    fn drop(&mut self) {
        if self.0.live_tasks.fetch_sub(1, Ordering::AcqRel) == 1 {
            *self.0.finished_at.lock().expect("finish stamp poisoned") = Some(Instant::now());
        }
    }
}

/// A topology that has been launched but not yet joined: task threads are
/// running and sink emissions can be consumed *while they run* via
/// [`RunHandle::recv`]. [`RunHandle::finish`] waits for completion;
/// dropping the handle instead aborts the run and then waits, so an
/// abandoned handle never leaks running tasks. The sink channel is
/// unbounded, so an unconsumed handle never deadlocks them.
pub struct RunHandle {
    sink_rx: Receiver<(NodeId, Tuple)>,
    handles: Vec<JoinHandle<()>>,
    registry: Arc<MetricsRegistry>,
    shared: Arc<Shared>,
    start: Instant,
}

impl RunHandle {
    /// Next sink emission, blocking until one arrives; `None` once every
    /// sink task has finished. This is the streaming face of the runtime.
    pub fn recv(&mut self) -> Option<(NodeId, Tuple)> {
        self.sink_rx.recv().ok()
    }

    /// Abort the run: spouts stop at their next emission, in-flight tuples
    /// are drained and discarded. Already-produced sink output remains
    /// readable.
    pub fn abort(&self) {
        self.shared.abort.store(true, Ordering::SeqCst);
    }

    /// Wait for all tasks, discarding any unconsumed sink output, and
    /// report metrics, timing and the first error (if any).
    pub fn finish(mut self) -> RunOutcome {
        let mut outputs = Vec::new();
        while let Some(item) = self.recv() {
            outputs.push(item);
        }
        self.finish_with(outputs)
    }

    fn finish_with(mut self, outputs: Vec<(NodeId, Tuple)>) -> RunOutcome {
        for h in self.handles.drain(..) {
            // A panicking task is a bug in an operator; surface it.
            if h.join().is_err() {
                self.shared.raise(SquallError::Runtime("task panicked".into()));
            }
        }
        // Engine wall-clock: until the last task exited, not until the
        // consumer finished draining the sink.
        let finished = self
            .shared
            .finished_at
            .lock()
            .expect("finish stamp poisoned")
            .take()
            .unwrap_or_else(Instant::now);
        let elapsed = finished.duration_since(self.start);
        let error = self.shared.error.lock().expect("error slot poisoned").take();
        RunOutcome { outputs, metrics: self.registry.snapshot(), elapsed, error }
    }
}

impl Drop for RunHandle {
    fn drop(&mut self) {
        if self.handles.is_empty() {
            return; // finished via finish_with
        }
        self.abort();
        while self.sink_rx.recv().is_ok() {}
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Topology {
    /// Execute the topology to completion and collect sink output,
    /// metrics and timing.
    pub fn run(self) -> RunOutcome {
        let mut handle = self.launch();
        let mut outputs = Vec::new();
        while let Some(item) = handle.recv() {
            outputs.push(item);
        }
        handle.finish_with(outputs)
    }

    /// Start every task thread and return a [`RunHandle`] that streams the
    /// sink output as it is produced.
    pub fn launch(self) -> RunHandle {
        let n_nodes = self.nodes.len();
        let names: Vec<String> = self.nodes.iter().map(|n| n.name.clone()).collect();
        let parallelism: Vec<usize> = self.nodes.iter().map(|n| n.parallelism).collect();
        let registry = Arc::new(MetricsRegistry::new(names, &parallelism));
        let total_tasks: usize = parallelism.iter().sum();
        let shared = Arc::new(Shared {
            abort: AtomicBool::new(false),
            error: Mutex::new(None),
            live_tasks: std::sync::atomic::AtomicUsize::new(total_tasks),
            finished_at: Mutex::new(None),
        });

        // Input channel per task (spouts get one too, unused, for
        // uniformity — it is dropped immediately).
        let mut senders: Vec<Vec<std::sync::mpsc::SyncSender<Message>>> =
            Vec::with_capacity(n_nodes);
        let mut receivers: Vec<Vec<Option<Receiver<Message>>>> = Vec::with_capacity(n_nodes);
        for node in &self.nodes {
            let mut s = Vec::with_capacity(node.parallelism);
            let mut r = Vec::with_capacity(node.parallelism);
            for _ in 0..node.parallelism {
                let (tx, rx) = sync_channel::<Message>(self.channel_capacity);
                s.push(tx);
                r.push(Some(rx));
            }
            senders.push(s);
            receivers.push(r);
        }

        let (sink_tx, sink_rx) = channel::<(NodeId, Tuple)>();
        let sinks = self.sinks();

        // Expected EOS per node = total upstream tasks.
        let expected_eos: Vec<usize> = (0..n_nodes)
            .map(|i| self.edges.iter().filter(|e| e.to == i).map(|e| parallelism[e.from]).sum())
            .collect();

        let start = Instant::now();
        let mut handles = Vec::new();
        for (node_id, node) in self.nodes.into_iter().enumerate() {
            let is_sink = sinks.contains(&node_id);
            let node_receivers = std::mem::take(&mut receivers[node_id]);
            for (task, mut receiver) in node_receivers.into_iter().enumerate() {
                // Build this task's output side.
                let edges: Vec<EdgeOut> = self
                    .edges
                    .iter()
                    .filter(|e| e.from == node_id)
                    .map(|e| EdgeOut {
                        grouping: e.grouping.clone(),
                        targets: senders[e.to].clone(),
                        seq: 0,
                    })
                    .collect();
                let counters = registry.task(node_id, task);
                let mut out = OutputCollector {
                    node: node_id,
                    task,
                    edges,
                    sink: sink_tx.clone(),
                    is_sink,
                    counters: Arc::clone(&counters),
                    scratch: Vec::with_capacity(8),
                    disconnected: false,
                };
                let shared = Arc::clone(&shared);
                match &node.kind {
                    NodeKind::Spout(factory) => {
                        let mut spout = factory(task);
                        // Spouts never receive; drop the channel so senders
                        // to it (there are none) would fail fast.
                        drop(receiver.take());
                        handles.push(std::thread::spawn(move || {
                            let _guard = TaskGuard(Arc::clone(&shared));
                            while !shared.abort.load(Ordering::Relaxed) {
                                match spout.next() {
                                    Some(t) => out.emit(t),
                                    None => break,
                                }
                            }
                            send_eos(&mut out);
                        }));
                    }
                    NodeKind::Bolt(factory) => {
                        let mut bolt = factory(task);
                        let rx = receiver.take().expect("bolt receiver already taken");
                        let expected = expected_eos[node_id];
                        handles.push(std::thread::spawn(move || {
                            let _guard = TaskGuard(Arc::clone(&shared));
                            let mut eos_seen = 0usize;
                            let mut failed = false;
                            while eos_seen < expected {
                                let msg = match rx.recv() {
                                    Ok(m) => m,
                                    // All senders gone (upstream aborted
                                    // without punctuating) — stop.
                                    Err(_) => break,
                                };
                                match msg {
                                    Message::Data { origin, tuple } => {
                                        counters.received.fetch_add(1, Ordering::Relaxed);
                                        if failed || shared.abort.load(Ordering::Relaxed) {
                                            continue; // drain-and-discard
                                        }
                                        if let Err(e) = bolt.execute(origin, tuple, &mut out) {
                                            shared.raise(e);
                                            failed = true;
                                        }
                                    }
                                    Message::Eos => eos_seen += 1,
                                }
                            }
                            if !failed && !shared.abort.load(Ordering::Relaxed) {
                                if let Err(e) = bolt.finish(&mut out) {
                                    shared.raise(e);
                                }
                            }
                            send_eos(&mut out);
                        }));
                    }
                }
            }
        }
        // Drop our copies so channels close when tasks finish.
        drop(sink_tx);
        drop(senders);

        RunHandle { sink_rx, handles, registry, shared, start }
    }
}

/// Punctuate every downstream task once.
fn send_eos(out: &mut OutputCollector) {
    for edge in &out.edges {
        for target in &edge.targets {
            let _ = target.send(Message::Eos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::Grouping;
    use crate::topology::{FnBolt, IterSpout, TopologyBuilder};
    use squall_common::{tuple, Result, Value};

    fn int_spout(lo: i64, hi: i64) -> impl Fn(usize) -> Box<dyn crate::topology::Spout> {
        move |_task| Box::new(IterSpout((lo..hi).map(|i| tuple![i])))
    }

    #[test]
    fn single_spout_single_bolt_pipeline() {
        let mut b = TopologyBuilder::new();
        let src = b.add_spout("src", 1, int_spout(0, 100));
        let double = b.add_bolt("double", 1, |_| {
            Box::new(FnBolt(|_o, t: Tuple, out: &mut OutputCollector| {
                let v = t.get(0).as_int()?;
                out.emit(tuple![v * 2]);
                Ok(())
            }))
        });
        b.connect(src, double, Grouping::Shuffle);
        let outcome = b.build().unwrap().run();
        assert!(outcome.error.is_none());
        let mut vals: Vec<i64> =
            outcome.outputs.iter().map(|(_, t)| t.get(0).as_int().unwrap()).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        // Metrics: bolt received all 100.
        assert_eq!(outcome.metrics.node(1).total_received(), 100);
        assert_eq!(outcome.metrics.node(0).total_emitted(), 100);
    }

    #[test]
    fn parallel_bolt_with_fields_grouping_partitions_by_key() {
        let mut b = TopologyBuilder::new();
        let src = b.add_spout("src", 2, |task| {
            let lo = task as i64 * 500;
            Box::new(IterSpout((lo..lo + 500).map(|i| tuple![i % 10, i])))
        });
        // Each task counts tuples per key; with Fields([0]) all tuples of a
        // key land on one task.
        let count = b.add_bolt("count", 4, |_| {
            let mut seen: Vec<(Value, i64)> = Vec::new();
            Box::new(FnBolt(move |_o, t: Tuple, out: &mut OutputCollector| {
                let k = t.get(0).clone();
                match seen.iter_mut().find(|(key, _)| *key == k) {
                    Some((_, c)) => *c += 1,
                    None => seen.push((k.clone(), 1)),
                }
                // On the 100th tuple of a key, report.
                if seen.iter().find(|(key, _)| *key == k).unwrap().1 == 100 {
                    out.emit(tuple![k.as_int()?, 100]);
                }
                Ok(())
            }))
        });
        b.connect(src, count, Grouping::Fields(vec![0]));
        let outcome = b.build().unwrap().run();
        assert!(outcome.error.is_none());
        // All 10 keys hit their 100-count exactly once.
        assert_eq!(outcome.outputs.len(), 10);
        assert_eq!(outcome.metrics.node(1).total_received(), 1000);
    }

    #[test]
    fn all_grouping_replicates_to_every_task() {
        let mut b = TopologyBuilder::new();
        let src = b.add_spout("src", 1, int_spout(0, 50));
        let sink = b.add_bolt("sink", 3, |_| {
            Box::new(FnBolt(|_o, t: Tuple, out: &mut OutputCollector| {
                out.emit(t);
                Ok(())
            }))
        });
        b.connect(src, sink, Grouping::All);
        let outcome = b.build().unwrap().run();
        assert_eq!(outcome.outputs.len(), 150);
        let m = outcome.metrics.node(1);
        assert_eq!(m.received, vec![50, 50, 50]);
        // Replication factor = 150 received / 50 produced upstream = 3.
        assert!((outcome.metrics.replication_factor(1, &[0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn two_spouts_into_one_joiner_distinguished_by_origin() {
        let mut b = TopologyBuilder::new();
        let left = b.add_spout("left", 1, int_spout(0, 10));
        let right = b.add_spout("right", 1, int_spout(100, 110));
        let merge = b.add_bolt("merge", 1, move |_| {
            Box::new(FnBolt(move |origin, t: Tuple, out: &mut OutputCollector| {
                out.emit(tuple![origin as i64, t.get(0).as_int()?]);
                Ok(())
            }))
        });
        b.connect(left, merge, Grouping::Global);
        b.connect(right, merge, Grouping::Global);
        let outcome = b.build().unwrap().run();
        let lefts = outcome.outputs.iter().filter(|(_, t)| t.get(0) == &Value::Int(0)).count();
        let rights = outcome.outputs.iter().filter(|(_, t)| t.get(0) == &Value::Int(1)).count();
        assert_eq!((lefts, rights), (10, 10));
    }

    #[test]
    fn finish_runs_after_all_eos() {
        let mut b = TopologyBuilder::new();
        let src = b.add_spout("src", 3, int_spout(0, 30));
        struct Summer {
            sum: i64,
        }
        impl crate::topology::Bolt for Summer {
            fn execute(&mut self, _o: NodeId, t: Tuple, _out: &mut OutputCollector) -> Result<()> {
                self.sum += t.get(0).as_int()?;
                Ok(())
            }
            fn finish(&mut self, out: &mut OutputCollector) -> Result<()> {
                out.emit(tuple![self.sum]);
                Ok(())
            }
        }
        let agg = b.add_bolt("agg", 1, |_| Box::new(Summer { sum: 0 }));
        b.connect(src, agg, Grouping::Global);
        let outcome = b.build().unwrap().run();
        assert_eq!(outcome.outputs.len(), 1);
        // Each of 3 spout tasks emits 0..30 → 3 * (0+..+29) = 3*435.
        assert_eq!(outcome.outputs[0].1.get(0).as_int().unwrap(), 3 * 435);
    }

    #[test]
    fn multi_stage_pipeline() {
        let mut b = TopologyBuilder::new();
        let src = b.add_spout("src", 2, int_spout(0, 100));
        let stage1 = b.add_bolt("inc", 2, |_| {
            Box::new(FnBolt(|_o, t: Tuple, out: &mut OutputCollector| {
                out.emit(tuple![t.get(0).as_int()? + 1]);
                Ok(())
            }))
        });
        let stage2 = b.add_bolt("filter", 3, |_| {
            Box::new(FnBolt(|_o, t: Tuple, out: &mut OutputCollector| {
                if t.get(0).as_int()? % 2 == 0 {
                    out.emit(t);
                }
                Ok(())
            }))
        });
        b.connect(src, stage1, Grouping::Shuffle);
        b.connect(stage1, stage2, Grouping::Shuffle);
        let outcome = b.build().unwrap().run();
        assert!(outcome.error.is_none());
        // 2 spout tasks × values 1..=100, evens only → 50 each.
        assert_eq!(outcome.outputs.len(), 100);
    }

    #[test]
    fn error_aborts_run_and_reports() {
        let mut b = TopologyBuilder::new();
        let src = b.add_spout("src", 1, int_spout(0, 1_000_000));
        let bomb = b.add_bolt("bomb", 1, |_| {
            let mut n = 0;
            Box::new(FnBolt(move |_o, _t: Tuple, _out: &mut OutputCollector| {
                n += 1;
                if n > 100 {
                    Err(SquallError::MemoryOverflow { machine: 0, stored: n, budget: 100 })
                } else {
                    Ok(())
                }
            }))
        });
        b.connect(src, bomb, Grouping::Shuffle);
        let outcome = b.build().unwrap().run();
        assert!(matches!(outcome.error, Some(SquallError::MemoryOverflow { .. })));
        // The spout observed the abort and stopped long before 1M tuples.
        assert!(outcome.metrics.node(0).total_emitted() < 1_000_000);
        assert!(outcome.into_result().is_err());
    }

    #[test]
    fn panic_in_bolt_is_reported_not_hung() {
        let mut b = TopologyBuilder::new();
        let src = b.add_spout("src", 1, int_spout(0, 10));
        let bad = b.add_bolt("bad", 1, |_| {
            Box::new(FnBolt(|_o, _t: Tuple, _out: &mut OutputCollector| -> Result<()> {
                panic!("operator bug")
            }))
        });
        b.connect(src, bad, Grouping::Shuffle);
        let outcome = b.build().unwrap().run();
        assert!(matches!(outcome.error, Some(SquallError::Runtime(_))));
    }

    #[test]
    fn builder_rejects_cycles_and_bad_edges() {
        let mut b = TopologyBuilder::new();
        let s = b.add_spout("s", 1, int_spout(0, 1));
        let x = b.add_bolt("x", 1, |_| {
            Box::new(FnBolt(|_o, _t: Tuple, _out: &mut OutputCollector| Ok(())))
        });
        let y = b.add_bolt("y", 1, |_| {
            Box::new(FnBolt(|_o, _t: Tuple, _out: &mut OutputCollector| Ok(())))
        });
        b.connect(s, x, Grouping::Shuffle);
        b.connect(x, y, Grouping::Shuffle);
        b.connect(y, x, Grouping::Shuffle); // cycle
        assert!(b.build().is_err());

        let mut b2 = TopologyBuilder::new();
        let s2 = b2.add_spout("s", 1, int_spout(0, 1));
        let x2 = b2.add_bolt("x", 1, |_| {
            Box::new(FnBolt(|_o, _t: Tuple, _out: &mut OutputCollector| Ok(())))
        });
        b2.connect(x2, s2, Grouping::Shuffle); // into a spout
        assert!(b2.build().is_err());

        let mut b3 = TopologyBuilder::new();
        let _s3 = b3.add_spout("s", 1, int_spout(0, 1));
        let _orphan = b3.add_bolt("o", 1, |_| {
            Box::new(FnBolt(|_o, _t: Tuple, _out: &mut OutputCollector| Ok(())))
        });
        assert!(b3.build().is_err(), "bolt without input is invalid");
    }

    #[test]
    fn elapsed_excludes_consumer_drain_time() {
        let mut b = TopologyBuilder::new();
        let src = b.add_spout("src", 1, int_spout(0, 100));
        let echo = b.add_bolt("echo", 1, |_| {
            Box::new(FnBolt(|_o, t: Tuple, out: &mut OutputCollector| {
                out.emit(t);
                Ok(())
            }))
        });
        b.connect(src, echo, Grouping::Shuffle);
        let mut handle = b.build().unwrap().launch();
        assert!(handle.recv().is_some());
        // A slow streaming consumer must not inflate the engine metric.
        std::thread::sleep(std::time::Duration::from_millis(300));
        let outcome = handle.finish();
        assert!(outcome.error.is_none());
        assert!(
            outcome.elapsed < std::time::Duration::from_millis(250),
            "elapsed {:?} includes consumer think-time",
            outcome.elapsed
        );
    }

    #[test]
    fn backpressure_small_capacity_still_completes() {
        let mut b = TopologyBuilder::new().channel_capacity(2);
        let src = b.add_spout("src", 4, int_spout(0, 1000));
        let slow = b.add_bolt("slow", 1, |_| {
            Box::new(FnBolt(|_o, t: Tuple, out: &mut OutputCollector| {
                out.emit(t);
                Ok(())
            }))
        });
        b.connect(src, slow, Grouping::Global);
        let outcome = b.build().unwrap().run();
        assert_eq!(outcome.outputs.len(), 4000);
    }

    #[test]
    fn sources_and_sinks_identified() {
        let mut b = TopologyBuilder::new();
        let s = b.add_spout("s", 1, int_spout(0, 1));
        let x = b.add_bolt("x", 1, |_| {
            Box::new(FnBolt(|_o, _t: Tuple, _out: &mut OutputCollector| Ok(())))
        });
        b.connect(s, x, Grouping::Shuffle);
        let t = b.build().unwrap();
        assert_eq!(t.sources(), vec![0]);
        assert_eq!(t.sinks(), vec![1]);
        assert_eq!(t.node_name(0), "s");
        assert_eq!(t.parallelism(1), 1);
    }
}
