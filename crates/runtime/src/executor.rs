//! Pooled cooperative execution of a topology.
//!
//! Each task (the paper's "machine") is a *pollable state machine* — a
//! `TaskCell` holding its inbox, its operator state (spout or bolt) and
//! its scatter buffers — scheduled cooperatively onto a **fixed pool of
//! worker threads**. Workers pull runnable task ids from their own deque
//! first, then from a shared injector, then *steal* from the other
//! workers' deques, so `machines ≫ cores` oversubscription costs queue
//! entries rather than OS threads: a topology with hundreds of tasks runs
//! on `worker_threads` threads, period.
//!
//! The shared-nothing model is preserved exactly: a task's operator state
//! is owned by its cell and only ever touched by the single worker that
//! holds the cell's poll lock (the task state machine guarantees at most
//! one worker polls a task at a time), and tasks communicate only through
//! their inboxes.
//!
//! ## Data plane
//! Messages are **batched**: emitters scatter routed tuples into
//! per-target buffers and flush one [`Message::Batch`] per `batch_size`
//! tuples (or on punctuation). Routing stays per-tuple — the same
//! `(sender_task, seq, tuple)` determinism as before, so loads are
//! independent of the batch size — but the queue/scheduling cost is paid
//! once per batch. There is *no* batch barrier: a batch ships the moment
//! it fills, keeping the pipeline latency argument of §8.1 intact.
//!
//! ## Backpressure by yielding
//! Inboxes have a capacity measured in messages. A sender whose flush
//! pushes a target inbox over capacity does not block its worker thread:
//! it registers itself on that inbox's waiter list and *parks* (returns
//! control to the scheduler). When the consumer drains the inbox back to
//! capacity it wakes the registered senders. A parked task consumes no
//! worker; the pool keeps running everything else.
//!
//! ## Scheduling states
//! Every task carries one atomic state: `Idle` (parked, not queued),
//! `Queued` (in some run queue), `Running`, `Notified` (woken *while*
//! running — repoll after the current poll) and `Done`. Wakeups are a
//! single CAS; the `Running → Idle` transition re-checks for a concurrent
//! `Notified` so wakeups are never lost.
//!
//! ## Termination
//! Sources are bounded streams; when a spout is exhausted it flushes its
//! buffers and punctuates all downstream tasks with `Eos`. A bolt task
//! finishes once it has received one `Eos` from every upstream task, then
//! runs `Bolt::finish` and punctuates its own downstreams. The topology is
//! a DAG, so this terminates; when the last task completes, the workers
//! exit.
//!
//! ## Failures
//! A task that returns an error (e.g. [`SquallError::MemoryOverflow`] when
//! a skewed Hash-Hypercube machine exceeds its budget, §7.3) records the
//! error, raises a global abort flag and keeps *draining* its input so
//! upstream tasks can terminate. Spouts stop producing when they observe
//! the flag. The run returns the partial outputs, the metrics accumulated
//! so far and the error — exactly what the paper's "extrapolate from
//! tuples processed before running out of memory" methodology needs. A
//! panicking operator is caught at the poll boundary, reported as a
//! runtime error, and its task still punctuates downstream so nothing
//! hangs.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use squall_common::{SquallError, Tuple};

use crate::message::{Message, NodeId};
use crate::metrics::{MetricsRegistry, MetricsSnapshot, SchedCounters};
use crate::topology::{EdgeOut, EdgeTarget, NodeKind, OutputCollector, Spout, SpoutPoll, Topology};
use crate::transport::{
    spawn_cluster, ClusterLinks, ClusterRun, ClusterWiring, LocalTransport, Placement, Transport,
};

/// Index of a task in the pool (dense over all `(node, task)` pairs).
/// Under a cluster placement the id space is global: every peer numbers
/// the same topology identically and hosts only its assigned slice.
pub type TaskId = usize;

/// Tuples a task may process/emit per poll before it must yield. Scaled
/// with the batch size so one poll amortizes a few flushes, clamped so
/// neither tiny nor huge batches destroy fairness or throughput.
fn poll_budget(batch_size: usize) -> usize {
    (batch_size * 8).clamp(256, 16_384)
}

// ---------------------------------------------------------------------
// Task state machine
// ---------------------------------------------------------------------

const IDLE: u8 = 0; // parked; needs a notify to run again
const QUEUED: u8 = 1; // sitting in a run queue
const RUNNING: u8 = 2; // a worker is polling it
const NOTIFIED: u8 = 3; // running, and woken meanwhile → repoll
const DONE: u8 = 4; // finished; never runs again

/// What a poll of a task concluded.
enum Poll {
    /// Budget exhausted but still runnable — requeue immediately.
    Yield,
    /// Nothing to do until woken (inbox empty, or registered on a full
    /// downstream inbox) — park.
    Park,
    /// The task completed (Eos propagated) — never poll again.
    Done,
}

// ---------------------------------------------------------------------
// Inbox: bounded-by-yield MPSC queue
// ---------------------------------------------------------------------

struct InboxInner {
    queue: VecDeque<Message>,
    /// Sender tasks parked until this inbox drains back to capacity.
    waiting_senders: Vec<TaskId>,
    /// The owning task died without draining (operator panic): the
    /// capacity gate is permanently open so senders can never park on a
    /// queue nobody will ever pop.
    closed: bool,
}

/// A task's input queue. Pushes never block (the capacity bound is
/// enforced by senders *yielding*, see the module docs), so punctuation
/// and abort-draining can always make progress.
pub(crate) struct Inbox {
    inner: Mutex<InboxInner>,
    /// Messages currently queued (mirror of `queue.len()` for lock-free
    /// gate checks by senders).
    len: AtomicUsize,
    capacity: usize,
}

impl Inbox {
    fn new(capacity: usize) -> Inbox {
        assert!(capacity > 0);
        Inbox {
            inner: Mutex::new(InboxInner {
                queue: VecDeque::new(),
                waiting_senders: Vec::new(),
                closed: false,
            }),
            len: AtomicUsize::new(0),
            capacity,
        }
    }

    /// Queue a message; returns the new depth. Never blocks.
    pub(crate) fn push(&self, msg: Message) -> usize {
        let mut inner = self.inner.lock().expect("inbox poisoned");
        inner.queue.push_back(msg);
        let depth = inner.queue.len();
        self.len.store(depth, Ordering::Release);
        depth
    }

    /// True when the inbox is over its soft capacity (senders should park).
    pub(crate) fn over_capacity(&self) -> bool {
        self.len.load(Ordering::Acquire) > self.capacity
    }

    /// Register `sender` to be woken when this inbox drains, *if* it is
    /// still over capacity (checked under the lock so a concurrent drain
    /// cannot strand the sender). Returns whether it registered. A closed
    /// inbox never registers anyone.
    pub(crate) fn register_waiter(&self, sender: TaskId) -> bool {
        let mut inner = self.inner.lock().expect("inbox poisoned");
        if inner.closed || inner.queue.len() <= self.capacity {
            return false;
        }
        if !inner.waiting_senders.contains(&sender) {
            inner.waiting_senders.push(sender);
        }
        true
    }

    /// Permanently open the capacity gate (the owner died without
    /// draining) and hand back every parked sender for the caller to wake.
    fn close(&self) -> Vec<TaskId> {
        let mut inner = self.inner.lock().expect("inbox poisoned");
        inner.closed = true;
        std::mem::take(&mut inner.waiting_senders)
    }

    /// Dequeue one message. When the pop brings the depth back to
    /// capacity, the parked senders are drained into `wake` for the caller
    /// to notify (outside the lock).
    fn pop(&self, wake: &mut Vec<TaskId>) -> Option<Message> {
        let mut inner = self.inner.lock().expect("inbox poisoned");
        let msg = inner.queue.pop_front()?;
        let depth = inner.queue.len();
        self.len.store(depth, Ordering::Release);
        if depth <= self.capacity && !inner.waiting_senders.is_empty() {
            wake.append(&mut inner.waiting_senders);
        }
        Some(msg)
    }
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

std::thread_local! {
    /// The pool-local index of the current worker thread, if this thread
    /// is one. Wakeups issued from a worker land on its own deque (cache
    /// locality); wakeups from outside go to the shared injector. A worker
    /// thread only ever schedules tasks of its own pool, so a plain
    /// thread-local is unambiguous.
    static WORKER_INDEX: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The scheduler core shared by workers, task cells and output collectors.
/// Deliberately does *not* own the task cells (collectors hold an
/// `Arc<Sched>`, cells hold collectors — owning the cells here would cycle
/// the `Arc`s and leak every run).
pub(crate) struct Sched {
    states: Vec<AtomicU8>,
    injector: Mutex<VecDeque<TaskId>>,
    /// One local run queue per worker; owners pop the front, thieves pop
    /// the back.
    deques: Vec<Mutex<VecDeque<TaskId>>>,
    /// Tasks not yet `Done`; workers exit when this reaches zero.
    remaining: AtomicUsize,
    /// Workers currently parked on `idle_cv`.
    sleepers: AtomicUsize,
    idle_mx: Mutex<()>,
    idle_cv: Condvar,
    counters: Arc<SchedCounters>,
}

impl Sched {
    /// `local` is the set of task ids this process hosts: they start
    /// queued; everything else is born `Done` (it lives on another peer —
    /// a stray wakeup for it is a no-op).
    fn new(
        n_tasks: usize,
        n_workers: usize,
        counters: Arc<SchedCounters>,
        local: &[TaskId],
    ) -> Sched {
        let states: Vec<AtomicU8> = (0..n_tasks).map(|_| AtomicU8::new(DONE)).collect();
        for &t in local {
            states[t].store(QUEUED, Ordering::Relaxed);
        }
        Sched {
            states,
            injector: Mutex::new(local.iter().copied().collect()),
            deques: (0..n_workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            remaining: AtomicUsize::new(local.len()),
            sleepers: AtomicUsize::new(0),
            idle_mx: Mutex::new(()),
            idle_cv: Condvar::new(),
            counters,
        }
    }

    /// Wake a task: queue it if parked, or flag a repoll if it is being
    /// polled right now. Idempotent and lock-free in the common case.
    pub(crate) fn notify(&self, task: TaskId) {
        loop {
            match self.states[task].load(Ordering::Acquire) {
                IDLE => {
                    if self.states[task]
                        .compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.push_runnable(task);
                        return;
                    }
                }
                RUNNING => {
                    if self.states[task]
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                QUEUED | NOTIFIED | DONE => return,
                other => unreachable!("task state {other}"),
            }
        }
    }

    fn push_runnable(&self, task: TaskId) {
        match WORKER_INDEX.with(|w| w.get()) {
            Some(me) if me < self.deques.len() => {
                self.deques[me].lock().expect("deque poisoned").push_back(task);
            }
            _ => self.injector.lock().expect("injector poisoned").push_back(task),
        }
        if self.sleepers.load(Ordering::Acquire) > 0 {
            let _g = self.idle_mx.lock().expect("idle mutex poisoned");
            self.idle_cv.notify_one();
        }
    }

    /// Next runnable task for worker `me`: own deque front → injector →
    /// steal the back of a sibling's deque.
    fn next_task(&self, me: usize) -> Option<TaskId> {
        if let Some(t) = self.deques[me].lock().expect("deque poisoned").pop_front() {
            return Some(t);
        }
        if let Some(t) = self.injector.lock().expect("injector poisoned").pop_front() {
            return Some(t);
        }
        for off in 1..self.deques.len() {
            let victim = (me + off) % self.deques.len();
            if let Ok(mut dq) = self.deques[victim].try_lock() {
                if let Some(t) = dq.pop_back() {
                    self.counters.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(t);
                }
            }
        }
        None
    }

    fn all_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Record an observed inbox depth (messages) for the queue-pressure
    /// metric.
    pub(crate) fn record_depth(&self, depth: usize) {
        self.counters.max_queue_depth.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Record one backpressure park (a poll ended on a full downstream).
    pub(crate) fn record_blocked(&self) {
        self.counters.blocked.fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Task cells
// ---------------------------------------------------------------------

/// The operator half of a task cell.
enum OperatorState {
    Spout(Box<dyn Spout>),
    Bolt {
        bolt: Box<dyn crate::topology::Bolt>,
        inbox: Arc<Inbox>,
        expected_eos: usize,
        eos_seen: usize,
        /// Checkpoint barriers seen per epoch; a bolt *aligns* on an epoch
        /// once it has one barrier per upstream task (the same count as
        /// `expected_eos`), then snapshots and forwards it.
        barriers: BTreeMap<u64, usize>,
        /// The bolt errored; keep draining, stop executing.
        failed: bool,
    },
}

/// One topology task as a pollable state machine: operator state, inbox
/// (bolts), scatter-buffered output, and its cooperative budget.
pub(crate) struct TaskCell {
    id: TaskId,
    op: OperatorState,
    out: OutputCollector,
    budget: usize,
    shared: Arc<Shared>,
}

impl TaskCell {
    /// Run until budget exhaustion, inbox exhaustion, a full downstream,
    /// or completion. Invoked by exactly one worker at a time.
    fn poll(&mut self, sched: &Sched) -> Poll {
        // A task woken after parking on a full downstream re-checks its
        // gates first: if any are still full it re-registers and parks
        // again (the wake may have been for one of several full targets).
        if self.out.park_if_gated(self.id) {
            return Poll::Park;
        }
        match &mut self.op {
            OperatorState::Spout(spout) => {
                Self::poll_spout(spout, &mut self.out, self.id, self.budget, &self.shared)
            }
            OperatorState::Bolt { bolt, inbox, expected_eos, eos_seen, barriers, failed } => {
                Self::poll_bolt(
                    bolt,
                    inbox,
                    expected_eos,
                    eos_seen,
                    barriers,
                    failed,
                    &mut self.out,
                    self.id,
                    self.budget,
                    &self.shared,
                    sched,
                )
            }
        }
    }

    fn poll_spout(
        spout: &mut Box<dyn Spout>,
        out: &mut OutputCollector,
        id: TaskId,
        budget: usize,
        shared: &Shared,
    ) -> Poll {
        let mut produced = 0usize;
        loop {
            if shared.abort.load(Ordering::Relaxed) {
                out.flush_and_punctuate();
                return Poll::Done;
            }
            match spout.poll() {
                SpoutPoll::Tuple(t) => {
                    out.emit(t);
                    produced += 1;
                    if out.park_if_gated(id) {
                        return Poll::Park;
                    }
                    if produced >= budget {
                        return Poll::Yield;
                    }
                }
                SpoutPoll::Watermark(ts) => {
                    out.emit_watermark(ts);
                    produced += 1;
                    if out.park_if_gated(id) {
                        return Poll::Park;
                    }
                    if produced >= budget {
                        return Poll::Yield;
                    }
                }
                SpoutPoll::Barrier(epoch) => {
                    out.emit_barrier(epoch);
                    produced += 1;
                    if out.park_if_gated(id) {
                        return Poll::Park;
                    }
                    if produced >= budget {
                        return Poll::Yield;
                    }
                }
                SpoutPoll::Idle => {
                    // Resident source with nothing pending: ship any
                    // half-full batches so no delta waits on a sleeping
                    // task, then park until a writer wakes us. (If the
                    // flush overfilled a downstream, also register on its
                    // waiter list — parking is correct either way.)
                    out.flush_buffers();
                    let _ = out.park_if_gated(id);
                    return Poll::Park;
                }
                SpoutPoll::Eos => {
                    out.flush_and_punctuate();
                    return Poll::Done;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn poll_bolt(
        bolt: &mut Box<dyn crate::topology::Bolt>,
        inbox: &Arc<Inbox>,
        expected_eos: &usize,
        eos_seen: &mut usize,
        barriers: &mut BTreeMap<u64, usize>,
        failed: &mut bool,
        out: &mut OutputCollector,
        id: TaskId,
        budget: usize,
        shared: &Shared,
        sched: &Sched,
    ) -> Poll {
        let mut processed = 0usize;
        let mut wake = Vec::new();
        loop {
            let msg = inbox.pop(&mut wake);
            for w in wake.drain(..) {
                sched.notify(w);
            }
            match msg {
                None => {
                    // All punctuation in: the stream is complete (the
                    // inbox is a single FIFO, so every data message
                    // preceded the final Eos).
                    debug_assert!(*eos_seen < *expected_eos || *expected_eos == 0);
                    if *eos_seen >= *expected_eos {
                        Self::finish_bolt(bolt, out, failed, shared);
                        return Poll::Done;
                    }
                    return Poll::Park; // woken by the next push
                }
                Some(Message::Batch { origin, chunk }) => {
                    out.counters().received.fetch_add(chunk.n_rows() as u64, Ordering::Relaxed);
                    processed += chunk.n_rows();
                    if !*failed && !shared.abort.load(Ordering::Relaxed) {
                        if let Err(e) = bolt.execute_chunk(origin, &chunk, out) {
                            shared.raise(e);
                            *failed = true;
                        }
                    } // else: drain-and-discard so upstreams terminate
                    if out.park_if_gated(id) {
                        return Poll::Park;
                    }
                    if processed >= budget {
                        return Poll::Yield;
                    }
                }
                Some(Message::Watermark { origin, from_task, ts }) => {
                    processed += 1;
                    if !*failed && !shared.abort.load(Ordering::Relaxed) {
                        if let Err(e) = bolt.watermark(origin, from_task, ts, out) {
                            shared.raise(e);
                            *failed = true;
                        }
                    }
                    if out.park_if_gated(id) {
                        return Poll::Park;
                    }
                    if processed >= budget {
                        return Poll::Yield;
                    }
                }
                Some(Message::Barrier { epoch }) => {
                    processed += 1;
                    let seen = barriers.entry(epoch).or_insert(0);
                    *seen += 1;
                    if *seen >= *expected_eos {
                        // Aligned: one barrier per upstream task is in, so
                        // operator state reflects exactly epochs ≤ `epoch`.
                        barriers.remove(&epoch);
                        if !*failed && !shared.abort.load(Ordering::Relaxed) {
                            if let Err(e) = bolt.barrier(epoch, out) {
                                shared.raise(e);
                                *failed = true;
                            }
                        }
                        shared.epoch.fetch_max(epoch, Ordering::Relaxed);
                    }
                    if out.park_if_gated(id) {
                        return Poll::Park;
                    }
                    if processed >= budget {
                        return Poll::Yield;
                    }
                }
                Some(Message::Eos) => {
                    *eos_seen += 1;
                    if *eos_seen >= *expected_eos {
                        Self::finish_bolt(bolt, out, failed, shared);
                        return Poll::Done;
                    }
                }
            }
        }
    }

    /// Poison cleanup after an operator panic: this task will never poll
    /// again, so its inbox (if any) must stop gating senders — otherwise
    /// an upstream parked on it would wait forever. Returns the senders to
    /// wake.
    fn poison(&mut self) -> Vec<TaskId> {
        match &self.op {
            OperatorState::Spout(_) => Vec::new(),
            OperatorState::Bolt { inbox, .. } => inbox.close(),
        }
    }

    fn finish_bolt(
        bolt: &mut Box<dyn crate::topology::Bolt>,
        out: &mut OutputCollector,
        failed: &bool,
        shared: &Shared,
    ) {
        if !*failed && !shared.abort.load(Ordering::Relaxed) {
            if let Err(e) = bolt.finish(out) {
                shared.raise(e);
            }
        }
        out.flush_and_punctuate();
    }
}

// ---------------------------------------------------------------------
// Run bookkeeping
// ---------------------------------------------------------------------

pub(crate) struct Shared {
    pub(crate) abort: AtomicBool,
    /// Highest checkpoint epoch any local bolt has aligned on. Heartbeat
    /// frames advertise this so a coordinator learning of a peer's death
    /// knows the last epoch it was seen alive at.
    pub(crate) epoch: AtomicU64,
    error: Mutex<Option<SquallError>>,
    finished_at: Mutex<Option<Instant>>,
}

impl Shared {
    pub(crate) fn raise(&self, e: SquallError) {
        let mut slot = self.error.lock().expect("error slot poisoned");
        if slot.is_none() {
            *slot = Some(e);
        }
        self.abort.store(true, Ordering::SeqCst);
    }

    pub(crate) fn is_aborted(&self) -> bool {
        self.abort.load(Ordering::Relaxed)
    }

    pub(crate) fn error_clone(&self) -> Option<SquallError> {
        self.error.lock().expect("error slot poisoned").clone()
    }
}

/// Everything a finished run reports.
#[derive(Debug)]
pub struct RunOutcome {
    /// Tuples emitted by sink nodes, tagged with the emitting node.
    pub outputs: Vec<(NodeId, Tuple)>,
    /// Frozen per-task counters.
    pub metrics: MetricsSnapshot,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// First error raised by any task, if the run aborted.
    pub error: Option<SquallError>,
}

impl RunOutcome {
    /// Output tuples without node tags (single-sink convenience). Clones;
    /// prefer [`RunOutcome::into_tuples`] when the outcome is no longer
    /// needed.
    pub fn tuples(&self) -> Vec<Tuple> {
        self.outputs.iter().map(|(_, t)| t.clone()).collect()
    }

    /// Consume the outcome into its output tuples, without cloning.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.outputs.into_iter().map(|(_, t)| t).collect()
    }

    /// Fail the caller if the run aborted.
    pub fn into_result(self) -> squall_common::Result<RunOutcome> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self),
        }
    }
}

/// A topology that has been launched but not yet joined: the worker pool
/// is running and sink emissions can be consumed *while it runs* via
/// [`RunHandle::recv`]. [`RunHandle::finish`] waits for completion;
/// dropping the handle instead aborts the run and then waits, so an
/// abandoned handle never leaks running workers. The sink channel is
/// unbounded, so an unconsumed handle never deadlocks the pool.
pub struct RunHandle {
    sink_rx: Receiver<(NodeId, Tuple)>,
    workers: Vec<JoinHandle<()>>,
    registry: Arc<MetricsRegistry>,
    shared: Arc<Shared>,
    sched: Arc<Sched>,
    start: Instant,
}

/// A cheap, clonable handle that can wake parked tasks of a launched
/// topology from *outside* the worker pool. This is how resident
/// topologies (standing materialized views) are driven: a writer pushes
/// deltas into a spout's live queue, then wakes that spout task so it
/// polls again. Waking a running, queued or finished task is a no-op.
#[derive(Clone)]
pub struct TaskWaker {
    sched: Arc<Sched>,
}

impl TaskWaker {
    /// Wake task `id` (dense over `(node, task)` pairs, same numbering as
    /// the topology layout). Idempotent.
    pub fn wake(&self, id: TaskId) {
        self.sched.notify(id);
    }
}

impl RunHandle {
    /// Next sink emission, blocking until one arrives; `None` once every
    /// sink task has finished. This is the streaming face of the runtime.
    pub fn recv(&mut self) -> Option<(NodeId, Tuple)> {
        self.sink_rx.recv().ok()
    }

    /// Number of OS threads executing the topology (the worker pool size —
    /// *not* the task count).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Abort the run: spouts stop at their next poll, in-flight tuples are
    /// drained and discarded. Already-produced sink output remains
    /// readable.
    pub fn abort(&self) {
        self.shared.abort.store(true, Ordering::SeqCst);
    }

    /// A clonable waker for this run's tasks (see [`TaskWaker`]).
    pub fn waker(&self) -> TaskWaker {
        TaskWaker { sched: Arc::clone(&self.sched) }
    }

    /// Has any task raised an error (or has the run been aborted)?
    pub fn is_aborted(&self) -> bool {
        self.shared.is_aborted()
    }

    /// The first error raised by any task so far, if any. Unlike
    /// [`RunHandle::finish`] this does not consume the handle — resident
    /// topologies use it to surface failures while staying up.
    pub fn error(&self) -> Option<SquallError> {
        self.shared.error_clone()
    }

    /// A live snapshot of the per-task counters (the run keeps going).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Wait for all tasks, collecting any unconsumed sink output, and
    /// report metrics, timing and the first error (if any).
    pub fn finish(mut self) -> RunOutcome {
        let mut outputs = Vec::new();
        while let Some(item) = self.recv() {
            outputs.push(item);
        }
        self.finish_with(outputs)
    }

    fn finish_with(mut self, outputs: Vec<(NodeId, Tuple)>) -> RunOutcome {
        for h in self.workers.drain(..) {
            // Worker bodies catch operator panics; a panicking worker is
            // an executor bug but must still not hang the caller.
            if h.join().is_err() {
                self.shared.raise(SquallError::Runtime("worker panicked".into()));
            }
        }
        // Engine wall-clock: until the last task completed, not until the
        // consumer finished draining the sink.
        let finished = self
            .shared
            .finished_at
            .lock()
            .expect("finish stamp poisoned")
            .take()
            .unwrap_or_else(Instant::now);
        let elapsed = finished.duration_since(self.start);
        let error = self.shared.error.lock().expect("error slot poisoned").take();
        RunOutcome { outputs, metrics: self.registry.snapshot(), elapsed, error }
    }
}

impl Drop for RunHandle {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return; // finished via finish_with
        }
        self.abort();
        while self.sink_rx.recv().is_ok() {}
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------
// Launch
// ---------------------------------------------------------------------

/// The worker pool's view of the run: scheduler + the task cells it polls.
/// Workers own an `Arc<Pool>`; cells are dropped the moment their task
/// completes, which is also what closes the sink channel (each cell's
/// collector holds a sink sender clone).
struct Pool {
    sched: Arc<Sched>,
    cells: Vec<Mutex<Option<TaskCell>>>,
}

impl Topology {
    /// Execute the topology to completion and collect sink output, metrics
    /// and timing.
    pub fn run(self) -> RunOutcome {
        let mut handle = self.launch();
        let mut outputs = Vec::new();
        while let Some(item) = handle.recv() {
            outputs.push(item);
        }
        handle.finish_with(outputs)
    }

    /// Start the worker pool and return a [`RunHandle`] that streams the
    /// sink output as it is produced. Spawns exactly
    /// `min(worker_threads, total tasks)` OS threads regardless of the
    /// topology's task count.
    pub fn launch(self) -> RunHandle {
        self.launch_parts(None).0
    }

    /// Launch this process's slice of a **distributed** topology: only the
    /// tasks the [`Placement`] assigns to `links.me` are hosted on the
    /// local worker pool; edges whose target lives on another peer are
    /// bridged through the [`crate::transport::TcpTransport`] over the
    /// established `links`. Finish the [`RunHandle`] first (joining the
    /// local pool), then the [`ClusterRun`] (draining and closing the
    /// links, collecting remote metrics).
    pub fn launch_cluster(
        self,
        placement: Placement,
        links: ClusterLinks,
    ) -> (RunHandle, ClusterRun) {
        let (handle, cluster) = self.launch_parts(Some((placement, links)));
        (handle, cluster.expect("cluster launch yields a ClusterRun"))
    }

    fn launch_parts(
        self,
        cluster: Option<(Placement, ClusterLinks)>,
    ) -> (RunHandle, Option<ClusterRun>) {
        let n_nodes = self.nodes.len();
        let names: Vec<String> = self.nodes.iter().map(|n| n.name.clone()).collect();
        let parallelism: Vec<usize> = self.nodes.iter().map(|n| n.parallelism).collect();
        let registry = Arc::new(MetricsRegistry::new(names, &parallelism));
        let total_tasks: usize = parallelism.iter().sum();
        let me = cluster.as_ref().map_or(0, |(_, links)| links.me);
        let peer_of = cluster.as_ref().map(|(p, _)| p.peer_of_task.clone());
        let is_local = |id: TaskId| peer_of.as_ref().is_none_or(|peers| peers[id] == me);
        let local_ids: Vec<TaskId> = (0..total_tasks).filter(|&t| is_local(t)).collect();
        let n_workers = self
            .worker_threads
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
            .clamp(1, local_ids.len().max(1));
        registry.sched().workers.store(n_workers as u64, Ordering::Relaxed);
        let batch_size = self.batch_size.max(1);
        let budget = poll_budget(batch_size);

        let shared = Arc::new(Shared {
            abort: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            error: Mutex::new(None),
            finished_at: Mutex::new(None),
        });

        // Dense task ids: tasks of node 0, then node 1, …
        let mut first_task: Vec<TaskId> = Vec::with_capacity(n_nodes);
        {
            let mut off = 0;
            for &p in &parallelism {
                first_task.push(off);
                off += p;
            }
        }

        // One inbox per *local* bolt task, dense over the global id space.
        let mut inboxes: Vec<Option<Arc<Inbox>>> = Vec::with_capacity(total_tasks);
        for (node_id, node) in self.nodes.iter().enumerate() {
            for task in 0..node.parallelism {
                let id = first_task[node_id] + task;
                inboxes.push(match node.kind {
                    NodeKind::Bolt(_) if is_local(id) => {
                        Some(Arc::new(Inbox::new(self.channel_capacity)))
                    }
                    _ => None,
                });
            }
        }

        let (sink_tx, sink_rx) = channel::<(NodeId, Tuple)>();
        let sinks = self.sinks();

        // Expected EOS per node = total upstream tasks — a *global* count:
        // remote upstreams punctuate over the wire, so termination counts
        // are identical to a single-process run.
        let expected_eos: Vec<usize> = (0..n_nodes)
            .map(|i| self.edges.iter().filter(|e| e.to == i).map(|e| parallelism[e.from]).sum())
            .collect();

        let sched = Arc::new(Sched::new(total_tasks, n_workers, registry.sched(), &local_ids));
        if local_ids.is_empty() {
            // Nothing to run here (more peers than tasks): the pool is
            // born finished.
            *shared.finished_at.lock().expect("finish stamp poisoned") = Some(Instant::now());
        }

        // The transport: in-process inbox pushes, or the TCP data plane
        // bridging remote edges.
        let (transport, cluster_run): (Arc<dyn Transport>, Option<ClusterRun>) = match cluster {
            None => (Arc::new(LocalTransport::new(inboxes.clone(), Arc::clone(&sched))), None),
            Some((placement, links)) => {
                // Per peer: the punctuation its tasks owe our local tasks
                // (used to fail fast, not hang, if that peer crashes).
                let n_peers = placement.n_peers;
                let mut eos_owed: Vec<Vec<(TaskId, usize)>> = vec![Vec::new(); n_peers];
                for e in &self.edges {
                    let mut senders_per_peer = vec![0usize; n_peers];
                    for t in 0..parallelism[e.from] {
                        let peers = peer_of.as_ref().expect("cluster placement");
                        senders_per_peer[peers[first_task[e.from] + t]] += 1;
                    }
                    for t in 0..parallelism[e.to] {
                        let id = first_task[e.to] + t;
                        if !is_local(id) {
                            continue;
                        }
                        for (p, &cnt) in senders_per_peer.iter().enumerate() {
                            if p != me && cnt > 0 {
                                eos_owed[p].push((id, cnt));
                            }
                        }
                    }
                }
                let wiring = ClusterWiring {
                    inboxes: inboxes.clone(),
                    sched: Arc::clone(&sched),
                    shared: Arc::clone(&shared),
                    sink_tx: sink_tx.clone(),
                    channel_capacity: self.channel_capacity,
                    eos_owed,
                };
                let (transport, run) = spawn_cluster(links, &placement, wiring);
                (transport, Some(run))
            }
        };

        let start = Instant::now();
        let mut cells: Vec<Mutex<Option<TaskCell>>> = Vec::with_capacity(total_tasks);
        for (node_id, node) in self.nodes.into_iter().enumerate() {
            let is_sink = sinks.contains(&node_id);
            for task in 0..node.parallelism {
                let id = first_task[node_id] + task;
                if !is_local(id) {
                    cells.push(Mutex::new(None));
                    continue;
                }
                let edges: Vec<EdgeOut> = self
                    .edges
                    .iter()
                    .filter(|e| e.from == node_id)
                    .map(|e| EdgeOut {
                        grouping: e.grouping.clone(),
                        seq: 0,
                        targets: (0..parallelism[e.to])
                            .map(|t| EdgeTarget {
                                task: first_task[e.to] + t,
                                buffer: squall_common::ChunkBuilder::new(),
                            })
                            .collect(),
                    })
                    .collect();
                let counters = registry.task(node_id, task);
                let out = OutputCollector::new(
                    node_id,
                    task,
                    edges,
                    sink_tx.clone(),
                    is_sink,
                    counters,
                    batch_size,
                    Arc::clone(&sched),
                    Arc::clone(&transport),
                );
                let op = match &node.kind {
                    NodeKind::Spout(factory) => OperatorState::Spout(factory(task)),
                    NodeKind::Bolt(factory) => OperatorState::Bolt {
                        bolt: factory(task),
                        inbox: Arc::clone(inboxes[id].as_ref().expect("bolt inbox")),
                        expected_eos: expected_eos[node_id],
                        eos_seen: 0,
                        barriers: BTreeMap::new(),
                        failed: false,
                    },
                };
                cells.push(Mutex::new(Some(TaskCell {
                    id,
                    op,
                    out,
                    budget,
                    shared: Arc::clone(&shared),
                })));
            }
        }
        drop(sink_tx); // cells (and coordinator recv pumps) hold the rest

        let pool = Arc::new(Pool { sched: Arc::clone(&sched), cells });
        let workers = (0..n_workers)
            .map(|w| {
                let pool = Arc::clone(&pool);
                let shared = Arc::clone(&shared);
                let counters = registry.sched();
                std::thread::Builder::new()
                    .name(format!("squall-worker-{w}"))
                    .spawn(move || worker_loop(w, &pool, &shared, &counters))
                    .expect("spawn worker")
            })
            .collect();

        (RunHandle { sink_rx, workers, registry, shared, sched, start }, cluster_run)
    }
}

fn worker_loop(me: usize, pool: &Pool, shared: &Shared, counters: &SchedCounters) {
    WORKER_INDEX.with(|w| w.set(Some(me)));
    let sched = &*pool.sched;
    loop {
        match sched.next_task(me) {
            Some(task) => run_task(task, pool, shared, counters),
            None => {
                if sched.all_done() {
                    break;
                }
                // Park until a wakeup (timed: a missed notify can only
                // cost one tick, never a hang).
                sched.sleepers.fetch_add(1, Ordering::AcqRel);
                let guard = sched.idle_mx.lock().expect("idle mutex poisoned");
                let _ = sched
                    .idle_cv
                    .wait_timeout(guard, Duration::from_millis(1))
                    .expect("idle cv poisoned");
                sched.sleepers.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }
    WORKER_INDEX.with(|w| w.set(None));
}

fn run_task(task: TaskId, pool: &Pool, shared: &Shared, counters: &SchedCounters) {
    let sched = &*pool.sched;
    sched.states[task].store(RUNNING, Ordering::Release);
    let mut slot = pool.cells[task].lock().expect("task cell poisoned");
    let Some(cell) = slot.as_mut() else {
        // Stale queue entry for a completed task (cannot happen through
        // the state machine, but harmless).
        sched.states[task].store(DONE, Ordering::Release);
        return;
    };
    let polled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cell.poll(sched)));
    let outcome = match polled {
        Ok(p) => p,
        Err(_) => {
            // Operator panic: report, abort the run, unblock any senders
            // parked on this task's now-dead inbox, and still punctuate
            // downstream so consumers terminate.
            shared.raise(SquallError::Runtime("task panicked".into()));
            for sender in cell.poison() {
                sched.notify(sender);
            }
            cell.out.flush_and_punctuate();
            Poll::Done
        }
    };
    match outcome {
        Poll::Done => {
            *slot = None; // drops operator state + the sink sender clone
            drop(slot);
            sched.states[task].store(DONE, Ordering::Release);
            if sched.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                *shared.finished_at.lock().expect("finish stamp poisoned") = Some(Instant::now());
                let _g = sched.idle_mx.lock().expect("idle mutex poisoned");
                sched.idle_cv.notify_all();
            }
        }
        Poll::Yield => {
            drop(slot);
            counters.yields.fetch_add(1, Ordering::Relaxed);
            sched.states[task].store(QUEUED, Ordering::Release);
            sched.push_runnable(task);
        }
        Poll::Park => {
            drop(slot);
            // Try RUNNING → IDLE; if someone notified us mid-poll the
            // state is NOTIFIED and we must repoll instead (the wakeup
            // condition may already hold).
            if sched.states[task]
                .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                sched.states[task].store(QUEUED, Ordering::Release);
                sched.push_runnable(task);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::Grouping;
    use crate::topology::{FnBolt, IterSpout, TopologyBuilder};
    use squall_common::{tuple, Result, Value};

    fn int_spout(lo: i64, hi: i64) -> impl Fn(usize) -> Box<dyn crate::topology::Spout> {
        move |_task| Box::new(IterSpout((lo..hi).map(|i| tuple![i])))
    }

    #[test]
    fn single_spout_single_bolt_pipeline() {
        let mut b = TopologyBuilder::new();
        let src = b.add_spout("src", 1, int_spout(0, 100));
        let double = b.add_bolt("double", 1, |_| {
            Box::new(FnBolt(|_o, t: Tuple, out: &mut OutputCollector| {
                let v = t.get(0).as_int()?;
                out.emit(tuple![v * 2]);
                Ok(())
            }))
        });
        b.connect(src, double, Grouping::Shuffle);
        let outcome = b.build().unwrap().run();
        assert!(outcome.error.is_none());
        let mut vals: Vec<i64> =
            outcome.outputs.iter().map(|(_, t)| t.get(0).as_int().unwrap()).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        // Metrics: bolt received all 100.
        assert_eq!(outcome.metrics.node(1).total_received(), 100);
        assert_eq!(outcome.metrics.node(0).total_emitted(), 100);
    }

    #[test]
    fn parallel_bolt_with_fields_grouping_partitions_by_key() {
        let mut b = TopologyBuilder::new();
        let src = b.add_spout("src", 2, |task| {
            let lo = task as i64 * 500;
            Box::new(IterSpout((lo..lo + 500).map(|i| tuple![i % 10, i])))
        });
        // Each task counts tuples per key; with Fields([0]) all tuples of a
        // key land on one task.
        let count = b.add_bolt("count", 4, |_| {
            let mut seen: Vec<(Value, i64)> = Vec::new();
            Box::new(FnBolt(move |_o, t: Tuple, out: &mut OutputCollector| {
                let k = t.get(0).clone();
                match seen.iter_mut().find(|(key, _)| *key == k) {
                    Some((_, c)) => *c += 1,
                    None => seen.push((k.clone(), 1)),
                }
                // On the 100th tuple of a key, report.
                if seen.iter().find(|(key, _)| *key == k).unwrap().1 == 100 {
                    out.emit(tuple![k.as_int()?, 100]);
                }
                Ok(())
            }))
        });
        b.connect(src, count, Grouping::Fields(vec![0]));
        let outcome = b.build().unwrap().run();
        assert!(outcome.error.is_none());
        // All 10 keys hit their 100-count exactly once.
        assert_eq!(outcome.outputs.len(), 10);
        assert_eq!(outcome.metrics.node(1).total_received(), 1000);
    }

    #[test]
    fn all_grouping_replicates_to_every_task() {
        let mut b = TopologyBuilder::new();
        let src = b.add_spout("src", 1, int_spout(0, 50));
        let sink = b.add_bolt("sink", 3, |_| {
            Box::new(FnBolt(|_o, t: Tuple, out: &mut OutputCollector| {
                out.emit(t);
                Ok(())
            }))
        });
        b.connect(src, sink, Grouping::All);
        let outcome = b.build().unwrap().run();
        assert_eq!(outcome.outputs.len(), 150);
        let m = outcome.metrics.node(1);
        assert_eq!(m.received, vec![50, 50, 50]);
        // Replication factor = 150 received / 50 produced upstream = 3.
        assert!((outcome.metrics.replication_factor(1, &[0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn two_spouts_into_one_joiner_distinguished_by_origin() {
        let mut b = TopologyBuilder::new();
        let left = b.add_spout("left", 1, int_spout(0, 10));
        let right = b.add_spout("right", 1, int_spout(100, 110));
        let merge = b.add_bolt("merge", 1, move |_| {
            Box::new(FnBolt(move |origin, t: Tuple, out: &mut OutputCollector| {
                out.emit(tuple![origin as i64, t.get(0).as_int()?]);
                Ok(())
            }))
        });
        b.connect(left, merge, Grouping::Global);
        b.connect(right, merge, Grouping::Global);
        let outcome = b.build().unwrap().run();
        let lefts = outcome.outputs.iter().filter(|(_, t)| t.get(0) == &Value::Int(0)).count();
        let rights = outcome.outputs.iter().filter(|(_, t)| t.get(0) == &Value::Int(1)).count();
        assert_eq!((lefts, rights), (10, 10));
    }

    #[test]
    fn finish_runs_after_all_eos() {
        let mut b = TopologyBuilder::new();
        let src = b.add_spout("src", 3, int_spout(0, 30));
        struct Summer {
            sum: i64,
        }
        impl crate::topology::Bolt for Summer {
            fn execute(&mut self, _o: NodeId, t: Tuple, _out: &mut OutputCollector) -> Result<()> {
                self.sum += t.get(0).as_int()?;
                Ok(())
            }
            fn finish(&mut self, out: &mut OutputCollector) -> Result<()> {
                out.emit(tuple![self.sum]);
                Ok(())
            }
        }
        let agg = b.add_bolt("agg", 1, |_| Box::new(Summer { sum: 0 }));
        b.connect(src, agg, Grouping::Global);
        let outcome = b.build().unwrap().run();
        assert_eq!(outcome.outputs.len(), 1);
        // Each of 3 spout tasks emits 0..30 → 3 * (0+..+29) = 3*435.
        assert_eq!(outcome.outputs[0].1.get(0).as_int().unwrap(), 3 * 435);
    }

    #[test]
    fn multi_stage_pipeline() {
        let mut b = TopologyBuilder::new();
        let src = b.add_spout("src", 2, int_spout(0, 100));
        let stage1 = b.add_bolt("inc", 2, |_| {
            Box::new(FnBolt(|_o, t: Tuple, out: &mut OutputCollector| {
                out.emit(tuple![t.get(0).as_int()? + 1]);
                Ok(())
            }))
        });
        let stage2 = b.add_bolt("filter", 3, |_| {
            Box::new(FnBolt(|_o, t: Tuple, out: &mut OutputCollector| {
                if t.get(0).as_int()? % 2 == 0 {
                    out.emit(t);
                }
                Ok(())
            }))
        });
        b.connect(src, stage1, Grouping::Shuffle);
        b.connect(stage1, stage2, Grouping::Shuffle);
        let outcome = b.build().unwrap().run();
        assert!(outcome.error.is_none());
        // 2 spout tasks × values 1..=100, evens only → 50 each.
        assert_eq!(outcome.outputs.len(), 100);
    }

    #[test]
    fn error_aborts_run_and_reports() {
        let mut b = TopologyBuilder::new();
        let src = b.add_spout("src", 1, int_spout(0, 1_000_000));
        let bomb = b.add_bolt("bomb", 1, |_| {
            let mut n = 0;
            Box::new(FnBolt(move |_o, _t: Tuple, _out: &mut OutputCollector| {
                n += 1;
                if n > 100 {
                    Err(SquallError::MemoryOverflow { machine: 0, stored: n, budget: 100 })
                } else {
                    Ok(())
                }
            }))
        });
        b.connect(src, bomb, Grouping::Shuffle);
        let outcome = b.build().unwrap().run();
        assert!(matches!(outcome.error, Some(SquallError::MemoryOverflow { .. })));
        // The spout observed the abort and stopped long before 1M tuples.
        assert!(outcome.metrics.node(0).total_emitted() < 1_000_000);
        assert!(outcome.into_result().is_err());
    }

    #[test]
    fn panic_in_bolt_is_reported_not_hung() {
        let mut b = TopologyBuilder::new();
        let src = b.add_spout("src", 1, int_spout(0, 10));
        let bad = b.add_bolt("bad", 1, |_| {
            Box::new(FnBolt(|_o, _t: Tuple, _out: &mut OutputCollector| -> Result<()> {
                panic!("operator bug")
            }))
        });
        b.connect(src, bad, Grouping::Shuffle);
        let outcome = b.build().unwrap().run();
        assert!(matches!(outcome.error, Some(SquallError::Runtime(_))));
    }

    #[test]
    fn panic_with_parked_upstream_still_terminates() {
        // capacity 1 + batch 1 + one worker: the spout deterministically
        // parks on the bolt's full inbox before the bolt panics. The
        // panic path must close the dead inbox and wake the spout, or the
        // run hangs forever.
        let mut b = TopologyBuilder::new().channel_capacity(1).batch_size(1).worker_threads(1);
        let src = b.add_spout("src", 1, int_spout(0, 100_000));
        let bad = b.add_bolt("bad", 1, |_| {
            Box::new(FnBolt(|_o, _t: Tuple, _out: &mut OutputCollector| -> Result<()> {
                panic!("operator bug")
            }))
        });
        b.connect(src, bad, Grouping::Shuffle);
        let outcome = b.build().unwrap().run();
        assert!(matches!(outcome.error, Some(SquallError::Runtime(_))));
        assert!(outcome.metrics.node(0).total_emitted() < 100_000, "spout observed the abort");
    }

    #[test]
    fn builder_rejects_cycles_and_bad_edges() {
        let mut b = TopologyBuilder::new();
        let s = b.add_spout("s", 1, int_spout(0, 1));
        let x = b.add_bolt("x", 1, |_| {
            Box::new(FnBolt(|_o, _t: Tuple, _out: &mut OutputCollector| Ok(())))
        });
        let y = b.add_bolt("y", 1, |_| {
            Box::new(FnBolt(|_o, _t: Tuple, _out: &mut OutputCollector| Ok(())))
        });
        b.connect(s, x, Grouping::Shuffle);
        b.connect(x, y, Grouping::Shuffle);
        b.connect(y, x, Grouping::Shuffle); // cycle
        assert!(b.build().is_err());

        let mut b2 = TopologyBuilder::new();
        let s2 = b2.add_spout("s", 1, int_spout(0, 1));
        let x2 = b2.add_bolt("x", 1, |_| {
            Box::new(FnBolt(|_o, _t: Tuple, _out: &mut OutputCollector| Ok(())))
        });
        b2.connect(x2, s2, Grouping::Shuffle); // into a spout
        assert!(b2.build().is_err());

        let mut b3 = TopologyBuilder::new();
        let _s3 = b3.add_spout("s", 1, int_spout(0, 1));
        let _orphan = b3.add_bolt("o", 1, |_| {
            Box::new(FnBolt(|_o, _t: Tuple, _out: &mut OutputCollector| Ok(())))
        });
        assert!(b3.build().is_err(), "bolt without input is invalid");
    }

    #[test]
    fn elapsed_excludes_consumer_drain_time() {
        let mut b = TopologyBuilder::new();
        let src = b.add_spout("src", 1, int_spout(0, 100));
        let echo = b.add_bolt("echo", 1, |_| {
            Box::new(FnBolt(|_o, t: Tuple, out: &mut OutputCollector| {
                out.emit(t);
                Ok(())
            }))
        });
        b.connect(src, echo, Grouping::Shuffle);
        let mut handle = b.build().unwrap().launch();
        assert!(handle.recv().is_some());
        // A slow streaming consumer must not inflate the engine metric.
        std::thread::sleep(std::time::Duration::from_millis(300));
        let outcome = handle.finish();
        assert!(outcome.error.is_none());
        assert!(
            outcome.elapsed < std::time::Duration::from_millis(250),
            "elapsed {:?} includes consumer think-time",
            outcome.elapsed
        );
    }

    #[test]
    fn backpressure_small_capacity_still_completes() {
        let mut b = TopologyBuilder::new().channel_capacity(2).batch_size(8);
        let src = b.add_spout("src", 4, int_spout(0, 1000));
        let slow = b.add_bolt("slow", 1, |_| {
            Box::new(FnBolt(|_o, t: Tuple, out: &mut OutputCollector| {
                out.emit(t);
                Ok(())
            }))
        });
        b.connect(src, slow, Grouping::Global);
        let outcome = b.build().unwrap().run();
        assert_eq!(outcome.outputs.len(), 4000);
        // The tiny inbox must actually have exercised the yield path.
        assert!(outcome.metrics.scheduler.max_queue_depth >= 2);
    }

    #[test]
    fn sources_and_sinks_identified() {
        let mut b = TopologyBuilder::new();
        let s = b.add_spout("s", 1, int_spout(0, 1));
        let x = b.add_bolt("x", 1, |_| {
            Box::new(FnBolt(|_o, _t: Tuple, _out: &mut OutputCollector| Ok(())))
        });
        b.connect(s, x, Grouping::Shuffle);
        let t = b.build().unwrap();
        assert_eq!(t.sources(), vec![0]);
        assert_eq!(t.sinks(), vec![1]);
        assert_eq!(t.node_name(0), "s");
        assert_eq!(t.parallelism(1), 1);
    }

    #[test]
    fn oversubscribed_pool_runs_many_tasks_on_two_workers() {
        // 64 bolt tasks + 4 spout tasks on a 2-thread pool: correctness
        // must not depend on tasks ≤ cores.
        let mut b = TopologyBuilder::new().worker_threads(2);
        let src = b.add_spout("src", 4, |task| {
            let lo = task as i64 * 1000;
            Box::new(IterSpout((lo..lo + 1000).map(|i| tuple![i])))
        });
        let fan = b.add_bolt("fan", 64, |_| {
            Box::new(FnBolt(|_o, t: Tuple, out: &mut OutputCollector| {
                out.emit(t);
                Ok(())
            }))
        });
        b.connect(src, fan, Grouping::Fields(vec![0]));
        let handle = b.build().unwrap().launch();
        assert_eq!(handle.worker_count(), 2, "pool size is the thread bound");
        let outcome = handle.finish();
        assert!(outcome.error.is_none());
        let mut vals: Vec<i64> =
            outcome.outputs.iter().map(|(_, t)| t.get(0).as_int().unwrap()).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..4000).collect::<Vec<_>>());
        assert_eq!(outcome.metrics.scheduler.workers, 2);
    }

    #[test]
    fn batch_size_one_and_large_agree() {
        let run_with = |batch: usize| -> Vec<i64> {
            let mut b = TopologyBuilder::new().batch_size(batch);
            let src = b.add_spout("src", 2, |task| {
                let lo = task as i64 * 200;
                Box::new(IterSpout((lo..lo + 200).map(|i| tuple![i % 13, i])))
            });
            let key = b.add_bolt("key", 4, |_| {
                Box::new(FnBolt(|_o, t: Tuple, out: &mut OutputCollector| {
                    out.emit(t);
                    Ok(())
                }))
            });
            b.connect(src, key, Grouping::Fields(vec![0]));
            let outcome = b.build().unwrap().run();
            assert!(outcome.error.is_none());
            // Loads must be batch-size independent (per-tuple routing).
            assert_eq!(outcome.metrics.node(1).total_received(), 400);
            let mut v: Vec<i64> =
                outcome.outputs.iter().map(|(_, t)| t.get(1).as_int().unwrap()).collect();
            v.sort_unstable();
            v
        };
        let a = run_with(1);
        let b = run_with(64);
        let c = run_with(4096);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn watermarks_are_ordered_after_prior_data_and_broadcast() {
        // mid emits a watermark after every tuple; down asserts that when
        // watermark W arrives, every tuple with value < W has already been
        // seen (the flush-before-watermark contract), on every task of a
        // Fields-partitioned downstream (watermarks broadcast).
        let mut b = TopologyBuilder::new().batch_size(16);
        let src = b.add_spout("src", 1, int_spout(0, 300));
        struct Fwd;
        impl crate::topology::Bolt for Fwd {
            fn execute(&mut self, _o: NodeId, t: Tuple, out: &mut OutputCollector) -> Result<()> {
                let v = t.get(0).as_int()? as u64;
                out.emit(t);
                out.emit_watermark(v);
                Ok(())
            }
        }
        let mid = b.add_bolt("mid", 1, |_| Box::new(Fwd));
        struct Check {
            highest_data: i64,
            watermarks: Vec<u64>,
        }
        impl crate::topology::Bolt for Check {
            fn execute(&mut self, _o: NodeId, t: Tuple, _out: &mut OutputCollector) -> Result<()> {
                let v = t.get(0).as_int()?;
                // The watermark contract: no tuple below an already-seen
                // watermark may arrive after it.
                if let Some(&w) = self.watermarks.last() {
                    if (v as u64) < w {
                        return Err(SquallError::Runtime(format!("late tuple {v} after {w}")));
                    }
                }
                self.highest_data = self.highest_data.max(v);
                Ok(())
            }
            fn watermark(
                &mut self,
                origin: NodeId,
                from_task: usize,
                ts: u64,
                _out: &mut OutputCollector,
            ) -> Result<()> {
                if (origin, from_task) != (1, 0) {
                    return Err(SquallError::Runtime("wrong watermark origin".into()));
                }
                if let Some(&last) = self.watermarks.last() {
                    if ts < last {
                        return Err(SquallError::Runtime("watermark regressed".into()));
                    }
                }
                // Every tuple this task owns with value ≤ ts must have
                // arrived before the watermark (Fields grouping: this
                // task's share are values ≡ task (mod 3), but checking
                // the max suffices: data for *this* sender is FIFO).
                if self.highest_data >= 0 && (self.highest_data as u64) > ts {
                    return Err(SquallError::Runtime(format!(
                        "data {} overtook watermark {ts}",
                        self.highest_data
                    )));
                }
                self.watermarks.push(ts);
                Ok(())
            }
            fn finish(&mut self, out: &mut OutputCollector) -> Result<()> {
                out.emit(tuple![self.watermarks.len() as i64]);
                Ok(())
            }
        }
        let down =
            b.add_bolt("down", 3, |_| Box::new(Check { highest_data: -1, watermarks: vec![] }));
        b.connect(src, mid, Grouping::Global);
        b.connect(mid, down, Grouping::Fields(vec![0]));
        let outcome = b.build().unwrap().run();
        assert!(outcome.error.is_none(), "{:?}", outcome.error);
        // Watermarks are broadcast: every one of the 3 tasks saw all 300.
        for (_, t) in &outcome.outputs {
            assert_eq!(t.get(0).as_int().unwrap(), 300);
        }
        assert_eq!(outcome.outputs.len(), 3);
    }

    #[test]
    fn per_sender_order_is_preserved_through_batching() {
        // The windowed event-time contract: each relation's tuples arrive
        // at every downstream task in emission order.
        let mut b = TopologyBuilder::new().batch_size(7);
        let src = b.add_spout("src", 1, int_spout(0, 500));
        let check = b.add_bolt("check", 1, |_| {
            let mut last = -1i64;
            Box::new(FnBolt(move |_o, t: Tuple, out: &mut OutputCollector| {
                let v = t.get(0).as_int()?;
                if v <= last {
                    return Err(SquallError::Runtime(format!("order violated: {v} after {last}")));
                }
                last = v;
                out.emit(t);
                Ok(())
            }))
        });
        b.connect(src, check, Grouping::Global);
        let outcome = b.build().unwrap().run();
        assert!(outcome.error.is_none(), "{:?}", outcome.error);
        assert_eq!(outcome.outputs.len(), 500);
    }
}
