//! Topology construction: spouts, bolts, edges, validation — plus the
//! [`OutputCollector`], the batching emission interface handed to tasks.

use std::sync::atomic::Ordering;
use std::sync::mpsc::Sender;
use std::sync::Arc;

use squall_common::{Chunk, ChunkBuilder, Result, SquallError, Tuple};

use crate::executor::{Sched, TaskId};
use crate::grouping::Grouping;
use crate::message::{Message, NodeId};
use crate::metrics::TaskCounters;
use crate::transport::Transport;

/// What a spout produced on one poll. Bounded sources only ever see
/// [`SpoutPoll::Tuple`] and [`SpoutPoll::Eos`] (the defaulted
/// [`Spout::poll`] maps `next()` onto them); *resident* sources — standing
/// materialized views — additionally use [`SpoutPoll::Idle`] to park
/// without terminating and [`SpoutPoll::Watermark`] to punctuate epochs.
pub enum SpoutPoll {
    /// One data tuple to emit downstream.
    Tuple(Tuple),
    /// Broadcast a watermark to every downstream task (epoch / event-time
    /// frontier punctuation).
    Watermark(u64),
    /// Broadcast a checkpoint barrier sealing `epoch` to every downstream
    /// task (see [`crate::message::Message::Barrier`]).
    Barrier(u64),
    /// Nothing available *right now*, but the stream is not over: the task
    /// parks until an external writer wakes it (see
    /// [`crate::executor::TaskWaker`]).
    Idle,
    /// The stream has ended; the task flushes, punctuates and finishes.
    Eos,
}

/// A data source. Each task of a spout node owns one `Spout` instance and
/// calls `next` until it returns `None` (bounded streams) or the run is
/// aborted. Online/unbounded execution is modeled by long streams or, for
/// resident topologies, by overriding [`Spout::poll`] so the source can
/// park idle ([`SpoutPoll::Idle`]) instead of ending.
pub trait Spout: Send {
    fn next(&mut self) -> Option<Tuple>;

    /// Poll the source once. The default delegates to [`Spout::next`]:
    /// `Some` becomes [`SpoutPoll::Tuple`], `None` becomes
    /// [`SpoutPoll::Eos`]. Resident sources override this.
    fn poll(&mut self) -> SpoutPoll {
        match self.next() {
            Some(t) => SpoutPoll::Tuple(t),
            None => SpoutPoll::Eos,
        }
    }
}

/// A computation node. Each task owns one `Bolt` instance.
pub trait Bolt: Send {
    /// Process one input tuple. `origin` is the upstream node that emitted
    /// it (joiners dispatch on it to tell their relations apart).
    fn execute(&mut self, origin: NodeId, tuple: Tuple, out: &mut OutputCollector) -> Result<()>;

    /// Process one columnar batch of input rows from `origin`.
    ///
    /// The default is the row-view fallback: materialize each row via
    /// [`Chunk::rows`] and call [`Bolt::execute`] — correct for every bolt
    /// with no migration effort. Hot operators (joins, aggregation)
    /// override this to resolve per-batch facts once (origin → relation)
    /// and to read key columns as primitive slices, falling back to rows
    /// only at their state boundaries. Overrides must be observationally
    /// identical to the default: same emissions, same errors, in the same
    /// per-row order.
    fn execute_chunk(
        &mut self,
        origin: NodeId,
        chunk: &Chunk,
        out: &mut OutputCollector,
    ) -> Result<()> {
        for t in chunk.rows() {
            self.execute(origin, t, out)?;
        }
        Ok(())
    }

    /// Called once after every upstream task has signalled end-of-stream;
    /// used by blocking-at-the-end operators (final aggregation emission).
    fn finish(&mut self, out: &mut OutputCollector) -> Result<()> {
        let _ = out;
        Ok(())
    }

    /// Process one event-time watermark from upstream task `from_task` of
    /// node `origin` (see [`crate::message::Message::Watermark`]): every
    /// later tuple from that task carries event time ≥ `ts`. The default
    /// ignores watermarks — only operators with per-window state (the
    /// windowed aggregation bolt) need them.
    fn watermark(
        &mut self,
        origin: NodeId,
        from_task: usize,
        ts: u64,
        out: &mut OutputCollector,
    ) -> Result<()> {
        let _ = (origin, from_task, ts, out);
        Ok(())
    }

    /// Called once per checkpoint epoch, at the instant barriers for
    /// `epoch` have *aligned* — one received from every upstream task, so
    /// this task's state reflects exactly the deltas of epochs ≤ `epoch`
    /// (see [`crate::message::Message::Barrier`]). Snapshot-capable
    /// operators serialize their state here before forwarding; the default
    /// is stateless and just forwards the barrier downstream.
    fn barrier(&mut self, epoch: u64, out: &mut OutputCollector) -> Result<()> {
        out.emit_barrier(epoch);
        Ok(())
    }
}

/// Blanket spout over an iterator.
pub struct IterSpout<I: Iterator<Item = Tuple> + Send>(pub I);

impl<I: Iterator<Item = Tuple> + Send> Spout for IterSpout<I> {
    fn next(&mut self) -> Option<Tuple> {
        self.0.next()
    }
}

/// A spout over a shared tuple vector: task `start` of `stride` emits
/// elements `start, start+stride, …` — the standard way to split one
/// in-memory relation across several spout tasks.
pub struct IterSpoutVec {
    data: std::sync::Arc<Vec<Tuple>>,
    pos: usize,
    stride: usize,
}

impl IterSpoutVec {
    pub fn strided(data: std::sync::Arc<Vec<Tuple>>, start: usize, stride: usize) -> IterSpoutVec {
        assert!(stride > 0);
        IterSpoutVec { data, pos: start, stride }
    }
}

impl Spout for IterSpoutVec {
    fn next(&mut self) -> Option<Tuple> {
        let t = self.data.get(self.pos)?.clone();
        self.pos += self.stride;
        Some(t)
    }
}

/// Order a relation's tuples by an event-time column, ascending (stable),
/// validating that every timestamp is a non-negative Int.
///
/// Windowed topologies rely on each spout emitting its relation in
/// event-time order: per-sender channel FIFO then guarantees every
/// downstream task sees each relation's tuples with non-decreasing
/// timestamps, which is what the watermark-based window join needs to
/// evict state safely.
pub fn sort_by_event_time(data: &mut [Tuple], ts_col: usize) -> Result<()> {
    for t in data.iter() {
        let v = t.get(ts_col).as_int()?;
        if v < 0 {
            return Err(SquallError::Runtime(format!(
                "negative event-time timestamp {v} (column {ts_col})"
            )));
        }
    }
    data.sort_by_key(|t| t.get(ts_col).as_int().expect("validated above"));
    Ok(())
}

/// A bolt defined by a closure (handy in tests and examples).
pub struct FnBolt<F>(pub F);

impl<F> Bolt for FnBolt<F>
where
    F: FnMut(NodeId, Tuple, &mut OutputCollector) -> Result<()> + Send,
{
    fn execute(&mut self, origin: NodeId, tuple: Tuple, out: &mut OutputCollector) -> Result<()> {
        (self.0)(origin, tuple, out)
    }
}

pub(crate) type SpoutFactory = Box<dyn Fn(usize) -> Box<dyn Spout> + Send>;
pub(crate) type BoltFactory = Box<dyn Fn(usize) -> Box<dyn Bolt> + Send>;

pub(crate) enum NodeKind {
    Spout(SpoutFactory),
    Bolt(BoltFactory),
}

pub(crate) struct NodeDef {
    pub name: String,
    pub parallelism: usize,
    pub kind: NodeKind,
}

#[derive(Clone)]
pub(crate) struct Edge {
    pub from: NodeId,
    pub to: NodeId,
    pub grouping: Grouping,
}

/// Incrementally builds a [`Topology`] (the Squall-to-Storm translator of
/// Figure 1 targets exactly this interface).
pub struct TopologyBuilder {
    pub(crate) nodes: Vec<NodeDef>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) channel_capacity: usize,
    pub(crate) worker_threads: Option<usize>,
    pub(crate) batch_size: usize,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        TopologyBuilder::new()
    }
}

/// Default tuples per [`Message::Batch`] (see
/// [`TopologyBuilder::batch_size`]).
pub const DEFAULT_BATCH_SIZE: usize = 64;

impl TopologyBuilder {
    pub fn new() -> TopologyBuilder {
        TopologyBuilder {
            nodes: Vec::new(),
            edges: Vec::new(),
            channel_capacity: 1024,
            worker_threads: None,
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }

    /// Bound on each task's input queue, in *messages* (batches). A sender
    /// whose flush overfills a downstream inbox parks until the consumer
    /// drains it — backpressure by yielding, not by blocking a thread.
    pub fn channel_capacity(mut self, cap: usize) -> TopologyBuilder {
        assert!(cap > 0);
        self.channel_capacity = cap;
        self
    }

    /// Size of the worker pool executing the topology's tasks. Defaults to
    /// the machine's available parallelism; always clamped to the task
    /// count. Task counts far above this are fine — that is the point of
    /// the cooperative executor.
    pub fn worker_threads(mut self, n: usize) -> TopologyBuilder {
        assert!(n > 0, "worker pool needs at least one thread");
        self.worker_threads = Some(n);
        self
    }

    /// Tuples accumulated per scatter buffer before a [`Message::Batch`]
    /// ships (default [`DEFAULT_BATCH_SIZE`]). `1` reproduces per-tuple
    /// messaging. Routing is per-tuple either way, so results and loads do
    /// not depend on this knob — only throughput does.
    pub fn batch_size(mut self, n: usize) -> TopologyBuilder {
        assert!(n > 0, "batch size must be positive");
        self.batch_size = n;
        self
    }

    /// Add a spout node; `factory(task_index)` builds each task's source.
    pub fn add_spout<F>(
        &mut self,
        name: impl Into<String>,
        parallelism: usize,
        factory: F,
    ) -> NodeId
    where
        F: Fn(usize) -> Box<dyn Spout> + Send + 'static,
    {
        assert!(parallelism > 0, "parallelism must be positive");
        self.nodes.push(NodeDef {
            name: name.into(),
            parallelism,
            kind: NodeKind::Spout(Box::new(factory)),
        });
        self.nodes.len() - 1
    }

    /// Add a bolt node; `factory(task_index)` builds each task's operator.
    pub fn add_bolt<F>(&mut self, name: impl Into<String>, parallelism: usize, factory: F) -> NodeId
    where
        F: Fn(usize) -> Box<dyn Bolt> + Send + 'static,
    {
        assert!(parallelism > 0, "parallelism must be positive");
        self.nodes.push(NodeDef {
            name: name.into(),
            parallelism,
            kind: NodeKind::Bolt(Box::new(factory)),
        });
        self.nodes.len() - 1
    }

    /// Connect `from → to` with a grouping.
    pub fn connect(&mut self, from: NodeId, to: NodeId, grouping: Grouping) {
        self.edges.push(Edge { from, to, grouping });
    }

    /// Validate and freeze.
    pub fn build(self) -> Result<Topology> {
        let n = self.nodes.len();
        if n == 0 {
            return Err(SquallError::InvalidPlan("empty topology".into()));
        }
        for e in &self.edges {
            if e.from >= n || e.to >= n {
                return Err(SquallError::InvalidPlan(format!(
                    "edge {} -> {} references missing node",
                    e.from, e.to
                )));
            }
            if matches!(self.nodes[e.to].kind, NodeKind::Spout(_)) {
                return Err(SquallError::InvalidPlan("spouts cannot have inputs".into()));
            }
            let dup = self.edges.iter().filter(|o| o.from == e.from && o.to == e.to).count();
            if dup > 1 {
                return Err(SquallError::InvalidPlan(format!(
                    "duplicate edge {} -> {}",
                    e.from, e.to
                )));
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if matches!(node.kind, NodeKind::Bolt(_)) && !self.edges.iter().any(|e| e.to == i) {
                return Err(SquallError::InvalidPlan(format!(
                    "bolt '{}' has no input edge",
                    node.name
                )));
            }
        }
        // DAG check: Kahn's algorithm.
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.to] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut visited = 0;
        while let Some(u) = queue.pop() {
            visited += 1;
            for e in self.edges.iter().filter(|e| e.from == u) {
                indeg[e.to] -= 1;
                if indeg[e.to] == 0 {
                    queue.push(e.to);
                }
            }
        }
        if visited != n {
            return Err(SquallError::InvalidPlan("topology contains a cycle".into()));
        }
        Ok(Topology {
            nodes: self.nodes,
            edges: self.edges,
            channel_capacity: self.channel_capacity,
            worker_threads: self.worker_threads,
            batch_size: self.batch_size,
        })
    }
}

/// A validated, runnable topology. See [`crate::executor`] for execution.
pub struct Topology {
    pub(crate) nodes: Vec<NodeDef>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) channel_capacity: usize,
    pub(crate) worker_threads: Option<usize>,
    pub(crate) batch_size: usize,
}

impl Topology {
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id].name
    }

    pub fn parallelism(&self, id: NodeId) -> usize {
        self.nodes[id].parallelism
    }

    /// Nodes with no outgoing edges — their emissions become the query
    /// output.
    pub fn sinks(&self) -> Vec<NodeId> {
        (0..self.nodes.len()).filter(|&i| !self.edges.iter().any(|e| e.from == i)).collect()
    }

    /// Nodes with no incoming edges (the spouts).
    pub fn sources(&self) -> Vec<NodeId> {
        (0..self.nodes.len()).filter(|&i| !self.edges.iter().any(|e| e.to == i)).collect()
    }

    /// Is node `id` a spout (data source)?
    pub fn is_spout(&self, id: NodeId) -> bool {
        matches!(self.nodes[id].kind, NodeKind::Spout(_))
    }

    /// `(names, parallelism, is_spout)` per node — the shape
    /// [`crate::transport::plan_placement`] consumes.
    pub fn layout(&self) -> (Vec<String>, Vec<usize>, Vec<bool>) {
        let names = self.nodes.iter().map(|n| n.name.clone()).collect();
        let parallelism = self.nodes.iter().map(|n| n.parallelism).collect();
        let spouts = self.nodes.iter().map(|n| matches!(n.kind, NodeKind::Spout(_))).collect();
        (names, parallelism, spouts)
    }
}

/// One receiving task of an outgoing edge, with its scatter buffer: tuples
/// routed to this target accumulate *columnarly* in a [`ChunkBuilder`] and
/// ship as one [`Message::Batch`] when `batch_size` rows are reached (or on
/// punctuation, or when a tuple of a different arity arrives — ragged
/// streams split into uniform chunks, which cannot change results because
/// routing happened per row before buffering). Delivery goes through the
/// run's [`Transport`] — the emitter neither knows nor cares whether the
/// target task lives in this process.
pub(crate) struct EdgeTarget {
    pub(crate) task: TaskId,
    pub(crate) buffer: ChunkBuilder,
}

/// One outgoing edge of a running task.
pub(crate) struct EdgeOut {
    pub(crate) grouping: Grouping,
    pub(crate) seq: u64,
    pub(crate) targets: Vec<EdgeTarget>,
}

/// The emission interface handed to spout/bolt tasks.
///
/// `emit` routes a tuple over every outgoing edge according to that edge's
/// grouping into per-target scatter buffers; buffers flush as batched
/// messages on size (and on end-of-stream). For sink nodes (no outgoing
/// edges) the tuple is delivered to the run's output channel instead.
pub struct OutputCollector {
    node: NodeId,
    task: usize,
    edges: Vec<EdgeOut>,
    sink: Sender<(NodeId, Tuple)>,
    is_sink: bool,
    counters: Arc<TaskCounters>,
    scratch: Vec<usize>,
    batch_size: usize,
    sched: Arc<Sched>,
    transport: Arc<dyn Transport>,
    /// Set when a flush pushed some target's delivery path over capacity;
    /// the owning task checks it after each emit and parks if still true.
    gated: bool,
}

/// Ship a target's scatter buffer as one batch. Stands alone (not a
/// method) so per-edge iteration can split borrows.
fn flush_target(
    node: NodeId,
    target: &mut EdgeTarget,
    transport: &dyn Transport,
    gated: &mut bool,
) {
    if target.buffer.is_empty() {
        return;
    }
    let chunk = target.buffer.finish();
    transport.send(target.task, Message::Batch { origin: node, chunk });
    if transport.congested(target.task) {
        *gated = true;
    }
}

impl OutputCollector {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        node: NodeId,
        task: usize,
        edges: Vec<EdgeOut>,
        sink: Sender<(NodeId, Tuple)>,
        is_sink: bool,
        counters: Arc<TaskCounters>,
        batch_size: usize,
        sched: Arc<Sched>,
        transport: Arc<dyn Transport>,
    ) -> OutputCollector {
        OutputCollector {
            node,
            task,
            edges,
            sink,
            is_sink,
            counters,
            scratch: Vec::with_capacity(8),
            batch_size,
            sched,
            transport,
            gated: false,
        }
    }

    /// Emit one tuple downstream (or to the query output for sinks).
    pub fn emit(&mut self, tuple: Tuple) {
        self.counters.emitted.fetch_add(1, Ordering::Relaxed);
        if self.is_sink {
            // Output channel is unbounded; ignore disconnects (the caller
            // may have stopped listening after an abort).
            let _ = self.sink.send((self.node, tuple));
            return;
        }
        let task = self.task;
        let batch_size = self.batch_size;
        let mut sent = 0u64;
        for edge in &mut self.edges {
            edge.grouping.route(task, edge.seq, &tuple, edge.targets.len(), &mut self.scratch);
            edge.seq += 1;
            for &t in &self.scratch {
                let target = &mut edge.targets[t];
                if !target.buffer.accepts(&tuple) {
                    flush_target(self.node, target, &*self.transport, &mut self.gated);
                }
                target.buffer.push(&tuple);
                sent += 1;
                if target.buffer.len() >= batch_size {
                    flush_target(self.node, target, &*self.transport, &mut self.gated);
                }
            }
        }
        self.counters.sent.fetch_add(sent, Ordering::Relaxed);
    }

    /// Broadcast an event-time watermark to *every* downstream task of
    /// every outgoing edge (groupings do not apply: progress is a promise
    /// about all future emissions, so every consumer needs it). Each
    /// target's scatter buffer is flushed first, which keeps the
    /// data-before-watermark order that windowed aggregation relies on.
    /// No-op on sink nodes — the query output channel carries rows only.
    pub fn emit_watermark(&mut self, ts: u64) {
        if self.is_sink {
            return;
        }
        for edge in &mut self.edges {
            for target in &mut edge.targets {
                flush_target(self.node, target, &*self.transport, &mut self.gated);
                self.transport.send(
                    target.task,
                    Message::Watermark { origin: self.node, from_task: self.task, ts },
                );
            }
        }
    }

    /// Broadcast a checkpoint barrier to *every* downstream task of every
    /// outgoing edge, exactly like [`OutputCollector::emit_watermark`]:
    /// scatter buffers flush first, so the barrier follows all of this
    /// task's earlier data (the FIFO ordering that makes alignment exact).
    /// No-op on sink nodes.
    pub fn emit_barrier(&mut self, epoch: u64) {
        if self.is_sink {
            return;
        }
        for edge in &mut self.edges {
            for target in &mut edge.targets {
                flush_target(self.node, target, &*self.transport, &mut self.gated);
                self.transport.send(target.task, Message::Barrier { epoch });
            }
        }
    }

    /// Flush every scatter buffer without punctuating. Resident spouts call
    /// this before parking idle so no delta sits in a half-full batch while
    /// the task sleeps.
    pub(crate) fn flush_buffers(&mut self) {
        for edge in &mut self.edges {
            for target in &mut edge.targets {
                flush_target(self.node, target, &*self.transport, &mut self.gated);
            }
        }
    }

    /// Flush every scatter buffer and punctuate every downstream task with
    /// one `Eos`. Punctuation ignores capacity — termination must always
    /// make progress.
    pub(crate) fn flush_and_punctuate(&mut self) {
        let mut ignored = false;
        for edge in &mut self.edges {
            for target in &mut edge.targets {
                flush_target(self.node, target, &*self.transport, &mut ignored);
                self.transport.send(target.task, Message::Eos);
            }
        }
        self.gated = false;
    }

    /// If the last flush overfilled a downstream delivery path *and* it is
    /// still over capacity, register `id` on every such path's waiter list
    /// and report `true` (the task must park). Registration double-checks
    /// under the path's lock, so a consumer that drained in between simply
    /// lets the task continue.
    pub(crate) fn park_if_gated(&mut self, id: TaskId) -> bool {
        if !self.gated {
            return false;
        }
        let mut blocked = false;
        for edge in &self.edges {
            for target in &edge.targets {
                if self.transport.congested(target.task)
                    && self.transport.register_waiter(target.task, id)
                {
                    blocked = true;
                }
            }
        }
        self.gated = blocked;
        if blocked {
            self.sched.record_blocked();
        }
        blocked
    }

    pub(crate) fn counters(&self) -> &Arc<TaskCounters> {
        &self.counters
    }

    /// The executing task's index (the paper's "machine" id within the
    /// component).
    pub fn task_index(&self) -> usize {
        self.task
    }
}
