//! The pluggable transport layer: how a task's messages reach another
//! task, in this process or in another one.
//!
//! The executor emits through the [`Transport`] trait and never knows
//! where a target task lives. Two backends implement it:
//!
//! * [`LocalTransport`] — every task is in this process; `send` is an
//!   inbox push plus a scheduler wakeup (exactly the pre-transport
//!   behaviour, and the default for [`crate::Topology::launch`]);
//! * [`TcpTransport`] — tasks are partitioned across peer processes by a
//!   [`Placement`]; a local target is an inbox push, a remote target is
//!   routed into that peer's bounded **egress queue**, from which a send
//!   pump thread writes length-prefixed [`Frame`]s onto an established
//!   TCP stream. A recv pump per inbound stream pushes arriving batches
//!   into local inboxes.
//!
//! Backpressure composes across the wire: a task that overfills an egress
//! queue parks exactly like one that overfills a local inbox; the send
//! pump blocks on the socket when the peer falls behind; the peer's recv
//! pump stops reading while the destination inbox is over capacity. The
//! topology is a DAG, so each wait chain points strictly downstream and
//! terminates at a sink — no distributed cycle can form.
//!
//! Termination and failure punctuation travel the same path as data:
//! `Eos` and `Watermark` frames are forwarded per (sender task → target
//! task) edge — ordered after that sender's earlier data — so a bolt's
//! end-of-stream count and a windowed aggregate's window-closing decisions
//! are identical to a single-process run, and a
//! raised abort (e.g. [`SquallError::MemoryOverflow`]) is broadcast as an
//! `Abort` frame by every send pump, so remote spouts stop and every
//! slice drains exactly like the local abort path.

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use squall_common::codec::{self, Reader};
use squall_common::{Chunk, Result, SquallError, Tuple};

use crate::executor::{Inbox, Sched, Shared, TaskId};
use crate::message::{Message, NodeId};
use crate::metrics::{MetricsSnapshot, NodeMetrics, SchedulerStats};

// ---------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------

/// Point-to-point delivery of [`Message`]s to (possibly remote) tasks.
///
/// `send` never blocks — the capacity bound is enforced cooperatively:
/// after a send the emitter checks [`Transport::congested`] and, if the
/// path is over capacity, registers itself via
/// [`Transport::register_waiter`] and parks until the path drains.
/// Punctuation ([`Message::Eos`]) intentionally ignores the bound so
/// termination always makes progress.
pub trait Transport: Send + Sync {
    /// Deliver a message to task `to`.
    fn send(&self, to: TaskId, msg: Message);

    /// Is the path to `to` over its soft capacity (the sender should
    /// yield)?
    fn congested(&self, to: TaskId) -> bool;

    /// Register `sender` to be woken when the path to `to` drains, *if*
    /// it is still congested (double-checked under the path's lock).
    /// Returns whether it registered.
    fn register_waiter(&self, to: TaskId, sender: TaskId) -> bool;
}

// ---------------------------------------------------------------------
// Local backend
// ---------------------------------------------------------------------

/// In-process delivery: one bounded inbox per local bolt task.
pub struct LocalTransport {
    /// Dense over task ids; `None` for spout tasks (no inputs) and, under
    /// a cluster placement, for tasks hosted elsewhere.
    inboxes: Vec<Option<Arc<Inbox>>>,
    sched: Arc<Sched>,
}

impl LocalTransport {
    pub(crate) fn new(inboxes: Vec<Option<Arc<Inbox>>>, sched: Arc<Sched>) -> LocalTransport {
        LocalTransport { inboxes, sched }
    }

    fn inbox(&self, to: TaskId) -> &Arc<Inbox> {
        self.inboxes[to].as_ref().expect("message to a task without an inbox")
    }
}

impl Transport for LocalTransport {
    fn send(&self, to: TaskId, msg: Message) {
        let depth = self.inbox(to).push(msg);
        self.sched.record_depth(depth);
        self.sched.notify(to);
    }

    fn congested(&self, to: TaskId) -> bool {
        self.inbox(to).over_capacity()
    }

    fn register_waiter(&self, to: TaskId, sender: TaskId) -> bool {
        self.inbox(to).register_waiter(sender)
    }
}

// ---------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------

/// Assignment of the topology's dense task ids to cluster peers. Peer 0
/// is always the coordinator (the process driving the query).
#[derive(Debug, Clone)]
pub struct Placement {
    pub n_peers: usize,
    /// Dense task id → peer index.
    pub peer_of_task: Vec<usize>,
}

impl Placement {
    /// Tasks hosted by `peer`.
    pub fn tasks_of(&self, peer: usize) -> usize {
        self.peer_of_task.iter().filter(|&&p| p == peer).count()
    }
}

/// Compute the canonical task → peer assignment, identically on every
/// peer (it is a pure function of the topology shape and the peer
/// count):
///
/// * spout tasks are pinned to the coordinator — the catalog data lives
///   in the driving process, and shipping tuples (not relations) over
///   the wire is exactly the paper's source → join network step;
/// * each bolt node's task range is split into contiguous, near-equal
///   ranges, one per peer, in peer order (`task * n_peers / parallelism`).
pub fn plan_placement(parallelism: &[usize], is_spout: &[bool], n_peers: usize) -> Placement {
    assert!(n_peers > 0);
    let mut peer_of_task = Vec::with_capacity(parallelism.iter().sum());
    for (node, &p) in parallelism.iter().enumerate() {
        for task in 0..p {
            if is_spout[node] || n_peers == 1 {
                peer_of_task.push(0);
            } else {
                peer_of_task.push(task * n_peers / p);
            }
        }
    }
    Placement { n_peers, peer_of_task }
}

/// Human-readable placement table for `explain` output.
pub fn describe_placement(
    names: &[String],
    parallelism: &[usize],
    is_spout: &[bool],
    peer_labels: &[String],
) -> String {
    let placement = plan_placement(parallelism, is_spout, peer_labels.len());
    let mut s = String::new();
    let mut first_task = 0usize;
    for (node, &p) in parallelism.iter().enumerate() {
        let mut ranges: Vec<String> = Vec::new();
        let mut start = 0usize;
        while start < p {
            let peer = placement.peer_of_task[first_task + start];
            let mut end = start;
            while end + 1 < p && placement.peer_of_task[first_task + end + 1] == peer {
                end += 1;
            }
            let span =
                if start == end { format!("task {start}") } else { format!("tasks {start}-{end}") };
            ranges.push(format!("{span} @{}", peer_labels[peer]));
            start = end + 1;
        }
        s.push_str(&format!("  {}: {}\n", names[node], ranges.join(", ")));
        first_task += p;
    }
    s
}

// ---------------------------------------------------------------------
// Wire frames
// ---------------------------------------------------------------------

const FRAME_HELLO: u8 = 0;
const FRAME_JOB: u8 = 1;
const FRAME_DATA: u8 = 2;
const FRAME_EOS: u8 = 3;
const FRAME_SINK_ROW: u8 = 4;
const FRAME_ABORT: u8 = 5;
const FRAME_DONE: u8 = 6;
const FRAME_GOODBYE: u8 = 7;
const FRAME_WATERMARK: u8 = 8;
const FRAME_BARRIER: u8 = 9;
const FRAME_HEARTBEAT: u8 = 10;
const FRAME_SNAPSHOT_BLOB: u8 = 11;
const FRAME_READMIT: u8 = 12;

/// One operator checkpoint blob as delivered to the coordinator's
/// collector channel: `(role, task, epoch, payload)` — the fields of
/// [`Frame::SnapshotBlob`].
pub type SnapshotBlobMsg = (u8, usize, u64, Vec<u8>);

/// Everything that travels between peers. The `Job` payload is opaque at
/// this layer — the driver crate owns the plan encoding; the runtime owns
/// the data plane.
#[derive(Debug, Clone)]
pub enum Frame {
    /// Connection handshake: which peer is dialing.
    Hello { peer: usize },
    /// Coordinator → worker: the serialized query plan slice.
    Job { payload: Vec<u8> },
    /// A routed batch for one target task, shipped in the columnar chunk
    /// layout (one length-prefixed column blob per field — see
    /// [`codec::put_chunk`]).
    Data { to_task: TaskId, origin: NodeId, chunk: Chunk },
    /// One upstream task's end-of-stream punctuation for one target task.
    Eos { to_task: TaskId },
    /// One upstream task's event-time watermark for one target task: every
    /// later `Data` tuple from `(origin, from_task)` carries event time ≥
    /// `ts`. Ordered after that sender's earlier data on the link, exactly
    /// like `Eos` — windowed aggregation closes windows on it.
    Watermark { to_task: TaskId, origin: NodeId, from_task: usize, ts: u64 },
    /// One upstream task's checkpoint barrier for one target task. Ordered
    /// after that sender's earlier data on the link, exactly like `Eos`
    /// and `Watermark` — barrier alignment across the wire is identical to
    /// a single-process run.
    Barrier { to_task: TaskId, epoch: u64 },
    /// Liveness beacon: the sender is alive and its bolts have aligned on
    /// checkpoint epochs up to `epoch`. Sent on otherwise-idle links when
    /// the failure detector is armed; receiving one refreshes the link's
    /// read deadline and records the peer's checkpoint progress.
    Heartbeat { epoch: u64 },
    /// An aligned task's serialized operator state for checkpoint `epoch`,
    /// shipped to the coordinator's checkpoint store. `role` distinguishes
    /// the operator kind (0 = join bolt, 1 = view sink); `task` is the
    /// task index *within* that role's node.
    SnapshotBlob { role: u8, task: usize, epoch: u64, payload: Vec<u8> },
    /// Coordinator → worker, ahead of a recovery `Job`: this connection
    /// re-admits the worker as peer `peer` into a run being restored from
    /// checkpoint `epoch` (lets the worker log the re-admission and
    /// distinguish it from a fresh job).
    Readmit { peer: usize, epoch: u64 },
    /// A sink emission forwarded to the coordinator.
    SinkRow { node: NodeId, tuple: Tuple },
    /// A peer raised the run-abort flag; the error is the cause.
    Abort { error: SquallError },
    /// Worker → coordinator: final per-task metrics and first error.
    Done { metrics: MetricsSnapshot, error: Option<SquallError> },
    /// Clean end of this direction's stream (distinguishes an orderly
    /// close from a crashed peer).
    Goodbye,
}

fn put_metrics(buf: &mut Vec<u8>, m: &MetricsSnapshot) {
    codec::put_u32(buf, m.nodes.len() as u32);
    for n in &m.nodes {
        codec::put_u64(buf, n.node as u64);
        codec::put_str(buf, &n.name);
        for counts in [&n.received, &n.sent, &n.emitted] {
            codec::put_u32(buf, counts.len() as u32);
            for &c in counts.iter() {
                codec::put_u64(buf, c);
            }
        }
    }
    let s = &m.scheduler;
    for v in [s.workers, s.steals, s.yields, s.blocked, s.max_queue_depth] {
        codec::put_u64(buf, v);
    }
}

fn get_metrics(r: &mut Reader<'_>) -> Result<MetricsSnapshot> {
    let n_nodes = r.len()?;
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let node = r.u64()? as usize;
        let name = r.str()?;
        let mut vecs: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for v in vecs.iter_mut() {
            let n = r.len()?;
            v.reserve(n);
            for _ in 0..n {
                v.push(r.u64()?);
            }
        }
        let [received, sent, emitted] = vecs;
        nodes.push(NodeMetrics { node, name, received, sent, emitted });
    }
    let scheduler = SchedulerStats {
        workers: r.u64()?,
        steals: r.u64()?,
        yields: r.u64()?,
        blocked: r.u64()?,
        max_queue_depth: r.u64()?,
    };
    Ok(MetricsSnapshot { nodes, scheduler })
}

impl Frame {
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Frame::Hello { peer } => {
                codec::put_u8(&mut buf, FRAME_HELLO);
                codec::put_u32(&mut buf, *peer as u32);
            }
            Frame::Job { payload } => {
                codec::put_u8(&mut buf, FRAME_JOB);
                codec::put_bytes(&mut buf, payload);
            }
            Frame::Data { to_task, origin, chunk } => {
                codec::put_u8(&mut buf, FRAME_DATA);
                codec::put_u32(&mut buf, *to_task as u32);
                codec::put_u32(&mut buf, *origin as u32);
                codec::put_chunk(&mut buf, chunk);
            }
            Frame::Eos { to_task } => {
                codec::put_u8(&mut buf, FRAME_EOS);
                codec::put_u32(&mut buf, *to_task as u32);
            }
            Frame::Watermark { to_task, origin, from_task, ts } => {
                codec::put_u8(&mut buf, FRAME_WATERMARK);
                codec::put_u32(&mut buf, *to_task as u32);
                codec::put_u32(&mut buf, *origin as u32);
                codec::put_u32(&mut buf, *from_task as u32);
                codec::put_u64(&mut buf, *ts);
            }
            Frame::Barrier { to_task, epoch } => {
                codec::put_u8(&mut buf, FRAME_BARRIER);
                codec::put_u32(&mut buf, *to_task as u32);
                codec::put_u64(&mut buf, *epoch);
            }
            Frame::Heartbeat { epoch } => {
                codec::put_u8(&mut buf, FRAME_HEARTBEAT);
                codec::put_u64(&mut buf, *epoch);
            }
            Frame::SnapshotBlob { role, task, epoch, payload } => {
                codec::put_u8(&mut buf, FRAME_SNAPSHOT_BLOB);
                codec::put_u8(&mut buf, *role);
                codec::put_u32(&mut buf, *task as u32);
                codec::put_u64(&mut buf, *epoch);
                codec::put_bytes(&mut buf, payload);
            }
            Frame::Readmit { peer, epoch } => {
                codec::put_u8(&mut buf, FRAME_READMIT);
                codec::put_u32(&mut buf, *peer as u32);
                codec::put_u64(&mut buf, *epoch);
            }
            Frame::SinkRow { node, tuple } => {
                codec::put_u8(&mut buf, FRAME_SINK_ROW);
                codec::put_u32(&mut buf, *node as u32);
                codec::put_tuple(&mut buf, tuple);
            }
            Frame::Abort { error } => {
                codec::put_u8(&mut buf, FRAME_ABORT);
                codec::put_error(&mut buf, error);
            }
            Frame::Done { metrics, error } => {
                codec::put_u8(&mut buf, FRAME_DONE);
                put_metrics(&mut buf, metrics);
                match error {
                    None => codec::put_u8(&mut buf, 0),
                    Some(e) => {
                        codec::put_u8(&mut buf, 1);
                        codec::put_error(&mut buf, e);
                    }
                }
            }
            Frame::Goodbye => codec::put_u8(&mut buf, FRAME_GOODBYE),
        }
        buf
    }

    pub fn decode(payload: &[u8]) -> Result<Frame> {
        let mut r = Reader::new(payload);
        let frame = match r.u8()? {
            FRAME_HELLO => Frame::Hello { peer: r.u32()? as usize },
            FRAME_JOB => Frame::Job { payload: r.bytes()? },
            FRAME_DATA => Frame::Data {
                to_task: r.u32()? as TaskId,
                origin: r.u32()? as NodeId,
                chunk: codec::get_chunk(&mut r)?,
            },
            FRAME_EOS => Frame::Eos { to_task: r.u32()? as TaskId },
            FRAME_WATERMARK => Frame::Watermark {
                to_task: r.u32()? as TaskId,
                origin: r.u32()? as NodeId,
                from_task: r.u32()? as usize,
                ts: r.u64()?,
            },
            FRAME_BARRIER => Frame::Barrier { to_task: r.u32()? as TaskId, epoch: r.u64()? },
            FRAME_HEARTBEAT => Frame::Heartbeat { epoch: r.u64()? },
            FRAME_SNAPSHOT_BLOB => Frame::SnapshotBlob {
                role: r.u8()?,
                task: r.u32()? as usize,
                epoch: r.u64()?,
                payload: r.bytes()?,
            },
            FRAME_READMIT => Frame::Readmit { peer: r.u32()? as usize, epoch: r.u64()? },
            FRAME_SINK_ROW => {
                Frame::SinkRow { node: r.u32()? as NodeId, tuple: codec::get_tuple(&mut r)? }
            }
            FRAME_ABORT => Frame::Abort { error: codec::get_error(&mut r)? },
            FRAME_DONE => {
                let metrics = get_metrics(&mut r)?;
                let error = match r.u8()? {
                    0 => None,
                    _ => Some(codec::get_error(&mut r)?),
                };
                Frame::Done { metrics, error }
            }
            FRAME_GOODBYE => Frame::Goodbye,
            tag => return Err(SquallError::Codec(format!("unknown frame tag {tag}"))),
        };
        r.finish()?;
        Ok(frame)
    }

    /// Write this frame, length-prefixed. Returns the bytes written.
    pub fn write_to(&self, w: &mut impl Write) -> Result<usize> {
        let payload = self.encode();
        codec::write_frame(w, &payload)?;
        Ok(4 + payload.len())
    }

    /// Read one frame; `Ok(None)` on clean EOF at a frame boundary.
    pub fn read_from(r: &mut impl std::io::Read) -> Result<Option<(Frame, usize)>> {
        match codec::read_frame(r)? {
            None => Ok(None),
            Some(payload) => {
                let n = 4 + payload.len();
                Ok(Some((Frame::decode(&payload)?, n)))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Egress queues
// ---------------------------------------------------------------------

pub(crate) enum EgressItem {
    Frame(Frame),
    /// All local producers are done; drain and close the stream.
    Close,
}

struct EgressInner {
    queue: VecDeque<EgressItem>,
    waiting_senders: Vec<TaskId>,
}

/// The bounded per-peer outbound queue. Producer tasks push without
/// blocking (parking cooperatively when over capacity, exactly like a
/// local inbox); the single consumer is the peer's send pump thread,
/// which *does* block — it has nothing else to do.
pub(crate) struct EgressQueue {
    inner: Mutex<EgressInner>,
    cv: Condvar,
    len: AtomicUsize,
    capacity: usize,
}

impl EgressQueue {
    fn new(capacity: usize) -> EgressQueue {
        assert!(capacity > 0);
        EgressQueue {
            inner: Mutex::new(EgressInner { queue: VecDeque::new(), waiting_senders: Vec::new() }),
            cv: Condvar::new(),
            len: AtomicUsize::new(0),
            capacity,
        }
    }

    pub(crate) fn push(&self, item: EgressItem) {
        let mut inner = self.inner.lock().expect("egress poisoned");
        inner.queue.push_back(item);
        self.len.store(inner.queue.len(), Ordering::Release);
        self.cv.notify_one();
    }

    fn over_capacity(&self) -> bool {
        self.len.load(Ordering::Acquire) > self.capacity
    }

    fn register_waiter(&self, sender: TaskId) -> bool {
        let mut inner = self.inner.lock().expect("egress poisoned");
        if inner.queue.len() <= self.capacity {
            return false;
        }
        if !inner.waiting_senders.contains(&sender) {
            inner.waiting_senders.push(sender);
        }
        true
    }

    /// Pop the next item, waiting up to `timeout`. Parked producers that
    /// the pop released are handed back in `wake`.
    fn pop_wait(&self, timeout: Duration, wake: &mut Vec<TaskId>) -> Option<EgressItem> {
        let mut inner = self.inner.lock().expect("egress poisoned");
        if inner.queue.is_empty() {
            let (guard, _) = self.cv.wait_timeout(inner, timeout).expect("egress cv poisoned");
            inner = guard;
        }
        let item = inner.queue.pop_front()?;
        self.len.store(inner.queue.len(), Ordering::Release);
        if inner.queue.len() <= self.capacity && !inner.waiting_senders.is_empty() {
            wake.append(&mut inner.waiting_senders);
        }
        Some(item)
    }
}

// ---------------------------------------------------------------------
// TCP backend
// ---------------------------------------------------------------------

/// Established, handshaken sockets for one run: `outbound[p]` carries this
/// peer's frames *to* `p`; `inbound[p]` carries `p`'s frames to us. Built
/// by the driver's cluster handshake ([`ClusterLinks::coordinator`] /
/// [`ClusterLinks::worker`]) and consumed by
/// [`crate::Topology::launch_cluster`].
pub struct ClusterLinks {
    pub me: usize,
    pub peer_labels: Vec<String>,
    /// Where arriving [`Frame::SnapshotBlob`]s are delivered as
    /// `(role, task, epoch, payload)` — set by the checkpointing
    /// coordinator before launch; `None` discards them.
    pub blob_tx: Option<Sender<SnapshotBlobMsg>>,
    /// Failure-detector patience: when set, the pumps exchange
    /// [`Frame::Heartbeat`]s on idle links (at a quarter of this period)
    /// and arm a read deadline — a peer silent for this long is declared
    /// [`SquallError::WorkerLost`]. `None` (the default) keeps the
    /// pre-checkpointing behaviour: only a closed socket fails the run.
    pub heartbeat: Option<Duration>,
    pub(crate) outbound: Vec<Option<TcpStream>>,
    pub(crate) inbound: Vec<Option<TcpStream>>,
}

/// Handshake patience: how long the cluster handshake waits for an
/// expected peer connection (or its first frame) before failing the run.
/// A peer that dies mid-handshake must surface a typed error, not hang
/// the coordinator; dial retries use the same budget.
pub const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Accept one connection, giving up at `deadline` (the listener polls in
/// non-blocking mode and is restored to blocking either way).
pub fn accept_with_deadline(listener: &TcpListener, deadline: Instant) -> Result<TcpStream> {
    listener.set_nonblocking(true).map_err(SquallError::from)?;
    let outcome = loop {
        match listener.accept() {
            Ok((stream, _)) => break Ok(stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    break Err(SquallError::Io(
                        "timed out waiting for a cluster peer to connect".into(),
                    ));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => break Err(e.into()),
        }
    };
    listener.set_nonblocking(false).ok();
    let stream = outcome?;
    stream.set_nonblocking(false).map_err(SquallError::from)?;
    stream.set_nodelay(true).ok();
    Ok(stream)
}

/// Read one frame with a temporary read timeout (cleared afterwards, so
/// the stream can go on to serve the run's data plane). Exact reads off
/// the raw stream — a frame racing in behind this one stays queued.
pub fn read_frame_deadline(
    stream: &TcpStream,
    deadline: Instant,
) -> Result<Option<(Frame, usize)>> {
    let budget = deadline.saturating_duration_since(Instant::now()).max(Duration::from_millis(10));
    stream.set_read_timeout(Some(budget)).map_err(SquallError::from)?;
    let out = Frame::read_from(&mut (&*stream));
    stream.set_read_timeout(None).ok();
    out
}

/// Dial `addr`, retrying while the listener comes up (worker processes
/// race the coordinator at startup).
pub fn connect_with_retry(addr: &str, timeout: Duration) -> Result<TcpStream> {
    let start = Instant::now();
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_nodelay(true).ok();
                return Ok(s);
            }
            Err(e) => {
                if start.elapsed() > timeout {
                    return Err(SquallError::Io(format!("connect {addr}: {e}")));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

impl ClusterLinks {
    /// Coordinator-side handshake: dial every worker, send its `Job`
    /// frame on the stream that then becomes our outbound data link, and
    /// accept one `Hello`-opened inbound link per worker.
    ///
    /// `peer_labels[0]` labels the coordinator; `worker_addrs` are dialed
    /// in peer order (peer `i + 1` = `worker_addrs[i]`).
    ///
    /// With `readmit_epoch` set (a recovery relaunch), each job is
    /// prefaced by a `Readmit` frame on the same stream so the worker can
    /// tell a re-admission from a fresh job.
    pub fn coordinator(
        listener: &TcpListener,
        worker_addrs: &[String],
        jobs: Vec<Vec<u8>>,
        readmit_epoch: Option<u64>,
    ) -> Result<ClusterLinks> {
        assert_eq!(worker_addrs.len(), jobs.len());
        let n_peers = worker_addrs.len() + 1;
        let mut outbound: Vec<Option<TcpStream>> = (0..n_peers).map(|_| None).collect();
        let mut inbound: Vec<Option<TcpStream>> = (0..n_peers).map(|_| None).collect();
        for (i, (addr, job)) in worker_addrs.iter().zip(jobs).enumerate() {
            let mut stream = connect_with_retry(addr, HANDSHAKE_TIMEOUT)?;
            if let Some(epoch) = readmit_epoch {
                Frame::Readmit { peer: i + 1, epoch }.write_to(&mut stream)?;
            }
            Frame::Job { payload: job }.write_to(&mut stream)?;
            outbound[i + 1] = Some(stream);
        }
        let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
        for _ in 0..worker_addrs.len() {
            let stream = accept_with_deadline(listener, deadline)?;
            // Read the handshake frame straight off the stream (exact
            // reads, no buffering): frames racing in behind the Hello
            // must stay in the socket for the recv pump.
            match read_frame_deadline(&stream, deadline)? {
                Some((Frame::Hello { peer }, _)) if peer >= 1 && peer < n_peers => {
                    if inbound[peer].is_some() {
                        return Err(SquallError::Runtime(format!("duplicate hello from {peer}")));
                    }
                    inbound[peer] = Some(stream);
                }
                other => {
                    return Err(SquallError::Runtime(format!(
                        "expected Hello during cluster handshake, got {other:?}"
                    )))
                }
            }
        }
        let mut peer_labels = vec!["coordinator".to_string()];
        peer_labels.extend(worker_addrs.iter().cloned());
        Ok(ClusterLinks { me: 0, peer_labels, blob_tx: None, heartbeat: None, outbound, inbound })
    }

    /// Worker-side handshake. The coordinator's job connection (already
    /// accepted, `Job` frame consumed by the caller) becomes `inbound[0]`;
    /// `pre_accepted` are any `Hello` connections that raced ahead of the
    /// job frame. Dials every other peer and accepts the rest.
    pub fn worker(
        listener: &TcpListener,
        me: usize,
        peer_addrs: &[String],
        job_conn: TcpStream,
        pre_accepted: Vec<(usize, TcpStream)>,
    ) -> Result<ClusterLinks> {
        let n_peers = peer_addrs.len();
        assert!(me >= 1 && me < n_peers);
        let mut outbound: Vec<Option<TcpStream>> = (0..n_peers).map(|_| None).collect();
        let mut inbound: Vec<Option<TcpStream>> = (0..n_peers).map(|_| None).collect();
        inbound[0] = Some(job_conn);
        for (peer, stream) in pre_accepted {
            if peer == me || peer >= n_peers || inbound[peer].is_some() {
                return Err(SquallError::Runtime(format!("bad pre-accepted hello from {peer}")));
            }
            inbound[peer] = Some(stream);
        }
        // Dial everyone else (the coordinator and the other workers).
        for (peer, addr) in peer_addrs.iter().enumerate() {
            if peer == me {
                continue;
            }
            let mut stream = connect_with_retry(addr, HANDSHAKE_TIMEOUT)?;
            Frame::Hello { peer: me }.write_to(&mut stream)?;
            outbound[peer] = Some(stream);
        }
        // Accept the remaining inbound hellos (other workers dialing us).
        let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
        while inbound.iter().enumerate().any(|(p, s)| p != me && s.is_none()) {
            let stream = accept_with_deadline(listener, deadline)?;
            // Exact reads only — see ClusterLinks::coordinator.
            match read_frame_deadline(&stream, deadline)? {
                Some((Frame::Hello { peer }, _)) if peer < n_peers && peer != me => {
                    if inbound[peer].is_some() {
                        return Err(SquallError::Runtime(format!("duplicate hello from {peer}")));
                    }
                    inbound[peer] = Some(stream);
                }
                other => {
                    return Err(SquallError::Runtime(format!(
                        "expected Hello during cluster handshake, got {other:?}"
                    )))
                }
            }
        }
        let mut peer_labels: Vec<String> = peer_addrs.to_vec();
        peer_labels[0] = "coordinator".to_string();
        Ok(ClusterLinks { me, peer_labels, blob_tx: None, heartbeat: None, outbound, inbound })
    }
}

/// Per-peer wire counters, updated by the pumps.
#[derive(Debug, Default)]
pub(crate) struct PeerWire {
    pub(crate) batches_sent: AtomicU64,
    pub(crate) bytes_sent: AtomicU64,
    pub(crate) batches_received: AtomicU64,
    pub(crate) bytes_received: AtomicU64,
    /// Highest checkpoint epoch this peer has advertised (via heartbeats)
    /// — the "last seen alive at" epoch reported when the peer is lost.
    pub(crate) last_epoch: AtomicU64,
}

/// Frozen per-peer wire traffic for one run (the distributed analog of
/// the paper's network-factor monitoring): batches are `Data` frames;
/// bytes count every frame on the link, punctuation included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerWireStats {
    pub peer: usize,
    pub label: String,
    pub batches_sent: u64,
    pub bytes_sent: u64,
    pub batches_received: u64,
    pub bytes_received: u64,
}

/// All peers' wire traffic as observed by this process.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransportStats {
    pub peers: Vec<PeerWireStats>,
}

impl TransportStats {
    pub fn total_bytes_sent(&self) -> u64 {
        self.peers.iter().map(|p| p.bytes_sent).sum()
    }

    pub fn total_bytes_received(&self) -> u64 {
        self.peers.iter().map(|p| p.bytes_received).sum()
    }

    pub fn total_batches_sent(&self) -> u64 {
        self.peers.iter().map(|p| p.batches_sent).sum()
    }

    pub fn total_batches_received(&self) -> u64 {
        self.peers.iter().map(|p| p.batches_received).sum()
    }
}

impl std::fmt::Display for TransportStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for p in &self.peers {
            writeln!(
                f,
                "  peer {} ({}): sent {} batches / {} B, received {} batches / {} B",
                p.peer, p.label, p.batches_sent, p.bytes_sent, p.batches_received, p.bytes_received
            )?;
        }
        Ok(())
    }
}

/// The TCP backend: local targets hit their inbox, remote targets are
/// framed into the owning peer's egress queue.
pub struct TcpTransport {
    local: LocalTransport,
    me: usize,
    peer_of_task: Vec<usize>,
    egress: Vec<Option<Arc<EgressQueue>>>,
}

impl Transport for TcpTransport {
    fn send(&self, to: TaskId, msg: Message) {
        let peer = self.peer_of_task[to];
        if peer == self.me {
            return self.local.send(to, msg);
        }
        let q = self.egress[peer].as_ref().expect("no link to peer");
        let frame = match msg {
            Message::Batch { origin, chunk } => Frame::Data { to_task: to, origin, chunk },
            Message::Eos => Frame::Eos { to_task: to },
            Message::Watermark { origin, from_task, ts } => {
                Frame::Watermark { to_task: to, origin, from_task, ts }
            }
            Message::Barrier { epoch } => Frame::Barrier { to_task: to, epoch },
        };
        q.push(EgressItem::Frame(frame));
    }

    fn congested(&self, to: TaskId) -> bool {
        let peer = self.peer_of_task[to];
        if peer == self.me {
            self.local.congested(to)
        } else {
            self.egress[peer].as_ref().expect("no link to peer").over_capacity()
        }
    }

    fn register_waiter(&self, to: TaskId, sender: TaskId) -> bool {
        let peer = self.peer_of_task[to];
        if peer == self.me {
            self.local.register_waiter(to, sender)
        } else {
            self.egress[peer].as_ref().expect("no link to peer").register_waiter(sender)
        }
    }
}

// ---------------------------------------------------------------------
// The per-run cluster data plane (pumps + remote state)
// ---------------------------------------------------------------------

#[derive(Default)]
struct RemoteState {
    metrics: Vec<MetricsSnapshot>,
    error: Option<SquallError>,
}

/// Everything a run finished with, cluster-wise.
#[derive(Debug)]
pub struct ClusterSummary {
    /// Metric snapshots reported by remote peers (coordinator only; each
    /// covers the full topology with non-local counters at zero — merge
    /// them with [`MetricsSnapshot::merge`]).
    pub remote_metrics: Vec<MetricsSnapshot>,
    /// First error reported by a remote peer, if any.
    pub remote_error: Option<SquallError>,
    /// Wire traffic per peer as seen from this process.
    pub transport: TransportStats,
}

/// The live cluster side of a launched run: per-peer egress queues and
/// pump threads. Finish it *after* joining the local worker pool (all
/// local punctuation is then queued) — [`ClusterRun::finish`] drains the
/// queues, closes the links and collects remote reports.
pub struct ClusterRun {
    me: usize,
    peer_labels: Vec<String>,
    egress: Vec<Option<Arc<EgressQueue>>>,
    send_pumps: Vec<JoinHandle<()>>,
    recv_pumps: Vec<JoinHandle<()>>,
    remote: Arc<Mutex<RemoteState>>,
    wire: Arc<Vec<PeerWire>>,
    shared: Arc<Shared>,
}

/// A cheap, clonable handle pushing control-plane frames (snapshot blobs)
/// onto one peer link from *outside* the worker pool — how a worker's
/// checkpoint forwarder ships aligned state to the coordinator. Frames are
/// ordered after everything already queued on the link.
#[derive(Clone)]
pub struct FrameSender {
    q: Arc<EgressQueue>,
}

impl FrameSender {
    /// Queue `frame` for the link's send pump.
    pub fn send(&self, frame: Frame) {
        self.q.push(EgressItem::Frame(frame));
    }
}

impl ClusterRun {
    /// A [`FrameSender`] onto the coordinator link (`None` on the
    /// coordinator itself, which has no link to peer 0).
    pub fn frame_sender(&self) -> Option<FrameSender> {
        self.egress[0].as_ref().map(|q| FrameSender { q: Arc::clone(q) })
    }

    /// Forward a local sink emission to the coordinator (worker side).
    pub fn forward_sink(&self, node: NodeId, tuple: Tuple) {
        debug_assert_ne!(self.me, 0, "the coordinator collects sinks directly");
        if let Some(q) = self.egress[0].as_ref() {
            q.push(EgressItem::Frame(Frame::SinkRow { node, tuple }));
        }
    }

    /// Raise the run-abort flag; the send pumps broadcast it to peers.
    pub fn abort(&self) {
        self.shared.raise(SquallError::Runtime("run cancelled".into()));
    }

    /// Drain and close every link and collect the remote reports. Workers
    /// pass their final `(metrics, error)` to ship a `Done` frame to the
    /// coordinator first.
    pub fn finish(
        mut self,
        done: Option<(MetricsSnapshot, Option<SquallError>)>,
    ) -> ClusterSummary {
        if let Some((metrics, error)) = done {
            if let Some(q) = self.egress[0].as_ref() {
                q.push(EgressItem::Frame(Frame::Done { metrics, error }));
            }
        }
        self.shutdown();
        let mut remote = self.remote.lock().expect("remote state poisoned");
        ClusterSummary {
            remote_metrics: std::mem::take(&mut remote.metrics),
            remote_error: remote.error.take(),
            transport: TransportStats {
                peers: self
                    .wire
                    .iter()
                    .enumerate()
                    .filter(|(p, _)| *p != self.me)
                    .map(|(p, w)| PeerWireStats {
                        peer: p,
                        label: self.peer_labels[p].clone(),
                        batches_sent: w.batches_sent.load(Ordering::Relaxed),
                        bytes_sent: w.bytes_sent.load(Ordering::Relaxed),
                        batches_received: w.batches_received.load(Ordering::Relaxed),
                        bytes_received: w.bytes_received.load(Ordering::Relaxed),
                    })
                    .collect(),
            },
        }
    }

    fn shutdown(&mut self) {
        for q in self.egress.iter().flatten() {
            q.push(EgressItem::Close);
        }
        for h in self.send_pumps.drain(..) {
            let _ = h.join();
        }
        for h in self.recv_pumps.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ClusterRun {
    fn drop(&mut self) {
        if self.send_pumps.is_empty() && self.recv_pumps.is_empty() {
            return; // finished
        }
        // Abandoned mid-run (e.g. a dropped streaming ResultSet): abort so
        // peers drain, then close out. The local pool was already joined —
        // RunHandle precedes ClusterRun in every owner, so its Drop ran
        // first and all local punctuation is queued.
        self.shared.raise(SquallError::Runtime("run cancelled".into()));
        self.shutdown();
    }
}

/// Wiring shared by the pump spawner: built by `launch_cluster`.
pub(crate) struct ClusterWiring {
    pub(crate) inboxes: Vec<Option<Arc<Inbox>>>,
    pub(crate) sched: Arc<Sched>,
    pub(crate) shared: Arc<Shared>,
    pub(crate) sink_tx: Sender<(NodeId, Tuple)>,
    pub(crate) channel_capacity: usize,
    /// Per peer: how many `Eos` each *local* task is owed by that peer's
    /// tasks — used to synthesize punctuation if a peer crashes, so the
    /// run fails with an error instead of hanging.
    pub(crate) eos_owed: Vec<Vec<(TaskId, usize)>>,
}

pub(crate) fn spawn_cluster(
    links: ClusterLinks,
    placement: &Placement,
    wiring: ClusterWiring,
) -> (Arc<TcpTransport>, ClusterRun) {
    let ClusterLinks { me, peer_labels, blob_tx, heartbeat, outbound, inbound } = links;
    let n_peers = placement.n_peers;
    let wire: Arc<Vec<PeerWire>> = Arc::new((0..n_peers).map(|_| PeerWire::default()).collect());
    let remote: Arc<Mutex<RemoteState>> = Arc::new(Mutex::new(RemoteState::default()));

    let mut egress: Vec<Option<Arc<EgressQueue>>> = (0..n_peers).map(|_| None).collect();
    let mut send_pumps = Vec::new();
    for (peer, stream) in outbound.into_iter().enumerate() {
        let Some(stream) = stream else { continue };
        let q = Arc::new(EgressQueue::new(wiring.channel_capacity));
        egress[peer] = Some(Arc::clone(&q));
        let sched = Arc::clone(&wiring.sched);
        let shared = Arc::clone(&wiring.shared);
        let wire = Arc::clone(&wire);
        send_pumps.push(
            std::thread::Builder::new()
                .name(format!("squall-send-{me}-{peer}"))
                .spawn(move || send_pump(stream, peer, &q, &sched, &shared, &wire, heartbeat))
                .expect("spawn send pump"),
        );
    }

    let mut recv_pumps = Vec::new();
    for (peer, stream) in inbound.into_iter().enumerate() {
        let Some(stream) = stream else { continue };
        let inboxes = wiring.inboxes.clone();
        let sched = Arc::clone(&wiring.sched);
        let shared = Arc::clone(&wiring.shared);
        let remote = Arc::clone(&remote);
        let wire = Arc::clone(&wire);
        // Only the coordinator collects remote sink rows into the run's
        // output channel; worker-held clones would keep it open forever.
        let sink_tx = (me == 0).then(|| wiring.sink_tx.clone());
        let blob_tx = blob_tx.clone();
        let eos_owed = wiring.eos_owed[peer].clone();
        let peer_label = peer_labels[peer].clone();
        recv_pumps.push(
            std::thread::Builder::new()
                .name(format!("squall-recv-{me}-{peer}"))
                .spawn(move || {
                    RecvPump {
                        stream,
                        peer,
                        peer_label,
                        inboxes,
                        sink_tx,
                        blob_tx,
                        heartbeat,
                        eos_owed,
                    }
                    .run(&sched, &shared, &remote, &wire)
                })
                .expect("spawn recv pump"),
        );
    }
    drop(wiring.sink_tx);

    let transport = Arc::new(TcpTransport {
        local: LocalTransport::new(wiring.inboxes, Arc::clone(&wiring.sched)),
        me,
        peer_of_task: placement.peer_of_task.clone(),
        egress: egress.clone(),
    });
    let run = ClusterRun {
        me,
        peer_labels,
        egress,
        send_pumps,
        recv_pumps,
        remote,
        wire,
        shared: wiring.shared,
    };
    (transport, run)
}

fn send_pump(
    stream: TcpStream,
    peer: usize,
    q: &EgressQueue,
    sched: &Sched,
    shared: &Shared,
    wire: &[PeerWire],
    heartbeat: Option<Duration>,
) {
    // Beat at a quarter of the detector's patience so a healthy link is
    // never declared dead merely for being idle.
    let beat_every = heartbeat.map(|t| (t / 4).max(Duration::from_millis(5)));
    let mut last_beat = Instant::now();
    let mut w = BufWriter::new(stream);
    let counters = &wire[peer];
    let mut abort_sent = false;
    let mut broken = false;
    let mut wake = Vec::new();
    loop {
        if !abort_sent && !broken && shared.is_aborted() {
            let error =
                shared.error_clone().unwrap_or_else(|| SquallError::Runtime("aborted".into()));
            abort_sent = true;
            let wrote = (Frame::Abort { error }).write_to(&mut w).and_then(|n| {
                w.flush()?;
                Ok(n)
            });
            match wrote {
                Ok(n) => {
                    counters.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
                }
                Err(_) => broken = true,
            }
        }
        let item = q.pop_wait(Duration::from_millis(20), &mut wake);
        for t in wake.drain(..) {
            sched.notify(t);
        }
        match item {
            Some(EgressItem::Frame(frame)) => {
                if broken {
                    continue; // keep draining so producers never park forever
                }
                let is_batch = matches!(frame, Frame::Data { .. });
                match frame.write_to(&mut w) {
                    Ok(n) => {
                        counters.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
                        if is_batch {
                            counters.batches_sent.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(e) => {
                        broken = true;
                        shared.raise(SquallError::Io(format!("send to peer {peer}: {e}")));
                    }
                }
            }
            Some(EgressItem::Close) => {
                if !broken {
                    if let Ok(n) = Frame::Goodbye.write_to(&mut w) {
                        counters.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
                    }
                }
                break;
            }
            None => {
                // Idle: push buffered bytes onto the wire so a quiet link
                // never sits on latency, and beat if the failure detector
                // is armed (data flowing counts as liveness by itself, so
                // busy links skip the beacon).
                if let Some(every) = beat_every {
                    if !broken && last_beat.elapsed() >= every {
                        last_beat = Instant::now();
                        let epoch = shared.epoch.load(Ordering::Relaxed);
                        match (Frame::Heartbeat { epoch }).write_to(&mut w) {
                            Ok(n) => {
                                counters.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
                            }
                            Err(_) => broken = true,
                        }
                    }
                }
                if !broken && w.flush().is_err() {
                    broken = true;
                }
            }
        }
    }
    let _ = w.flush();
}

/// Everything one inbound-link pump owns (bundled so the spawn site stays
/// under the argument-count lint and the failure path has the peer's
/// label at hand).
struct RecvPump {
    stream: TcpStream,
    peer: usize,
    peer_label: String,
    inboxes: Vec<Option<Arc<Inbox>>>,
    sink_tx: Option<Sender<(NodeId, Tuple)>>,
    blob_tx: Option<Sender<SnapshotBlobMsg>>,
    heartbeat: Option<Duration>,
    eos_owed: Vec<(TaskId, usize)>,
}

impl RecvPump {
    fn run(self, sched: &Sched, shared: &Shared, remote: &Mutex<RemoteState>, wire: &[PeerWire]) {
        let RecvPump { stream, peer, peer_label, inboxes, sink_tx, blob_tx, heartbeat, eos_owed } =
            self;
        // Arm the failure detector: a link silent for the heartbeat
        // timeout fails the read (peers beat at a quarter of it, so only
        // a dead or wedged peer trips this).
        if let Some(timeout) = heartbeat {
            stream.set_read_timeout(Some(timeout)).ok();
        }
        let mut r = BufReader::new(stream);
        let counters = &wire[peer];
        let mut clean = false;
        loop {
            match Frame::read_from(&mut r) {
                Ok(Some((frame, n))) => {
                    counters.bytes_received.fetch_add(n as u64, Ordering::Relaxed);
                    match frame {
                        Frame::Data { to_task, origin, chunk } => {
                            counters.batches_received.fetch_add(1, Ordering::Relaxed);
                            let Some(inbox) = inboxes.get(to_task).and_then(|i| i.as_ref()) else {
                                shared.raise(SquallError::Runtime(format!(
                                    "peer {peer} addressed non-local task {to_task}"
                                )));
                                continue;
                            };
                            // Stop reading while the destination is over
                            // capacity: TCP flow control then pushes back on
                            // the sending peer. Abort lifts the gate so
                            // drain-to-terminate always progresses.
                            while inbox.over_capacity() && !shared.is_aborted() {
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            let depth = inbox.push(Message::Batch { origin, chunk });
                            sched.record_depth(depth);
                            sched.notify(to_task);
                        }
                        Frame::Eos { to_task } => {
                            let Some(inbox) = inboxes.get(to_task).and_then(|i| i.as_ref()) else {
                                continue;
                            };
                            inbox.push(Message::Eos);
                            sched.notify(to_task);
                        }
                        Frame::Watermark { to_task, origin, from_task, ts } => {
                            // Punctuation, like Eos: pushed without the
                            // capacity wait (the pump reads sequentially, so
                            // it still lands after the sender's earlier data).
                            let Some(inbox) = inboxes.get(to_task).and_then(|i| i.as_ref()) else {
                                continue;
                            };
                            inbox.push(Message::Watermark { origin, from_task, ts });
                            sched.notify(to_task);
                        }
                        Frame::Barrier { to_task, epoch } => {
                            // Punctuation, like Watermark: alignment counts
                            // stay identical to a single-process run.
                            let Some(inbox) = inboxes.get(to_task).and_then(|i| i.as_ref()) else {
                                continue;
                            };
                            inbox.push(Message::Barrier { epoch });
                            sched.notify(to_task);
                        }
                        Frame::Heartbeat { epoch } => {
                            counters.last_epoch.fetch_max(epoch, Ordering::Relaxed);
                        }
                        Frame::SnapshotBlob { role, task, epoch, payload } => {
                            counters.last_epoch.fetch_max(epoch, Ordering::Relaxed);
                            if let Some(tx) = &blob_tx {
                                let _ = tx.send((role, task, epoch, payload));
                            }
                        }
                        Frame::SinkRow { node, tuple } => {
                            if let Some(tx) = &sink_tx {
                                let _ = tx.send((node, tuple));
                            }
                        }
                        Frame::Abort { error } => shared.raise(error),
                        Frame::Done { metrics, error } => {
                            let mut state = remote.lock().expect("remote state poisoned");
                            state.metrics.push(metrics);
                            if state.error.is_none() {
                                state.error = error;
                            }
                            clean = true;
                            break;
                        }
                        Frame::Goodbye => {
                            clean = true;
                            break;
                        }
                        Frame::Hello { .. } | Frame::Job { .. } | Frame::Readmit { .. } => {
                            shared.raise(SquallError::Runtime(format!(
                                "unexpected handshake frame from peer {peer} mid-run"
                            )));
                        }
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Heartbeat silence is the failure detector firing,
                    // not a codec problem: skip the raise and let the
                    // unclean path below report the typed loss.
                    let silent = matches!(&e, SquallError::Io(m) if m == codec::READ_TIMED_OUT);
                    if !silent {
                        shared.raise(e);
                    }
                    break;
                }
            }
        }
        if !clean {
            // The peer vanished mid-run: fail the run with the typed loss
            // (recovery plans re-admission from it) and synthesize the
            // punctuation its tasks owed us, so every local task
            // terminates instead of waiting forever.
            let last_epoch = counters.last_epoch.load(Ordering::Relaxed);
            shared.raise(SquallError::WorkerLost { addr: peer_label, last_epoch });
            for (task, count) in eos_owed {
                if let Some(inbox) = inboxes.get(task).and_then(|i| i.as_ref()) {
                    for _ in 0..count {
                        inbox.push(Message::Eos);
                    }
                    sched.notify(task);
                }
            }
        }
        drop(sink_tx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::tuple;

    #[test]
    fn frames_roundtrip() {
        let frames = vec![
            Frame::Hello { peer: 3 },
            Frame::Job { payload: vec![1, 2, 3] },
            Frame::Data {
                to_task: 7,
                origin: 2,
                chunk: Chunk::from_tuples(&[tuple![1, "x"], tuple![2, "y"]]),
            },
            Frame::Eos { to_task: 9 },
            Frame::Watermark { to_task: 11, origin: 2, from_task: 3, ts: 12345 },
            Frame::Barrier { to_task: 5, epoch: 9 },
            Frame::Heartbeat { epoch: 17 },
            Frame::SnapshotBlob { role: 1, task: 3, epoch: 9, payload: vec![9, 8, 7] },
            Frame::Readmit { peer: 2, epoch: 4 },
            Frame::SinkRow { node: 4, tuple: tuple![42] },
            Frame::Abort {
                error: SquallError::MemoryOverflow { machine: 1, stored: 10, budget: 5 },
            },
            Frame::Goodbye,
        ];
        for f in frames {
            let encoded = f.encode();
            let decoded = Frame::decode(&encoded).unwrap();
            assert_eq!(format!("{f:?}"), format!("{decoded:?}"));
        }
    }

    #[test]
    fn done_frame_roundtrips_metrics() {
        let metrics = MetricsSnapshot {
            nodes: vec![NodeMetrics {
                node: 0,
                name: "join".into(),
                received: vec![1, 2, 3],
                sent: vec![4, 5, 6],
                emitted: vec![7, 8, 9],
            }],
            scheduler: SchedulerStats {
                workers: 2,
                steals: 3,
                yields: 4,
                blocked: 5,
                max_queue_depth: 6,
            },
        };
        let f =
            Frame::Done { metrics: metrics.clone(), error: Some(SquallError::Runtime("x".into())) };
        match Frame::decode(&f.encode()).unwrap() {
            Frame::Done { metrics: m, error } => {
                assert_eq!(m, metrics);
                assert_eq!(error, Some(SquallError::Runtime("x".into())));
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn placement_pins_spouts_and_splits_bolts() {
        // 2 spout nodes (1 task each), a join of 8, an agg of 3; 3 peers.
        let p = plan_placement(&[1, 1, 8, 3], &[true, true, false, false], 3);
        assert_eq!(&p.peer_of_task[..2], &[0, 0], "spouts on the coordinator");
        // Join tasks 0..8 → contiguous near-even ranges.
        assert_eq!(&p.peer_of_task[2..10], &[0, 0, 0, 1, 1, 1, 2, 2]);
        // Agg tasks 0..3 → one per peer.
        assert_eq!(&p.peer_of_task[10..], &[0, 1, 2]);
        assert_eq!(p.tasks_of(0) + p.tasks_of(1) + p.tasks_of(2), 13);
        // Single peer degenerates to everything-local.
        let solo = plan_placement(&[1, 8], &[true, false], 1);
        assert!(solo.peer_of_task.iter().all(|&p| p == 0));
    }

    #[test]
    fn describe_placement_is_readable() {
        let names = vec!["src-R".to_string(), "join".to_string()];
        let text = describe_placement(
            &names,
            &[1, 4],
            &[true, false],
            &["coordinator".to_string(), "127.0.0.1:9001".to_string()],
        );
        assert!(text.contains("src-R: task 0 @coordinator"), "{text}");
        assert!(text.contains("join: tasks 0-1 @coordinator, tasks 2-3 @127.0.0.1:9001"), "{text}");
    }

    #[test]
    fn handshake_helpers_time_out_instead_of_hanging() {
        // No peer ever connects: accept gives up at the deadline.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let deadline = Instant::now() + Duration::from_millis(50);
        assert!(matches!(accept_with_deadline(&listener, deadline), Err(SquallError::Io(_))));
        // A peer connects but never sends its first frame: the read
        // gives up too (and the error is typed, not a hang).
        let addr = listener.local_addr().unwrap();
        let _silent = TcpStream::connect(addr).unwrap();
        let stream = accept_with_deadline(&listener, Instant::now() + Duration::from_secs(1))
            .expect("connection pending");
        let deadline = Instant::now() + Duration::from_millis(50);
        assert!(read_frame_deadline(&stream, deadline).is_err());
        // And the timeout is cleared afterwards: a frame sent now reads
        // fine on the same stream.
        let mut dialer = TcpStream::connect(addr).unwrap();
        let accepted =
            accept_with_deadline(&listener, Instant::now() + Duration::from_secs(1)).unwrap();
        Frame::Hello { peer: 3 }.write_to(&mut dialer).unwrap();
        match read_frame_deadline(&accepted, Instant::now() + Duration::from_secs(1)) {
            Ok(Some((Frame::Hello { peer: 3 }, _))) => {}
            other => panic!("expected Hello, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_frames_preserve_link_order() {
        // Barriers and blobs ride the same FIFO stream as data, so
        // alignment across the wire sees them strictly after the sender's
        // earlier frames — exactly the Eos/Watermark ordering contract.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut dialer = TcpStream::connect(addr).unwrap();
        let accepted =
            accept_with_deadline(&listener, Instant::now() + Duration::from_secs(1)).unwrap();
        let sent = vec![
            Frame::Data { to_task: 1, origin: 0, chunk: Chunk::from_tuples(&[tuple![1]]) },
            Frame::Watermark { to_task: 1, origin: 0, from_task: 0, ts: 4 },
            Frame::Barrier { to_task: 1, epoch: 4 },
            Frame::Heartbeat { epoch: 4 },
            Frame::SnapshotBlob { role: 0, task: 1, epoch: 4, payload: vec![1, 2] },
            Frame::Goodbye,
        ];
        for f in &sent {
            f.write_to(&mut dialer).unwrap();
        }
        let mut r = BufReader::new(accepted);
        for f in &sent {
            let (got, _) = Frame::read_from(&mut r).unwrap().expect("frame");
            assert_eq!(format!("{got:?}"), format!("{f:?}"));
        }
    }

    #[test]
    fn egress_queue_gates_and_wakes() {
        let q = EgressQueue::new(2);
        assert!(!q.over_capacity());
        for _ in 0..3 {
            q.push(EgressItem::Frame(Frame::Goodbye));
        }
        assert!(q.over_capacity());
        assert!(q.register_waiter(7));
        let mut wake = Vec::new();
        // Popping back to capacity releases the waiter.
        assert!(q.pop_wait(Duration::from_millis(1), &mut wake).is_some());
        assert_eq!(wake, vec![7]);
        // Below capacity, registration declines.
        assert!(!q.register_waiter(7));
    }
}
