//! Per-task load accounting.
//!
//! The paper's evaluation quantities are all functions of per-task tuple
//! counts (§6, §7.3):
//!
//! * **load per machine** — tuples received by a task (Table 1);
//! * **skew degree** — max partition size ÷ average partition size;
//! * **replication factor** — a component's input tuples ÷ the tuples
//!   produced by its immediate upstream components (Table 2);
//! * **intermediate network factor** — Σ(task input+output) ÷ (query input
//!   + query output).
//!
//! Counters are atomics updated lock-free on the hot path and snapshotted
//! into plain data once a run finishes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::message::NodeId;

/// Live counters for one task.
#[derive(Debug, Default)]
pub struct TaskCounters {
    /// Data tuples received on the input channel.
    pub received: AtomicU64,
    /// Data tuple deliveries sent downstream (one per target task, so a
    /// broadcast of one tuple to 8 tasks counts 8 — this is what the wire
    /// would carry, and what replication measures).
    pub sent: AtomicU64,
    /// Tuples emitted by the task's user logic before routing (one per
    /// `emit` call).
    pub emitted: AtomicU64,
}

/// Live counters of the cooperative scheduler (one set per running
/// topology). These observe *scheduling* behaviour — queue pressure, work
/// distribution — rather than the paper's data-plane quantities, and are
/// what skew experiments watch to see the pool react to imbalance.
#[derive(Debug, Default)]
pub struct SchedCounters {
    /// Worker threads in the pool.
    pub workers: AtomicU64,
    /// Tasks taken from another worker's deque.
    pub steals: AtomicU64,
    /// Polls that ended because the task exhausted its cooperative budget
    /// (the task was still runnable and was re-queued).
    pub yields: AtomicU64,
    /// Polls that ended because a downstream inbox was over capacity (the
    /// backpressure-by-yield path: the task parked until the consumer
    /// drained).
    pub blocked: AtomicU64,
    /// Deepest any task inbox ever got, in messages.
    pub max_queue_depth: AtomicU64,
}

impl SchedCounters {
    pub fn snapshot(&self) -> SchedulerStats {
        SchedulerStats {
            workers: self.workers.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            yields: self.yields.load(Ordering::Relaxed),
            blocked: self.blocked.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
        }
    }
}

/// Frozen scheduler counters for one run. `steals`/`yields`/`blocked` are
/// scheduling artifacts and (unlike the per-task loads) not deterministic
/// across runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    pub workers: u64,
    pub steals: u64,
    pub yields: u64,
    pub blocked: u64,
    pub max_queue_depth: u64,
}

/// Live metrics registry shared by all tasks of a running topology.
#[derive(Debug)]
pub struct MetricsRegistry {
    /// `per_node[node][task]`.
    per_node: Vec<Vec<Arc<TaskCounters>>>,
    names: Vec<String>,
    sched: Arc<SchedCounters>,
}

impl MetricsRegistry {
    pub fn new(names: Vec<String>, parallelism: &[usize]) -> MetricsRegistry {
        let per_node = parallelism
            .iter()
            .map(|&p| (0..p).map(|_| Arc::new(TaskCounters::default())).collect())
            .collect();
        MetricsRegistry { per_node, names, sched: Arc::new(SchedCounters::default()) }
    }

    pub fn task(&self, node: NodeId, task: usize) -> Arc<TaskCounters> {
        Arc::clone(&self.per_node[node][task])
    }

    /// The scheduler's counter set (shared with the worker pool).
    pub fn sched(&self) -> Arc<SchedCounters> {
        Arc::clone(&self.sched)
    }

    /// Freeze the counters into a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            nodes: self
                .per_node
                .iter()
                .enumerate()
                .map(|(i, tasks)| NodeMetrics {
                    node: i,
                    name: self.names[i].clone(),
                    received: tasks.iter().map(|t| t.received.load(Ordering::Relaxed)).collect(),
                    sent: tasks.iter().map(|t| t.sent.load(Ordering::Relaxed)).collect(),
                    emitted: tasks.iter().map(|t| t.emitted.load(Ordering::Relaxed)).collect(),
                })
                .collect(),
            scheduler: self.sched.snapshot(),
        }
    }
}

/// Frozen per-task counts for one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMetrics {
    pub node: NodeId,
    pub name: String,
    pub received: Vec<u64>,
    pub sent: Vec<u64>,
    pub emitted: Vec<u64>,
}

impl NodeMetrics {
    /// Maximum load per machine (Table 1, "Maximum").
    pub fn max_load(&self) -> u64 {
        self.received.iter().copied().max().unwrap_or(0)
    }

    /// Average load per machine (Table 1, "Average").
    pub fn avg_load(&self) -> f64 {
        if self.received.is_empty() {
            0.0
        } else {
            self.total_received() as f64 / self.received.len() as f64
        }
    }

    /// Total tuples received by the component.
    pub fn total_received(&self) -> u64 {
        self.received.iter().sum()
    }

    /// Total tuples emitted by user logic.
    pub fn total_emitted(&self) -> u64 {
        self.emitted.iter().sum()
    }

    /// Total downstream deliveries.
    pub fn total_sent(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Skew degree: largest partition ÷ average partition (§6).
    pub fn skew_degree(&self) -> f64 {
        let avg = self.avg_load();
        if avg == 0.0 {
            1.0
        } else {
            self.max_load() as f64 / avg
        }
    }
}

/// All nodes' frozen metrics for one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub nodes: Vec<NodeMetrics>,
    /// Scheduler-side observations (worker pool, steals, yields, queue
    /// depth) — see [`SchedulerStats`].
    pub scheduler: SchedulerStats,
}

impl MetricsSnapshot {
    pub fn node(&self, id: NodeId) -> &NodeMetrics {
        &self.nodes[id]
    }

    /// Fold another snapshot of the *same topology* into this one. Used
    /// by the distributed coordinator: every peer snapshots the full
    /// topology with non-local task counters at zero, so an element-wise
    /// sum reconstructs exactly the counters a single-process run would
    /// have produced. Scheduler counters sum (each peer ran its own
    /// pool); queue depth takes the max.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        assert_eq!(self.nodes.len(), other.nodes.len(), "snapshots of different topologies");
        for (a, b) in self.nodes.iter_mut().zip(&other.nodes) {
            assert_eq!(a.received.len(), b.received.len(), "parallelism mismatch in merge");
            for (x, y) in a.received.iter_mut().zip(&b.received) {
                *x += y;
            }
            for (x, y) in a.sent.iter_mut().zip(&b.sent) {
                *x += y;
            }
            for (x, y) in a.emitted.iter_mut().zip(&b.emitted) {
                *x += y;
            }
        }
        self.scheduler.workers += other.scheduler.workers;
        self.scheduler.steals += other.scheduler.steals;
        self.scheduler.yields += other.scheduler.yields;
        self.scheduler.blocked += other.scheduler.blocked;
        self.scheduler.max_queue_depth =
            self.scheduler.max_queue_depth.max(other.scheduler.max_queue_depth);
    }

    pub fn by_name(&self, name: &str) -> Option<&NodeMetrics> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Replication factor of a component (§6): its input tuple count
    /// divided by the total tuples *emitted* by the given upstream nodes.
    pub fn replication_factor(&self, component: NodeId, upstream: &[NodeId]) -> f64 {
        let input = self.node(component).total_received() as f64;
        let produced: u64 = upstream.iter().map(|&u| self.node(u).total_emitted()).sum();
        if produced == 0 {
            0.0
        } else {
            input / produced as f64
        }
    }

    /// Intermediate network factor of a whole query (§6): the sum of every
    /// component task's input and output divided by (query input + query
    /// output). `sources` are the spout nodes, `sinks` the final nodes.
    pub fn intermediate_network_factor(&self, sources: &[NodeId], sinks: &[NodeId]) -> f64 {
        let all_io: u64 = self.nodes.iter().map(|n| n.total_received() + n.total_sent()).sum();
        let query_in: u64 = sources.iter().map(|&s| self.node(s).total_emitted()).sum();
        let query_out: u64 = sinks.iter().map(|&s| self.node(s).total_emitted()).sum();
        let denom = query_in + query_out;
        if denom == 0 {
            0.0
        } else {
            all_io as f64 / denom as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(received: Vec<Vec<u64>>, emitted: Vec<Vec<u64>>) -> MetricsSnapshot {
        MetricsSnapshot {
            nodes: received
                .into_iter()
                .zip(emitted)
                .enumerate()
                .map(|(i, (r, e))| NodeMetrics {
                    node: i,
                    name: format!("n{i}"),
                    sent: e.clone(),
                    received: r,
                    emitted: e,
                })
                .collect(),
            scheduler: SchedulerStats::default(),
        }
    }

    #[test]
    fn max_avg_and_skew_degree() {
        let s = snap(vec![vec![10, 20, 30, 40]], vec![vec![0, 0, 0, 0]]);
        let n = s.node(0);
        assert_eq!(n.max_load(), 40);
        assert_eq!(n.avg_load(), 25.0);
        assert_eq!(n.skew_degree(), 1.6);
    }

    #[test]
    fn replication_factor_matches_definition() {
        // Upstream emits 100 tuples; joiner receives 130 (broadcast overlap)
        // → replication factor 1.3.
        let s = snap(vec![vec![0], vec![130]], vec![vec![100], vec![0]]);
        assert!((s.replication_factor(1, &[0]) - 1.3).abs() < 1e-12);
    }

    #[test]
    fn perfect_balance_has_skew_degree_one() {
        let s = snap(vec![vec![5, 5, 5]], vec![vec![0, 0, 0]]);
        assert_eq!(s.node(0).skew_degree(), 1.0);
    }

    #[test]
    fn registry_snapshot_roundtrip() {
        let reg = MetricsRegistry::new(vec!["a".into(), "b".into()], &[2, 1]);
        reg.task(0, 1).received.fetch_add(7, Ordering::Relaxed);
        reg.task(1, 0).emitted.fetch_add(3, Ordering::Relaxed);
        reg.sched().steals.fetch_add(2, Ordering::Relaxed);
        reg.sched().max_queue_depth.fetch_max(9, Ordering::Relaxed);
        let s = reg.snapshot();
        assert_eq!(s.node(0).received, vec![0, 7]);
        assert_eq!(s.node(1).emitted, vec![3]);
        assert_eq!(s.by_name("b").unwrap().node, 1);
        assert!(s.by_name("zzz").is_none());
        assert_eq!(s.scheduler.steals, 2);
        assert_eq!(s.scheduler.max_queue_depth, 9);
    }

    #[test]
    fn intermediate_network_factor() {
        // Source emits 100 (sent 100); joiner receives 100, emits/sends 10;
        // sink receives 10, emits 10.
        let s = MetricsSnapshot {
            nodes: vec![
                NodeMetrics {
                    node: 0,
                    name: "src".into(),
                    received: vec![0],
                    sent: vec![100],
                    emitted: vec![100],
                },
                NodeMetrics {
                    node: 1,
                    name: "join".into(),
                    received: vec![100],
                    sent: vec![10],
                    emitted: vec![10],
                },
                NodeMetrics {
                    node: 2,
                    name: "sink".into(),
                    received: vec![10],
                    sent: vec![0],
                    emitted: vec![10],
                },
            ],
            scheduler: SchedulerStats::default(),
        };
        // all_io = (0+100) + (100+10) + (10+0) = 220; denom = 100 + 10.
        assert!((s.intermediate_network_factor(&[0], &[2]) - 2.0).abs() < 1e-12);
    }
}
