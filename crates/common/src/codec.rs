//! Hand-rolled wire codec for the TCP transport.
//!
//! The distributed runtime ships [`Tuple`]s between peer processes as
//! **length-prefixed frames**: a little-endian `u32` payload length
//! followed by the payload bytes. The payload encodings here are
//! deliberately boring — fixed-width little-endian integers, `u32`-length
//! strings, one tag byte per enum variant — so that a frame produced by
//! any build of this workspace decodes identically in any other. No
//! registry dependencies, no reflection: the codec is the contract.
//!
//! Layering: this module knows [`Value`], [`Tuple`] and [`SquallError`]
//! (the common types every message is made of). The runtime's transport
//! layer composes these primitives into its own frame vocabulary
//! (`Data` / `Eos` / `Abort` / …).

use std::io::{Read, Write};
use std::sync::Arc;

use crate::array::{Array, Bitmap, Chunk, PrimitiveArray, Utf8Array};
use crate::error::{Result, SquallError};
use crate::tuple::Tuple;
use crate::value::{Date, Value};

/// Upper bound on one frame's payload. A length prefix beyond this is
/// treated as stream corruption and fails fast instead of attempting a
/// multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

// ---------------------------------------------------------------------
// Primitive writers (append to a byte buffer)
// ---------------------------------------------------------------------

pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i32(buf: &mut Vec<u8>, v: i32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

pub fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

// ---------------------------------------------------------------------
// Primitive reader
// ---------------------------------------------------------------------

/// A cursor over an encoded payload. Every accessor bounds-checks and
/// returns [`SquallError::Codec`] on a short or malformed buffer, so a
/// corrupted frame surfaces as a typed error instead of a panic.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

// `len` reads a length prefix off the wire; it is not a container size.
#[allow(clippy::len_without_is_empty)]
impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn need(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(SquallError::Codec(format!(
                "short buffer: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.need(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool> {
        Ok(self.u8()? != 0)
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.need(4)?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.need(8)?.try_into().expect("8 bytes")))
    }

    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.need(8)?.try_into().expect("8 bytes")))
    }

    pub fn i32(&mut self) -> Result<i32> {
        Ok(i32::from_le_bytes(self.need(4)?.try_into().expect("4 bytes")))
    }

    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> Result<String> {
        Ok(self.str_ref()?.to_string())
    }

    /// Borrowed string view — validates in place, no allocation (the
    /// per-tuple hot path builds `Arc<str>` straight from this).
    pub fn str_ref(&mut self) -> Result<&'a str> {
        let n = self.u32()? as usize;
        let raw = self.need(n)?;
        std::str::from_utf8(raw).map_err(|_| SquallError::Codec("invalid utf-8 in string".into()))
    }

    pub fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.need(n)?.to_vec())
    }

    /// Length prefix for a repeated section. Every encoded element costs
    /// at least one byte, so a count beyond the bytes actually remaining
    /// is corruption — rejected *before* any `with_capacity` touches it.
    pub fn len(&mut self) -> Result<usize> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(SquallError::Codec(format!(
                "implausible element count {n} ({} bytes remain)",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail unless the whole payload was consumed (trailing garbage means
    /// the two sides disagree on the encoding).
    pub fn finish(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(SquallError::Codec(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Value / Tuple
// ---------------------------------------------------------------------

const VAL_NULL: u8 = 0;
const VAL_INT: u8 = 1;
const VAL_FLOAT: u8 = 2;
const VAL_STR: u8 = 3;
const VAL_DATE: u8 = 4;

pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(buf, VAL_NULL),
        Value::Int(i) => {
            put_u8(buf, VAL_INT);
            put_i64(buf, *i);
        }
        Value::Float(f) => {
            put_u8(buf, VAL_FLOAT);
            put_f64(buf, *f);
        }
        Value::Str(s) => {
            put_u8(buf, VAL_STR);
            put_str(buf, s);
        }
        Value::Date(d) => {
            put_u8(buf, VAL_DATE);
            put_i32(buf, d.0);
        }
    }
}

pub fn get_value(r: &mut Reader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        VAL_NULL => Value::Null,
        VAL_INT => Value::Int(r.i64()?),
        VAL_FLOAT => Value::Float(r.f64()?),
        VAL_STR => Value::Str(Arc::from(r.str_ref()?)),
        VAL_DATE => Value::Date(Date(r.i32()?)),
        tag => return Err(SquallError::Codec(format!("unknown value tag {tag}"))),
    })
}

pub fn put_tuple(buf: &mut Vec<u8>, t: &Tuple) {
    put_u32(buf, t.arity() as u32);
    for v in t.values() {
        put_value(buf, v);
    }
}

pub fn get_tuple(r: &mut Reader<'_>) -> Result<Tuple> {
    let n = r.len()?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(get_value(r)?);
    }
    Ok(Tuple::new(values))
}

pub fn put_tuples(buf: &mut Vec<u8>, ts: &[Tuple]) {
    put_u32(buf, ts.len() as u32);
    for t in ts {
        put_tuple(buf, t);
    }
}

pub fn get_tuples(r: &mut Reader<'_>) -> Result<Vec<Tuple>> {
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_tuple(r)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Columnar chunks
// ---------------------------------------------------------------------

// Column type tags (match Value wire tags where they overlap, plus MIXED).
const COL_NULL: u8 = 0;
const COL_INT: u8 = 1;
const COL_FLOAT: u8 = 2;
const COL_STR: u8 = 3;
const COL_DATE: u8 = 4;
const COL_MIXED: u8 = 5;

// Per-column payload encodings.
const ENC_PLAIN: u8 = 0;
const ENC_DICT: u8 = 1;

/// Minimum rows before dictionary encoding is even considered: tiny chunks
/// never amortize the dictionary header.
const DICT_MIN_ROWS: usize = 64;

/// Encode one [`Chunk`] in columnar wire layout:
///
/// ```text
/// u32 rows · u32 n_cols · column*
/// column := u8 type · u8 encoding · u8 has_validity · u32 blob_len · blob
/// blob   := [validity words] payload
/// ```
///
/// Fixed-width columns ship their payload as one contiguous little-endian
/// slab (no per-value tag bytes — the big win over `put_tuples`); `Int`
/// columns with few distinct values (hot Zipf keys) switch to dictionary
/// encoding (`u32 n_dict · i64 dict[] · u8 code_width · code[]`) when that
/// is strictly smaller. The `blob_len` prefix lets a reader skip or
/// validate each column independently.
pub fn put_chunk(buf: &mut Vec<u8>, chunk: &Chunk) {
    put_u32(buf, chunk.n_rows() as u32);
    put_u32(buf, chunk.n_cols() as u32);
    for col in chunk.columns() {
        let (tag, encoding, validity) = match col {
            Array::Null(_) => (COL_NULL, ENC_PLAIN, None),
            Array::Int(a) => {
                let enc = if int_dict_wins(a.values()) { ENC_DICT } else { ENC_PLAIN };
                (COL_INT, enc, a.validity())
            }
            Array::Float(a) => (COL_FLOAT, ENC_PLAIN, a.validity()),
            Array::Str(a) => (COL_STR, ENC_PLAIN, a.validity()),
            Array::Date(a) => (COL_DATE, ENC_PLAIN, a.validity()),
            Array::Mixed(_) => (COL_MIXED, ENC_PLAIN, None),
        };
        put_u8(buf, tag);
        put_u8(buf, encoding);
        put_u8(buf, validity.is_some() as u8);
        let len_at = buf.len();
        put_u32(buf, 0); // blob_len, backpatched below
        if let Some(bits) = validity {
            for w in bits.words() {
                put_u64(buf, *w);
            }
        }
        match col {
            Array::Null(_) => {}
            Array::Int(a) if encoding == ENC_DICT => put_int_dict(buf, a.values()),
            Array::Int(a) => {
                for v in a.values() {
                    put_i64(buf, *v);
                }
            }
            Array::Float(a) => {
                for v in a.values() {
                    put_f64(buf, *v);
                }
            }
            Array::Date(a) => {
                for v in a.values() {
                    put_i32(buf, *v);
                }
            }
            Array::Str(a) => {
                put_bytes(buf, a.bytes());
                // offsets[0] is always 0; ship the rows trailing end-offsets.
                for off in &a.offsets()[1..] {
                    put_u32(buf, *off);
                }
            }
            Array::Mixed(vals) => {
                for v in vals {
                    put_value(buf, v);
                }
            }
        }
        let blob_len = (buf.len() - len_at - 4) as u32;
        buf[len_at..len_at + 4].copy_from_slice(&blob_len.to_le_bytes());
    }
}

/// Whether dictionary encoding shrinks this integer payload. Counts
/// distinct values (bailing out early once a dictionary could no longer
/// win) and compares exact encoded sizes.
fn int_dict_wins(values: &[i64]) -> bool {
    let rows = values.len();
    if rows < DICT_MIN_ROWS {
        return false;
    }
    let max_useful = rows / 2; // beyond this even 4-byte codes lose
    let mut distinct: crate::FxHashSet<i64> = crate::FxHashSet::default();
    for v in values {
        distinct.insert(*v);
        if distinct.len() > max_useful {
            return false;
        }
    }
    let n = distinct.len();
    let width = code_width(n);
    // dict header: u32 count + entries + u8 width; plain: 8 bytes/row.
    4 + n * 8 + 1 + rows * width < rows * 8
}

fn code_width(n_dict: usize) -> usize {
    if n_dict <= u8::MAX as usize + 1 {
        1
    } else if n_dict <= u16::MAX as usize + 1 {
        2
    } else {
        4
    }
}

fn put_int_dict(buf: &mut Vec<u8>, values: &[i64]) {
    let mut dict: Vec<i64> = Vec::new();
    let mut codes: Vec<u32> = Vec::with_capacity(values.len());
    let mut index: crate::FxHashMap<i64, u32> = crate::FxHashMap::default();
    for v in values {
        let code = *index.entry(*v).or_insert_with(|| {
            dict.push(*v);
            (dict.len() - 1) as u32
        });
        codes.push(code);
    }
    put_u32(buf, dict.len() as u32);
    for v in &dict {
        put_i64(buf, *v);
    }
    let width = code_width(dict.len());
    put_u8(buf, width as u8);
    match width {
        1 => {
            for c in &codes {
                put_u8(buf, *c as u8);
            }
        }
        2 => {
            for c in &codes {
                buf.extend_from_slice(&(*c as u16).to_le_bytes());
            }
        }
        _ => {
            for c in &codes {
                put_u32(buf, *c);
            }
        }
    }
}

/// Decode one [`Chunk`] written by [`put_chunk`], validating each column's
/// declared blob length.
pub fn get_chunk(r: &mut Reader<'_>) -> Result<Chunk> {
    let rows = r.u32()? as usize;
    let n_cols = r.len()?; // plausibility-checked: ≥3 bytes per column header
    let mut columns = Vec::with_capacity(n_cols);
    for c in 0..n_cols {
        let tag = r.u8()?;
        let encoding = r.u8()?;
        let has_validity = r.bool()?;
        let blob_len = r.u32()? as usize;
        if blob_len > r.remaining() {
            return Err(SquallError::Codec(format!(
                "column {c} blob length {blob_len} exceeds {} remaining",
                r.remaining()
            )));
        }
        let before = r.remaining();
        let validity = if has_validity {
            let n_words = rows.div_ceil(64);
            let mut words = Vec::with_capacity(n_words);
            for _ in 0..n_words {
                words.push(r.u64()?);
            }
            Some(Bitmap::from_words(words, rows))
        } else {
            None
        };
        let col = match (tag, encoding) {
            (COL_NULL, ENC_PLAIN) => Array::Null(rows),
            (COL_INT, ENC_PLAIN) => {
                Array::Int(PrimitiveArray::with_validity(get_i64_slab(r, rows)?, validity))
            }
            (COL_INT, ENC_DICT) => {
                Array::Int(PrimitiveArray::with_validity(get_int_dict(r, rows)?, validity))
            }
            (COL_FLOAT, ENC_PLAIN) => {
                let mut vals = Vec::with_capacity(plausible(r, rows, 8)?);
                for _ in 0..rows {
                    vals.push(r.f64()?);
                }
                Array::Float(PrimitiveArray::with_validity(vals, validity))
            }
            (COL_DATE, ENC_PLAIN) => {
                let mut vals = Vec::with_capacity(plausible(r, rows, 4)?);
                for _ in 0..rows {
                    vals.push(r.i32()?);
                }
                Array::Date(PrimitiveArray::with_validity(vals, validity))
            }
            (COL_STR, ENC_PLAIN) => {
                let bytes = r.bytes()?;
                let mut offsets = Vec::with_capacity(plausible(r, rows, 4)? + 1);
                offsets.push(0u32);
                for _ in 0..rows {
                    let off = r.u32()?;
                    if (off as usize) > bytes.len() || off < *offsets.last().unwrap() {
                        return Err(SquallError::Codec(format!(
                            "column {c} has non-monotone string offset {off}"
                        )));
                    }
                    offsets.push(off);
                }
                if *offsets.last().unwrap() as usize != bytes.len() {
                    return Err(SquallError::Codec(format!(
                        "column {c} string offsets do not cover payload"
                    )));
                }
                std::str::from_utf8(&bytes)
                    .map_err(|_| SquallError::Codec("invalid utf-8 in string column".into()))?;
                Array::Str(Utf8Array::from_parts(offsets, bytes, validity))
            }
            (COL_MIXED, ENC_PLAIN) => {
                let mut vals = Vec::with_capacity(plausible(r, rows, 1)?);
                for _ in 0..rows {
                    vals.push(get_value(r)?);
                }
                Array::Mixed(vals)
            }
            (t, e) => {
                return Err(SquallError::Codec(format!("unknown column tag {t} / encoding {e}")))
            }
        };
        let consumed = before - r.remaining();
        if consumed != blob_len {
            return Err(SquallError::Codec(format!(
                "column {c} blob declared {blob_len} bytes but decoded {consumed}"
            )));
        }
        columns.push(col);
    }
    Ok(Chunk::new(columns, rows))
}

/// Reject a row count whose minimum encoding exceeds the remaining bytes
/// *before* any allocation sized from it.
fn plausible(r: &Reader<'_>, rows: usize, min_bytes: usize) -> Result<usize> {
    if rows.saturating_mul(min_bytes) > r.remaining() {
        return Err(SquallError::Codec(format!(
            "implausible column row count {rows} ({} bytes remain)",
            r.remaining()
        )));
    }
    Ok(rows)
}

fn get_i64_slab(r: &mut Reader<'_>, rows: usize) -> Result<Vec<i64>> {
    let mut vals = Vec::with_capacity(plausible(r, rows, 8)?);
    for _ in 0..rows {
        vals.push(r.i64()?);
    }
    Ok(vals)
}

fn get_int_dict(r: &mut Reader<'_>, rows: usize) -> Result<Vec<i64>> {
    let n_dict = r.len()?;
    let mut dict = Vec::with_capacity(n_dict);
    for _ in 0..n_dict {
        dict.push(r.i64()?);
    }
    let width = r.u8()? as usize;
    if !matches!(width, 1 | 2 | 4) {
        return Err(SquallError::Codec(format!("bad dictionary code width {width}")));
    }
    let mut vals = Vec::with_capacity(plausible(r, rows, width)?);
    for _ in 0..rows {
        let code = match width {
            1 => r.u8()? as usize,
            2 => u16::from_le_bytes(r.need(2)?.try_into().expect("2 bytes")) as usize,
            _ => r.u32()? as usize,
        };
        let v = dict.get(code).ok_or_else(|| {
            SquallError::Codec(format!("dictionary code {code} out of range {n_dict}"))
        })?;
        vals.push(*v);
    }
    Ok(vals)
}

// ---------------------------------------------------------------------
// Errors on the wire
// ---------------------------------------------------------------------

// Variants that must survive a process boundary exactly (the run-abort
// protocol forwards the failing peer's error to the coordinator, and
// `MemoryOverflow` semantics are part of the paper's methodology). Less
// structured variants round-trip as their display text.
const ERR_MEMORY_OVERFLOW: u8 = 0;
const ERR_RUNTIME: u8 = 1;
const ERR_INVALID_PLAN: u8 = 2;
const ERR_PARSE: u8 = 3;
const ERR_UNKNOWN_COLUMN: u8 = 4;
const ERR_UNKNOWN_RELATION: u8 = 5;
const ERR_INVALID_PARTITIONING: u8 = 6;
const ERR_IO: u8 = 7;
const ERR_CODEC: u8 = 8;
const ERR_OTHER: u8 = 9;
const ERR_WORKER_LOST: u8 = 10;

pub fn put_error(buf: &mut Vec<u8>, e: &SquallError) {
    match e {
        SquallError::MemoryOverflow { machine, stored, budget } => {
            put_u8(buf, ERR_MEMORY_OVERFLOW);
            put_u64(buf, *machine as u64);
            put_u64(buf, *stored as u64);
            put_u64(buf, *budget as u64);
        }
        SquallError::Runtime(m) => {
            put_u8(buf, ERR_RUNTIME);
            put_str(buf, m);
        }
        SquallError::InvalidPlan(m) => {
            put_u8(buf, ERR_INVALID_PLAN);
            put_str(buf, m);
        }
        SquallError::Parse(m) => {
            put_u8(buf, ERR_PARSE);
            put_str(buf, m);
        }
        SquallError::UnknownColumn(m) => {
            put_u8(buf, ERR_UNKNOWN_COLUMN);
            put_str(buf, m);
        }
        SquallError::UnknownRelation(m) => {
            put_u8(buf, ERR_UNKNOWN_RELATION);
            put_str(buf, m);
        }
        SquallError::InvalidPartitioning(m) => {
            put_u8(buf, ERR_INVALID_PARTITIONING);
            put_str(buf, m);
        }
        SquallError::Io(m) => {
            put_u8(buf, ERR_IO);
            put_str(buf, m);
        }
        SquallError::Codec(m) => {
            put_u8(buf, ERR_CODEC);
            put_str(buf, m);
        }
        SquallError::WorkerLost { addr, last_epoch } => {
            put_u8(buf, ERR_WORKER_LOST);
            put_str(buf, addr);
            put_u64(buf, *last_epoch);
        }
        other => {
            put_u8(buf, ERR_OTHER);
            put_str(buf, &other.to_string());
        }
    }
}

pub fn get_error(r: &mut Reader<'_>) -> Result<SquallError> {
    Ok(match r.u8()? {
        ERR_MEMORY_OVERFLOW => SquallError::MemoryOverflow {
            machine: r.u64()? as usize,
            stored: r.u64()? as usize,
            budget: r.u64()? as usize,
        },
        ERR_RUNTIME => SquallError::Runtime(r.str()?),
        ERR_INVALID_PLAN => SquallError::InvalidPlan(r.str()?),
        ERR_PARSE => SquallError::Parse(r.str()?),
        ERR_UNKNOWN_COLUMN => SquallError::UnknownColumn(r.str()?),
        ERR_UNKNOWN_RELATION => SquallError::UnknownRelation(r.str()?),
        ERR_INVALID_PARTITIONING => SquallError::InvalidPartitioning(r.str()?),
        ERR_IO => SquallError::Io(r.str()?),
        ERR_CODEC => SquallError::Codec(r.str()?),
        ERR_OTHER => SquallError::Runtime(r.str()?),
        ERR_WORKER_LOST => SquallError::WorkerLost { addr: r.str()?, last_epoch: r.u64()? },
        tag => return Err(SquallError::Codec(format!("unknown error tag {tag}"))),
    })
}

// ---------------------------------------------------------------------
// Frame IO
// ---------------------------------------------------------------------

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(SquallError::Codec(format!("frame of {} bytes exceeds cap", payload.len())));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Marker text produced by [`read_frame`] when a socket read timeout
/// (`SO_RCVTIMEO`) fires — the heartbeat watchdog's silence signal.
pub const READ_TIMED_OUT: &str = "frame read timed out (peer silent)";

/// Read one length-prefixed frame. `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed the stream); a mid-frame EOF is an error. A
/// socket read timeout surfaces as `Io(READ_TIMED_OUT)` so a heartbeat
/// watchdog can tell silence apart from a closed stream.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(SquallError::Codec("EOF inside frame length prefix".into()));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(SquallError::Io(READ_TIMED_OUT.into()))
            }
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(SquallError::Codec(format!("frame length {len} exceeds cap")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| SquallError::Codec(format!("EOF inside frame payload: {e}")))?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn value_roundtrip_covers_every_variant() {
        let values = vec![
            Value::Null,
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(3.25),
            Value::Float(f64::NAN),
            Value::str("hello wire"),
            Value::str(""),
            Value::Date(Date::parse("1996-07-28").unwrap()),
        ];
        let mut buf = Vec::new();
        for v in &values {
            put_value(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for v in &values {
            let got = get_value(&mut r).unwrap();
            // NaN compares equal under Value's total order semantics.
            assert_eq!(&got, v, "{v:?}");
        }
        r.finish().unwrap();
    }

    #[test]
    fn tuple_batches_roundtrip() {
        let ts = vec![tuple![1, "a", 2.5], tuple![], tuple![Value::Null, 7]];
        let mut buf = Vec::new();
        put_tuples(&mut buf, &ts);
        let mut r = Reader::new(&buf);
        assert_eq!(get_tuples(&mut r).unwrap(), ts);
        r.finish().unwrap();
    }

    #[test]
    fn chunk_roundtrip_all_column_kinds() {
        let ts = vec![
            tuple![1, "alpha", 2.5, Value::Null, Value::Date(Date::parse("2001-09-09").unwrap())],
            tuple![2, Value::Null, f64::NAN, Value::Null, Value::Null],
            tuple![Value::Null, "", 0.0, Value::Null, Value::Date(Date(0))],
        ];
        let chunk = Chunk::from_tuples(&ts);
        let mut buf = Vec::new();
        put_chunk(&mut buf, &chunk);
        let mut r = Reader::new(&buf);
        let back = get_chunk(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.to_tuples(), ts);
    }

    #[test]
    fn chunk_roundtrip_mixed_and_empty() {
        // Mixed column (Int/Float conflict) and a zero-row chunk.
        let ts = vec![tuple![3, "x"], tuple![3.0, "y"]];
        let chunk = Chunk::from_tuples(&ts);
        let mut buf = Vec::new();
        put_chunk(&mut buf, &chunk);
        let back = get_chunk(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back.to_tuples(), ts);

        let mut buf = Vec::new();
        put_chunk(&mut buf, &Chunk::empty());
        let mut r = Reader::new(&buf);
        assert_eq!(get_chunk(&mut r).unwrap(), Chunk::empty());
        r.finish().unwrap();
    }

    #[test]
    fn chunk_dictionary_encoding_kicks_in_and_roundtrips() {
        // 256 rows over 4 distinct keys: dictionary must win and shrink the
        // payload well below 8 bytes/row.
        let ts: Vec<Tuple> = (0..256).map(|i| tuple![(i % 4) as i64]).collect();
        let chunk = Chunk::from_tuples(&ts);
        let mut buf = Vec::new();
        put_chunk(&mut buf, &chunk);
        assert!(
            buf.len() < 256 * 8 / 2,
            "dictionary encoding should compress hot keys, got {} bytes",
            buf.len()
        );
        let back = get_chunk(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back.to_tuples(), ts);
    }

    #[test]
    fn chunk_smaller_than_row_encoding_for_int_tuples() {
        let ts: Vec<Tuple> = (0..512).map(|i| tuple![i as i64, (i * 7) as i64]).collect();
        let chunk = Chunk::from_tuples(&ts);
        let mut columnar = Vec::new();
        put_chunk(&mut columnar, &chunk);
        let mut rowwise = Vec::new();
        put_tuples(&mut rowwise, &ts);
        assert!(
            columnar.len() < rowwise.len(),
            "columnar {} bytes should beat row-wise {} bytes",
            columnar.len(),
            rowwise.len()
        );
    }

    #[test]
    fn chunk_corrupt_blob_length_rejected() {
        let ts = vec![tuple![1, 2], tuple![3, 4]];
        let mut buf = Vec::new();
        put_chunk(&mut buf, &Chunk::from_tuples(&ts));
        // Flip the first column's blob_len (offset: rows u32 + cols u32 +
        // tag/enc/validity bytes = 11).
        buf[11] ^= 0x04;
        assert!(matches!(get_chunk(&mut Reader::new(&buf)), Err(SquallError::Codec(_))));
    }

    #[test]
    fn error_roundtrip_preserves_memory_overflow_exactly() {
        let e = SquallError::MemoryOverflow { machine: 3, stored: 1001, budget: 1000 };
        let mut buf = Vec::new();
        put_error(&mut buf, &e);
        let mut r = Reader::new(&buf);
        assert_eq!(get_error(&mut r).unwrap(), e);

        let e2 = SquallError::Runtime("task panicked".into());
        let mut buf = Vec::new();
        put_error(&mut buf, &e2);
        assert_eq!(get_error(&mut Reader::new(&buf)).unwrap(), e2);
    }

    #[test]
    fn frame_io_roundtrip_and_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abc").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"abc");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn torn_frame_is_an_error_not_a_hang() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef").unwrap();
        wire.truncate(wire.len() - 2); // cut inside the payload
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(read_frame(&mut cursor), Err(SquallError::Codec(_))));
        // Corrupt length prefix beyond the cap.
        let mut wire = (u32::MAX).to_le_bytes().to_vec();
        wire.extend_from_slice(b"xx");
        assert!(matches!(read_frame(&mut std::io::Cursor::new(wire)), Err(SquallError::Codec(_))));
    }

    #[test]
    fn corrupt_element_count_rejected_before_allocation() {
        // A 12-byte payload claiming 268M tuples: every element costs at
        // least one byte, so the count must fail immediately (no
        // multi-gigabyte Vec::with_capacity).
        let mut buf = Vec::new();
        put_u32(&mut buf, 268_435_455);
        buf.extend_from_slice(&[0u8; 8]);
        let mut r = Reader::new(&buf);
        assert!(matches!(get_tuples(&mut r), Err(SquallError::Codec(_))));
    }

    #[test]
    fn short_buffer_is_typed_error() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 5);
        let mut r = Reader::new(&buf[..4]);
        assert!(matches!(r.u64(), Err(SquallError::Codec(_))));
    }
}
