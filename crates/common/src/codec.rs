//! Hand-rolled wire codec for the TCP transport.
//!
//! The distributed runtime ships [`Tuple`]s between peer processes as
//! **length-prefixed frames**: a little-endian `u32` payload length
//! followed by the payload bytes. The payload encodings here are
//! deliberately boring — fixed-width little-endian integers, `u32`-length
//! strings, one tag byte per enum variant — so that a frame produced by
//! any build of this workspace decodes identically in any other. No
//! registry dependencies, no reflection: the codec is the contract.
//!
//! Layering: this module knows [`Value`], [`Tuple`] and [`SquallError`]
//! (the common types every message is made of). The runtime's transport
//! layer composes these primitives into its own frame vocabulary
//! (`Data` / `Eos` / `Abort` / …).

use std::io::{Read, Write};
use std::sync::Arc;

use crate::error::{Result, SquallError};
use crate::tuple::Tuple;
use crate::value::{Date, Value};

/// Upper bound on one frame's payload. A length prefix beyond this is
/// treated as stream corruption and fails fast instead of attempting a
/// multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

// ---------------------------------------------------------------------
// Primitive writers (append to a byte buffer)
// ---------------------------------------------------------------------

pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i32(buf: &mut Vec<u8>, v: i32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

pub fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

// ---------------------------------------------------------------------
// Primitive reader
// ---------------------------------------------------------------------

/// A cursor over an encoded payload. Every accessor bounds-checks and
/// returns [`SquallError::Codec`] on a short or malformed buffer, so a
/// corrupted frame surfaces as a typed error instead of a panic.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

// `len` reads a length prefix off the wire; it is not a container size.
#[allow(clippy::len_without_is_empty)]
impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn need(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(SquallError::Codec(format!(
                "short buffer: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.need(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool> {
        Ok(self.u8()? != 0)
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.need(4)?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.need(8)?.try_into().expect("8 bytes")))
    }

    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.need(8)?.try_into().expect("8 bytes")))
    }

    pub fn i32(&mut self) -> Result<i32> {
        Ok(i32::from_le_bytes(self.need(4)?.try_into().expect("4 bytes")))
    }

    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> Result<String> {
        Ok(self.str_ref()?.to_string())
    }

    /// Borrowed string view — validates in place, no allocation (the
    /// per-tuple hot path builds `Arc<str>` straight from this).
    pub fn str_ref(&mut self) -> Result<&'a str> {
        let n = self.u32()? as usize;
        let raw = self.need(n)?;
        std::str::from_utf8(raw).map_err(|_| SquallError::Codec("invalid utf-8 in string".into()))
    }

    pub fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.need(n)?.to_vec())
    }

    /// Length prefix for a repeated section. Every encoded element costs
    /// at least one byte, so a count beyond the bytes actually remaining
    /// is corruption — rejected *before* any `with_capacity` touches it.
    pub fn len(&mut self) -> Result<usize> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(SquallError::Codec(format!(
                "implausible element count {n} ({} bytes remain)",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail unless the whole payload was consumed (trailing garbage means
    /// the two sides disagree on the encoding).
    pub fn finish(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(SquallError::Codec(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Value / Tuple
// ---------------------------------------------------------------------

const VAL_NULL: u8 = 0;
const VAL_INT: u8 = 1;
const VAL_FLOAT: u8 = 2;
const VAL_STR: u8 = 3;
const VAL_DATE: u8 = 4;

pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(buf, VAL_NULL),
        Value::Int(i) => {
            put_u8(buf, VAL_INT);
            put_i64(buf, *i);
        }
        Value::Float(f) => {
            put_u8(buf, VAL_FLOAT);
            put_f64(buf, *f);
        }
        Value::Str(s) => {
            put_u8(buf, VAL_STR);
            put_str(buf, s);
        }
        Value::Date(d) => {
            put_u8(buf, VAL_DATE);
            put_i32(buf, d.0);
        }
    }
}

pub fn get_value(r: &mut Reader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        VAL_NULL => Value::Null,
        VAL_INT => Value::Int(r.i64()?),
        VAL_FLOAT => Value::Float(r.f64()?),
        VAL_STR => Value::Str(Arc::from(r.str_ref()?)),
        VAL_DATE => Value::Date(Date(r.i32()?)),
        tag => return Err(SquallError::Codec(format!("unknown value tag {tag}"))),
    })
}

pub fn put_tuple(buf: &mut Vec<u8>, t: &Tuple) {
    put_u32(buf, t.arity() as u32);
    for v in t.values() {
        put_value(buf, v);
    }
}

pub fn get_tuple(r: &mut Reader<'_>) -> Result<Tuple> {
    let n = r.len()?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(get_value(r)?);
    }
    Ok(Tuple::new(values))
}

pub fn put_tuples(buf: &mut Vec<u8>, ts: &[Tuple]) {
    put_u32(buf, ts.len() as u32);
    for t in ts {
        put_tuple(buf, t);
    }
}

pub fn get_tuples(r: &mut Reader<'_>) -> Result<Vec<Tuple>> {
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_tuple(r)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Errors on the wire
// ---------------------------------------------------------------------

// Variants that must survive a process boundary exactly (the run-abort
// protocol forwards the failing peer's error to the coordinator, and
// `MemoryOverflow` semantics are part of the paper's methodology). Less
// structured variants round-trip as their display text.
const ERR_MEMORY_OVERFLOW: u8 = 0;
const ERR_RUNTIME: u8 = 1;
const ERR_INVALID_PLAN: u8 = 2;
const ERR_PARSE: u8 = 3;
const ERR_UNKNOWN_COLUMN: u8 = 4;
const ERR_UNKNOWN_RELATION: u8 = 5;
const ERR_INVALID_PARTITIONING: u8 = 6;
const ERR_IO: u8 = 7;
const ERR_CODEC: u8 = 8;
const ERR_OTHER: u8 = 9;
const ERR_WORKER_LOST: u8 = 10;

pub fn put_error(buf: &mut Vec<u8>, e: &SquallError) {
    match e {
        SquallError::MemoryOverflow { machine, stored, budget } => {
            put_u8(buf, ERR_MEMORY_OVERFLOW);
            put_u64(buf, *machine as u64);
            put_u64(buf, *stored as u64);
            put_u64(buf, *budget as u64);
        }
        SquallError::Runtime(m) => {
            put_u8(buf, ERR_RUNTIME);
            put_str(buf, m);
        }
        SquallError::InvalidPlan(m) => {
            put_u8(buf, ERR_INVALID_PLAN);
            put_str(buf, m);
        }
        SquallError::Parse(m) => {
            put_u8(buf, ERR_PARSE);
            put_str(buf, m);
        }
        SquallError::UnknownColumn(m) => {
            put_u8(buf, ERR_UNKNOWN_COLUMN);
            put_str(buf, m);
        }
        SquallError::UnknownRelation(m) => {
            put_u8(buf, ERR_UNKNOWN_RELATION);
            put_str(buf, m);
        }
        SquallError::InvalidPartitioning(m) => {
            put_u8(buf, ERR_INVALID_PARTITIONING);
            put_str(buf, m);
        }
        SquallError::Io(m) => {
            put_u8(buf, ERR_IO);
            put_str(buf, m);
        }
        SquallError::Codec(m) => {
            put_u8(buf, ERR_CODEC);
            put_str(buf, m);
        }
        SquallError::WorkerLost { addr, last_epoch } => {
            put_u8(buf, ERR_WORKER_LOST);
            put_str(buf, addr);
            put_u64(buf, *last_epoch);
        }
        other => {
            put_u8(buf, ERR_OTHER);
            put_str(buf, &other.to_string());
        }
    }
}

pub fn get_error(r: &mut Reader<'_>) -> Result<SquallError> {
    Ok(match r.u8()? {
        ERR_MEMORY_OVERFLOW => SquallError::MemoryOverflow {
            machine: r.u64()? as usize,
            stored: r.u64()? as usize,
            budget: r.u64()? as usize,
        },
        ERR_RUNTIME => SquallError::Runtime(r.str()?),
        ERR_INVALID_PLAN => SquallError::InvalidPlan(r.str()?),
        ERR_PARSE => SquallError::Parse(r.str()?),
        ERR_UNKNOWN_COLUMN => SquallError::UnknownColumn(r.str()?),
        ERR_UNKNOWN_RELATION => SquallError::UnknownRelation(r.str()?),
        ERR_INVALID_PARTITIONING => SquallError::InvalidPartitioning(r.str()?),
        ERR_IO => SquallError::Io(r.str()?),
        ERR_CODEC => SquallError::Codec(r.str()?),
        ERR_OTHER => SquallError::Runtime(r.str()?),
        ERR_WORKER_LOST => SquallError::WorkerLost { addr: r.str()?, last_epoch: r.u64()? },
        tag => return Err(SquallError::Codec(format!("unknown error tag {tag}"))),
    })
}

// ---------------------------------------------------------------------
// Frame IO
// ---------------------------------------------------------------------

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(SquallError::Codec(format!("frame of {} bytes exceeds cap", payload.len())));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Marker text produced by [`read_frame`] when a socket read timeout
/// (`SO_RCVTIMEO`) fires — the heartbeat watchdog's silence signal.
pub const READ_TIMED_OUT: &str = "frame read timed out (peer silent)";

/// Read one length-prefixed frame. `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed the stream); a mid-frame EOF is an error. A
/// socket read timeout surfaces as `Io(READ_TIMED_OUT)` so a heartbeat
/// watchdog can tell silence apart from a closed stream.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(SquallError::Codec("EOF inside frame length prefix".into()));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(SquallError::Io(READ_TIMED_OUT.into()))
            }
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(SquallError::Codec(format!("frame length {len} exceeds cap")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| SquallError::Codec(format!("EOF inside frame payload: {e}")))?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn value_roundtrip_covers_every_variant() {
        let values = vec![
            Value::Null,
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(3.25),
            Value::Float(f64::NAN),
            Value::str("hello wire"),
            Value::str(""),
            Value::Date(Date::parse("1996-07-28").unwrap()),
        ];
        let mut buf = Vec::new();
        for v in &values {
            put_value(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for v in &values {
            let got = get_value(&mut r).unwrap();
            // NaN compares equal under Value's total order semantics.
            assert_eq!(&got, v, "{v:?}");
        }
        r.finish().unwrap();
    }

    #[test]
    fn tuple_batches_roundtrip() {
        let ts = vec![tuple![1, "a", 2.5], tuple![], tuple![Value::Null, 7]];
        let mut buf = Vec::new();
        put_tuples(&mut buf, &ts);
        let mut r = Reader::new(&buf);
        assert_eq!(get_tuples(&mut r).unwrap(), ts);
        r.finish().unwrap();
    }

    #[test]
    fn error_roundtrip_preserves_memory_overflow_exactly() {
        let e = SquallError::MemoryOverflow { machine: 3, stored: 1001, budget: 1000 };
        let mut buf = Vec::new();
        put_error(&mut buf, &e);
        let mut r = Reader::new(&buf);
        assert_eq!(get_error(&mut r).unwrap(), e);

        let e2 = SquallError::Runtime("task panicked".into());
        let mut buf = Vec::new();
        put_error(&mut buf, &e2);
        assert_eq!(get_error(&mut Reader::new(&buf)).unwrap(), e2);
    }

    #[test]
    fn frame_io_roundtrip_and_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abc").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"abc");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn torn_frame_is_an_error_not_a_hang() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef").unwrap();
        wire.truncate(wire.len() - 2); // cut inside the payload
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(read_frame(&mut cursor), Err(SquallError::Codec(_))));
        // Corrupt length prefix beyond the cap.
        let mut wire = (u32::MAX).to_le_bytes().to_vec();
        wire.extend_from_slice(b"xx");
        assert!(matches!(read_frame(&mut std::io::Cursor::new(wire)), Err(SquallError::Codec(_))));
    }

    #[test]
    fn corrupt_element_count_rejected_before_allocation() {
        // A 12-byte payload claiming 268M tuples: every element costs at
        // least one byte, so the count must fail immediately (no
        // multi-gigabyte Vec::with_capacity).
        let mut buf = Vec::new();
        put_u32(&mut buf, 268_435_455);
        buf.extend_from_slice(&[0u8; 8]);
        let mut r = Reader::new(&buf);
        assert!(matches!(get_tuples(&mut r), Err(SquallError::Codec(_))));
    }

    #[test]
    fn short_buffer_is_typed_error() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 5);
        let mut r = Reader::new(&buf[..4]);
        assert!(matches!(r.u64(), Err(SquallError::Codec(_))));
    }
}
