//! Zipfian sampling.
//!
//! The paper's skewed workloads all use zipf distributions ("zipfian
//! distribution ... appears in Internet packet traces, city sizes, word
//! frequency ... and advertisement clickstreams", §1; TPC-H is skewed with
//! "zipfian distribution and skew factor of 2", §7.3). This sampler draws
//! rank `k ∈ {1..n}` with probability proportional to `1/k^θ`.
//!
//! For the moderate domains used in a laptop-scale reproduction (n up to a
//! few million) an exact inverse-CDF table with binary search is simple,
//! exact and fast to build; for larger n the constructor cost is O(n) once.

use crate::rng::SplitMix64;

/// Exact zipf(θ) sampler over `{0, 1, .., n-1}` (rank 0 is the most
/// frequent key).
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative distribution; `cdf[k]` = P(rank <= k).
    cdf: Vec<f64>,
    theta: f64,
}

impl Zipf {
    /// Build a sampler for `n` keys with exponent `theta >= 0`.
    /// `theta = 0` degenerates to the uniform distribution.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "zipf domain must be non-empty");
        assert!(theta >= 0.0, "zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against FP round-off: the last entry must be exactly 1.
        *cdf.last_mut().unwrap() = 1.0;
        Zipf { cdf, theta }
    }

    /// Number of distinct keys.
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }

    /// The skew exponent.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw a rank in `[0, n)`; rank 0 is the hottest key.
    #[inline]
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        // First index whose cdf >= u.
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of a rank (0-based).
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// The frequency of the most popular key — the `L_mf` input of the
    /// scheme-choice cost model (§3.4).
    pub fn top_frequency(&self) -> f64 {
        self.cdf[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 2.0);
        let sum: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_dominates_at_theta_two() {
        // With θ=2, P(rank 0) = 1/ζ_n(2) ≈ 1/1.6449 ≈ 0.61 for large n —
        // the paper's "skew factor of 2" setting concentrates most of the
        // mass on the hottest key.
        let z = Zipf::new(10_000, 2.0);
        assert!(z.top_frequency() > 0.6, "top freq {}", z.top_frequency());
    }

    #[test]
    fn samples_match_pmf() {
        let z = Zipf::new(50, 1.0);
        let mut rng = SplitMix64::new(123);
        let n = 200_000;
        let mut counts = vec![0usize; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        // Hot keys must come out in roughly pmf proportion.
        for (k, &count) in counts.iter().enumerate().take(5) {
            let emp = count as f64 / n as f64;
            let exp = z.pmf(k);
            assert!((emp - exp).abs() / exp < 0.05, "rank {k}: emp {emp} vs exp {exp}");
        }
        // Monotone non-increasing counts on average for leading ranks.
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
    }

    #[test]
    fn sample_in_range() {
        let z = Zipf::new(3, 1.5);
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic]
    fn empty_domain_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
