//! # squall-common
//!
//! Foundation types shared by every Squall crate: [`Value`], [`Tuple`],
//! [`Schema`], fast hashing, deterministic random number generation and the
//! zipfian sampler used throughout the paper's skewed workloads, plus the
//! common error type.
//!
//! Tuples are replicated to many machines by the hypercube partitioning
//! schemes, so [`Tuple`] is a cheaply clonable reference-counted slice of
//! values, and strings are stored as shared buffers (the paper's Trove-style
//! "primitive collections" optimization, §3.3). Batches move between tasks as
//! columnar [`Chunk`]s (typed arrays + validity bitmaps, see [`mod@array`]), with
//! [`Chunk::rows`] as the row-view fallback for cold paths.

pub mod array;
pub mod codec;
pub mod error;
pub mod hash;
pub mod rng;
pub mod schema;
pub mod tuple;
pub mod value;
pub mod zipf;

pub use array::{Array, ArrayBuilder, Bitmap, Chunk, ChunkBuilder};
pub use error::{Result, SquallError};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use rng::SplitMix64;
pub use schema::{DataType, Field, Schema};
pub use tuple::Tuple;
pub use value::{Date, Value};
pub use zipf::Zipf;
