//! Schemas: named, typed descriptions of tuple layouts.
//!
//! Schemas drive name resolution in the SQL and functional interfaces and
//! record per-attribute *skew hints* — the only statistic the
//! Hybrid-Hypercube needs (§3.4: "a user needs to provide only the relation
//! sizes and whether each join key is skew-free or not").

use std::fmt;

use crate::error::{Result, SquallError};

/// Data types known to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Float,
    Str,
    Date,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "STR"),
            DataType::Date => write!(f, "DATE"),
        }
    }
}

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub data_type: DataType,
    /// `true` when the attribute is known (or assumed) to be free of data
    /// skew — e.g. a primary key (§3.4: "an attribute with the uniqueness
    /// property cannot have skew"). `false` forces random partitioning on
    /// any hypercube dimension built from this attribute.
    pub skew_free: bool,
}

impl Field {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Field {
        Field { name: name.into(), data_type, skew_free: true }
    }

    /// Mark the attribute as skewed (zipfian keys, dominant hub, ...).
    pub fn skewed(mut self) -> Field {
        self.skew_free = false;
        self
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    /// Build a schema of `(name, type)` pairs, all skew-free.
    pub fn of(cols: &[(&str, DataType)]) -> Schema {
        Schema { fields: cols.iter().map(|(n, t)| Field::new(*n, *t)).collect() }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| SquallError::UnknownColumn(name.to_string()))
    }

    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Project onto a subset of columns.
    pub fn project(&self, cols: &[usize]) -> Schema {
        Schema { fields: cols.iter().map(|&c| self.fields[c].clone()).collect() }
    }

    /// Concatenate with another schema (join output schema). Column names
    /// are kept as-is; interfaces that need qualification prefix them first.
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// Prefix every column name with `alias.` (SQL FROM-alias resolution).
    pub fn qualified(&self, alias: &str) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| Field {
                    name: format!("{alias}.{}", f.name),
                    data_type: f.data_type,
                    skew_free: f.skew_free,
                })
                .collect(),
        }
    }

    /// Set the skew hint of a named column.
    pub fn set_skewed(&mut self, name: &str) -> Result<()> {
        let i = self.index_of(name)?;
        self.fields[i].skew_free = false;
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fld) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", fld.name, fld.data_type)?;
            if !fld.skew_free {
                write!(f, " [skewed]")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rst() -> Schema {
        Schema::of(&[("x", DataType::Int), ("y", DataType::Int), ("name", DataType::Str)])
    }

    #[test]
    fn lookup_by_name() {
        let s = rst();
        assert_eq!(s.index_of("y").unwrap(), 1);
        assert!(matches!(s.index_of("z"), Err(SquallError::UnknownColumn(_))));
    }

    #[test]
    fn project_preserves_fields() {
        let s = rst().project(&[2, 0]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.field(0).name, "name");
        assert_eq!(s.field(1).name, "x");
    }

    #[test]
    fn concat_joins_schemas() {
        let s = rst().concat(&Schema::of(&[("z", DataType::Float)]));
        assert_eq!(s.arity(), 4);
        assert_eq!(s.index_of("z").unwrap(), 3);
    }

    #[test]
    fn qualification() {
        let s = rst().qualified("R");
        assert_eq!(s.field(0).name, "R.x");
        assert!(s.index_of("x").is_err());
    }

    #[test]
    fn skew_hints() {
        let mut s = rst();
        assert!(s.field(1).skew_free);
        s.set_skewed("y").unwrap();
        assert!(!s.field(1).skew_free);
        // Hint survives projection and qualification.
        assert!(!s.project(&[1]).field(0).skew_free);
        assert!(!s.qualified("R").field(1).skew_free);
    }

    #[test]
    fn display_shows_skew() {
        let mut s = rst();
        s.set_skewed("y").unwrap();
        let text = s.to_string();
        assert!(text.contains("y: INT [skewed]"));
    }
}
