//! The error type shared by all Squall crates.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, SquallError>;

/// Errors produced anywhere in Squall.
///
/// The engine is mostly infallible once a plan has been validated; most of
/// these variants surface during plan construction, SQL parsing, or when a
/// resource limit (the per-machine memory budget of §7.3) is exceeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SquallError {
    /// A schema lookup failed (unknown column or relation name).
    UnknownColumn(String),
    /// An unknown relation was referenced.
    UnknownRelation(String),
    /// A value had the wrong type for the requested operation.
    TypeMismatch { expected: &'static str, found: String },
    /// A source (table or stream) with this name is already registered.
    DuplicateSource(String),
    /// A source registration was rejected (schema/data mismatch, bad
    /// event-time column, ...).
    InvalidSource { source: String, reason: String },
    /// SQL text could not be parsed.
    Parse(String),
    /// A logical or physical plan was malformed.
    InvalidPlan(String),
    /// A partitioning scheme could not be constructed (e.g. zero machines).
    InvalidPartitioning(String),
    /// A per-machine memory budget was exceeded (the paper's Hash-Hypercube
    /// "Memory Overflow" on the 80G TPCH9-Partial configuration, Fig. 7).
    MemoryOverflow { machine: usize, stored: usize, budget: usize },
    /// The runtime failed (channel disconnect, worker panic, ...).
    Runtime(String),
    /// An I/O error (spill store, cluster sockets).
    Io(String),
    /// A wire frame could not be encoded or decoded (TCP transport).
    Codec(String),
    /// A catalog source cannot be dropped while a live streaming run still
    /// reads it.
    SourceInUse { source: String },
    /// A materialized view cannot be dropped while a subscriber still
    /// reads its change stream.
    ViewInUse { view: String },
    /// A cluster peer died mid-run (socket closed or heartbeat silence).
    /// Carries the dead peer's address and the last epoch it was seen
    /// alive at — the input the checkpoint/recovery subsystem plans
    /// re-admission from.
    WorkerLost { addr: String, last_epoch: u64 },
    /// A join condition references a column that output-scheme pruning
    /// removed from a relation's join input — caught at plan validation,
    /// naming the offending column, instead of surfacing as a downstream
    /// hash mismatch. Checked on every plan execution and re-checked after
    /// any join-order rewrite.
    PrunedColumnReference { relation: String, column: String },
}

impl fmt::Display for SquallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SquallError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            SquallError::UnknownRelation(r) => write!(f, "unknown relation: {r}"),
            SquallError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            SquallError::DuplicateSource(s) => {
                write!(f, "source {s} is already registered (deregister it first to replace)")
            }
            SquallError::InvalidSource { source, reason } => {
                write!(f, "invalid source {source}: {reason}")
            }
            SquallError::Parse(m) => write!(f, "SQL parse error: {m}"),
            SquallError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
            SquallError::InvalidPartitioning(m) => write!(f, "invalid partitioning: {m}"),
            SquallError::MemoryOverflow { machine, stored, budget } => write!(
                f,
                "memory overflow on machine {machine}: {stored} tuples stored, budget {budget}"
            ),
            SquallError::Runtime(m) => write!(f, "runtime error: {m}"),
            SquallError::Io(m) => write!(f, "I/O error: {m}"),
            SquallError::Codec(m) => write!(f, "wire codec error: {m}"),
            SquallError::SourceInUse { source } => write!(
                f,
                "source {source} is read by a live streaming run (finish or drop it first)"
            ),
            SquallError::ViewInUse { view } => {
                write!(f, "view {view} has live change-stream subscribers (drop them first)")
            }
            SquallError::WorkerLost { addr, last_epoch } => {
                write!(f, "worker {addr} lost (last seen alive at epoch {last_epoch})")
            }
            SquallError::PrunedColumnReference { relation, column } => write!(
                f,
                "plan error: join condition references column {column}, which was pruned \
                 from {relation}'s output scheme"
            ),
        }
    }
}

impl std::error::Error for SquallError {}

impl From<std::io::Error> for SquallError {
    fn from(e: std::io::Error) -> Self {
        SquallError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = SquallError::MemoryOverflow { machine: 3, stored: 10, budget: 5 };
        let s = e.to_string();
        assert!(s.contains("machine 3"));
        assert!(s.contains("budget 5"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: SquallError = io.into();
        assert!(matches!(e, SquallError::Io(_)));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SquallError::UnknownColumn("a".into()), SquallError::UnknownColumn("a".into()));
        assert_ne!(
            SquallError::UnknownColumn("a".into()),
            SquallError::UnknownRelation("a".into())
        );
    }
}
