//! Deterministic pseudo-random number generation.
//!
//! The random partitioning schemes (1-Bucket, Random-Hypercube, the random
//! dimensions of the Hybrid-Hypercube) and all workload generators need
//! per-task, seedable randomness that is fast and reproducible across runs so
//! that load/replication measurements (Tables 1 and 2) are exact and the test
//! suite is deterministic. SplitMix64 passes BigCrush, needs two lines of
//! state-update code, and has a trivially splittable seed.

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Equal seeds give equal streams.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive an independent stream for a sub-task (e.g. one per sender
    /// task so that random routing is deterministic per task).
    #[inline]
    pub fn split(&mut self, stream: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)` using the widening-multiply method.
    #[inline]
    pub fn next_below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    #[inline]
    pub fn next_range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 as u128 + 1;
        lo + ((self.next_u64() as u128 * span) >> 64) as i64
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut rng = SplitMix64::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_below(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut rng = SplitMix64::new(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} should be near 0.5");
    }

    #[test]
    fn next_range_inclusive() {
        let mut rng = SplitMix64::new(5);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let v = rng.next_range(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn split_streams_are_independent() {
        let mut root = SplitMix64::new(42);
        let mut s1 = root.split(1);
        let mut s2 = root.split(2);
        let same = (0..64).filter(|_| s1.next_u64() == s2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(9);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle should move things");
    }
}
