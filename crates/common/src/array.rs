//! Columnar batches: typed arrays, validity bitmaps, and [`Chunk`]s.
//!
//! The data plane moves batches of rows between tasks. Storing a batch as
//! `Vec<Tuple>` forces every consumer — filters, join-key hashing, the wire
//! codec — through one `Value` enum dispatch per cell. A [`Chunk`] stores the
//! same rows as *columns*: each column is a typed array ([`I64Array`],
//! [`Utf8Array`], …) holding primitive values contiguously, with an optional
//! [`Bitmap`] marking NULL rows. Hot paths (key hashing, scalar expressions,
//! the codec) then run tight loops over primitive slices; cold paths use the
//! [`Chunk::rows`] adapter, which rebuilds row [`Tuple`]s on demand.
//!
//! Two invariants matter for correctness:
//!
//! 1. **Round-trip exactness.** `Chunk::from_tuples(&ts).to_tuples() == ts`
//!    with the *same `Value` variants* — an `Int(3)` must never come back as
//!    `Float(3.0)` even though the two compare equal. Builders therefore
//!    degrade a column to the [`Array::Mixed`] fallback on any variant
//!    conflict instead of coercing.
//! 2. **Hash exactness.** [`Chunk::key_hashes`] produces bit-identical
//!    hashes to feeding each row's key values through
//!    [`FxHasher`](crate::hash::FxHasher) — so partitioning, per-machine
//!    loads, and join results are byte-identical whether a batch travels as
//!    rows or columns.

use crate::hash::{fx_mix, fx_write, hash_i64_keys};
use crate::tuple::Tuple;
use crate::value::{Date, Value};

// ---------------------------------------------------------------------------
// Validity bitmap
// ---------------------------------------------------------------------------

/// A per-row validity bitmap: bit `i` is set iff row `i` holds a real value.
///
/// NULL rows keep a default payload slot in the typed array (0, 0.0, "") and
/// a cleared bit here; readers must consult the bitmap before the payload.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    /// A bitmap of `len` bits, all set.
    pub fn all_valid(len: usize) -> Bitmap {
        let mut b = Bitmap { words: vec![u64::MAX; len.div_ceil(64)], len };
        b.mask_tail();
        b
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Append one bit.
    pub fn push(&mut self, valid: bool) {
        let (word, bit) = (self.len / 64, self.len % 64);
        if word == self.words.len() {
            self.words.push(0);
        }
        if valid {
            self.words[word] |= 1 << bit;
        }
        self.len += 1;
    }

    /// Bit `i` (panics if out of range).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Count of set (valid) bits.
    pub fn count_valid(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Raw 64-bit words, little-bit-endian within each word (wire layout).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild from raw words and a bit length (wire decoding).
    pub fn from_words(words: Vec<u64>, len: usize) -> Bitmap {
        assert_eq!(words.len(), len.div_ceil(64), "bitmap word count mismatch");
        let mut b = Bitmap { words, len };
        b.mask_tail();
        b
    }
}

// ---------------------------------------------------------------------------
// Typed arrays
// ---------------------------------------------------------------------------

/// A column of fixed-width values with an optional validity bitmap
/// (`None` means every row is valid).
#[derive(Debug, Clone, PartialEq)]
pub struct PrimitiveArray<T> {
    values: Vec<T>,
    validity: Option<Bitmap>,
}

/// Column of `Value::Int` payloads.
pub type I64Array = PrimitiveArray<i64>;
/// Column of `Value::Float` payloads (exact bits preserved, NaN included).
pub type F64Array = PrimitiveArray<f64>;
/// Column of `Value::Date` payloads (days since epoch).
pub type DateArray = PrimitiveArray<i32>;

impl<T: Copy + Default> PrimitiveArray<T> {
    /// A column where every row is valid.
    pub fn from_values(values: Vec<T>) -> PrimitiveArray<T> {
        PrimitiveArray { values, validity: None }
    }

    /// A column with an explicit validity bitmap (must match `values` length).
    pub fn with_validity(values: Vec<T>, validity: Option<Bitmap>) -> PrimitiveArray<T> {
        if let Some(v) = &validity {
            assert_eq!(v.len(), values.len(), "validity length mismatch");
        }
        PrimitiveArray { values, validity }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw payload slice (NULL rows hold `T::default()`).
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// The validity bitmap, if any row is NULL.
    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }

    /// Whether row `i` is valid (non-NULL).
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().is_none_or(|v| v.get(i))
    }

    /// Row `i` as `Some(payload)` or `None` for NULL.
    #[inline]
    pub fn get(&self, i: usize) -> Option<T> {
        if self.is_valid(i) {
            Some(self.values[i])
        } else {
            None
        }
    }

    fn push(&mut self, v: Option<T>) {
        match v {
            Some(x) => {
                if let Some(bits) = &mut self.validity {
                    bits.push(true);
                }
                self.values.push(x);
            }
            None => {
                let n = self.values.len();
                let bits = self.validity.get_or_insert_with(|| Bitmap::all_valid(n));
                bits.push(false);
                self.values.push(T::default());
            }
        }
    }
}

/// A string column: row `i` is `bytes[offsets[i] .. offsets[i + 1]]`.
///
/// Offsets has `rows + 1` entries with `offsets[0] == 0`; NULL rows occupy a
/// zero-length slice plus a cleared validity bit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Utf8Array {
    offsets: Vec<u32>,
    bytes: Vec<u8>,
    validity: Option<Bitmap>,
}

impl Utf8Array {
    /// An empty string column.
    pub fn new() -> Utf8Array {
        Utf8Array { offsets: vec![0], bytes: Vec::new(), validity: None }
    }

    /// Rebuild from wire parts. `offsets` must be monotone starting at 0 and
    /// end at `bytes.len()`.
    pub fn from_parts(offsets: Vec<u32>, bytes: Vec<u8>, validity: Option<Bitmap>) -> Utf8Array {
        assert!(!offsets.is_empty() && offsets[0] == 0, "offsets must start at 0");
        assert_eq!(*offsets.last().unwrap() as usize, bytes.len(), "offsets/bytes mismatch");
        if let Some(v) = &validity {
            assert_eq!(v.len(), offsets.len() - 1, "validity length mismatch");
        }
        Utf8Array { offsets, bytes, validity }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a string (or NULL).
    pub fn push(&mut self, v: Option<&str>) {
        match v {
            Some(s) => {
                if let Some(bits) = &mut self.validity {
                    bits.push(true);
                }
                self.bytes.extend_from_slice(s.as_bytes());
            }
            None => {
                let n = self.len();
                let bits = self.validity.get_or_insert_with(|| Bitmap::all_valid(n));
                bits.push(false);
            }
        }
        self.offsets.push(self.bytes.len() as u32);
    }

    /// Whether row `i` is valid (non-NULL).
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().is_none_or(|v| v.get(i))
    }

    /// Row `i` as `Some(&str)` or `None` for NULL.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&str> {
        if !self.is_valid(i) {
            return None;
        }
        let (lo, hi) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        // Bytes were pushed from &str, or validated on decode.
        Some(std::str::from_utf8(&self.bytes[lo..hi]).expect("utf8 column holds valid utf8"))
    }

    /// End offsets (`rows + 1` entries, wire layout).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Concatenated string payload bytes (wire layout).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The validity bitmap, if any row is NULL.
    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }
}

// ---------------------------------------------------------------------------
// Array: one column of a chunk
// ---------------------------------------------------------------------------

/// One column of a [`Chunk`]: typed when every non-NULL row shares a `Value`
/// variant, degraded otherwise.
#[derive(Debug, Clone, PartialEq)]
pub enum Array {
    /// All non-NULL rows are `Value::Int`.
    Int(I64Array),
    /// All non-NULL rows are `Value::Float`.
    Float(F64Array),
    /// All non-NULL rows are `Value::Str`.
    Str(Utf8Array),
    /// All non-NULL rows are `Value::Date`.
    Date(DateArray),
    /// Every row is `Value::Null`; the payload is just the row count.
    Null(usize),
    /// Heterogeneous fallback: rows mix `Value` variants (e.g. an `Int`
    /// column that received a `Float`). Stored as plain row values so the
    /// round-trip stays variant-exact.
    Mixed(Vec<Value>),
}

impl Array {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Array::Int(a) => a.len(),
            Array::Float(a) => a.len(),
            Array::Str(a) => a.len(),
            Array::Date(a) => a.len(),
            Array::Null(n) => *n,
            Array::Mixed(v) => v.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize row `i` as a [`Value`] (allocates for strings).
    pub fn value(&self, i: usize) -> Value {
        match self {
            Array::Int(a) => a.get(i).map_or(Value::Null, Value::Int),
            Array::Float(a) => a.get(i).map_or(Value::Null, Value::Float),
            Array::Str(a) => a.get(i).map_or(Value::Null, |s| Value::Str(s.into())),
            Array::Date(a) => a.get(i).map_or(Value::Null, |d| Value::Date(Date(d))),
            Array::Null(n) => {
                assert!(i < *n, "row {i} out of range {n}");
                Value::Null
            }
            Array::Mixed(v) => v[i].clone(),
        }
    }

    /// The integer column, if this is a typed `Int` array.
    pub fn as_i64(&self) -> Option<&I64Array> {
        match self {
            Array::Int(a) => Some(a),
            _ => None,
        }
    }

    /// The float column, if this is a typed `Float` array.
    pub fn as_f64(&self) -> Option<&F64Array> {
        match self {
            Array::Float(a) => Some(a),
            _ => None,
        }
    }

    /// The string column, if this is a typed `Str` array.
    pub fn as_utf8(&self) -> Option<&Utf8Array> {
        match self {
            Array::Str(a) => Some(a),
            _ => None,
        }
    }

    /// Fold every row of this column into the per-row hasher `states`,
    /// reproducing `Value::hash` through `FxHasher` bit-for-bit.
    ///
    /// Hot case — a fully valid `Int` column — runs the pre-specialized
    /// [`hash_i64_keys`] loop over the primitive slice with no per-row
    /// dispatch. The float path mirrors `Value`'s cross-type rule: an
    /// integral finite float hashes as the equal `Int` would.
    pub fn update_hash_states(&self, states: &mut [u64]) {
        assert_eq!(states.len(), self.len(), "hash state count mismatch");
        match self {
            Array::Int(a) => match a.validity() {
                None => hash_i64_keys(a.values(), states),
                Some(bits) => {
                    for (i, s) in states.iter_mut().enumerate() {
                        *s = if bits.get(i) {
                            fx_mix(fx_mix(*s, 1), a.values()[i] as u64)
                        } else {
                            fx_mix(*s, 0)
                        };
                    }
                }
            },
            Array::Float(a) => {
                for (i, s) in states.iter_mut().enumerate() {
                    *s = match a.get(i) {
                        Some(f) => {
                            // Same predicate as Value::hash: integral finite
                            // floats hash like the equal Int.
                            if f.fract() == 0.0
                                && f.is_finite()
                                && f >= i64::MIN as f64
                                && f <= i64::MAX as f64
                            {
                                fx_mix(fx_mix(*s, 1), (f as i64) as u64)
                            } else {
                                fx_mix(fx_mix(*s, 2), f.to_bits())
                            }
                        }
                        None => fx_mix(*s, 0),
                    };
                }
            }
            Array::Str(a) => {
                for (i, s) in states.iter_mut().enumerate() {
                    *s = match a.get(i) {
                        Some(txt) => fx_write(fx_mix(*s, 3), txt.as_bytes()),
                        None => fx_mix(*s, 0),
                    };
                }
            }
            Array::Date(a) => {
                for (i, s) in states.iter_mut().enumerate() {
                    *s = match a.get(i) {
                        Some(d) => fx_mix(fx_mix(*s, 4), (d as u32) as u64),
                        None => fx_mix(*s, 0),
                    };
                }
            }
            Array::Null(_) => {
                for s in states.iter_mut() {
                    *s = fx_mix(*s, 0);
                }
            }
            Array::Mixed(vals) => {
                use std::hash::{Hash, Hasher};
                for (v, s) in vals.iter().zip(states.iter_mut()) {
                    let mut h = crate::hash::FxHasher::from_state(*s);
                    v.hash(&mut h);
                    *s = h.finish();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

/// Incrementally builds one [`Array`] from row values.
///
/// The builder starts untyped, adopts the variant of the first non-NULL
/// value, and degrades to [`Array::Mixed`] if a conflicting variant arrives —
/// preserving exact variants end to end.
#[derive(Debug, Default)]
pub struct ArrayBuilder {
    kind: BuilderKind,
}

#[derive(Debug, Default)]
enum BuilderKind {
    /// Only NULLs seen so far (count tracked).
    #[default]
    Untyped,
    Nulls(usize),
    Int(I64Array),
    Float(F64Array),
    Str(Utf8Array),
    Date(DateArray),
    Mixed(Vec<Value>),
}

impl ArrayBuilder {
    /// A fresh, empty builder.
    pub fn new() -> ArrayBuilder {
        ArrayBuilder { kind: BuilderKind::Untyped }
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        match &self.kind {
            BuilderKind::Untyped => 0,
            BuilderKind::Nulls(n) => *n,
            BuilderKind::Int(a) => a.len(),
            BuilderKind::Float(a) => a.len(),
            BuilderKind::Str(a) => a.len(),
            BuilderKind::Date(a) => a.len(),
            BuilderKind::Mixed(v) => v.len(),
        }
    }

    /// True when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn degrade(&mut self, v: &Value) {
        let n = self.len();
        let mut vals = Vec::with_capacity(n + 1);
        let prior = std::mem::take(&mut self.kind);
        let as_array = match prior {
            BuilderKind::Untyped => Array::Null(0),
            BuilderKind::Nulls(k) => Array::Null(k),
            BuilderKind::Int(a) => Array::Int(a),
            BuilderKind::Float(a) => Array::Float(a),
            BuilderKind::Str(a) => Array::Str(a),
            BuilderKind::Date(a) => Array::Date(a),
            BuilderKind::Mixed(v) => Array::Mixed(v),
        };
        for i in 0..n {
            vals.push(as_array.value(i));
        }
        vals.push(v.clone());
        self.kind = BuilderKind::Mixed(vals);
    }

    /// Append one row value.
    pub fn push(&mut self, v: &Value) {
        match (&mut self.kind, v) {
            (BuilderKind::Untyped | BuilderKind::Nulls(_), Value::Null) => {
                let n = self.len();
                self.kind = BuilderKind::Nulls(n + 1);
            }
            (BuilderKind::Untyped | BuilderKind::Nulls(_), _) => {
                let nulls = self.len();
                let mut kind = match v {
                    Value::Int(_) => BuilderKind::Int(I64Array::from_values(Vec::new())),
                    Value::Float(_) => BuilderKind::Float(F64Array::from_values(Vec::new())),
                    Value::Str(_) => BuilderKind::Str(Utf8Array::new()),
                    Value::Date(_) => BuilderKind::Date(DateArray::from_values(Vec::new())),
                    Value::Null => unreachable!(),
                };
                match &mut kind {
                    BuilderKind::Int(a) => {
                        for _ in 0..nulls {
                            a.push(None);
                        }
                    }
                    BuilderKind::Float(a) => {
                        for _ in 0..nulls {
                            a.push(None);
                        }
                    }
                    BuilderKind::Str(a) => {
                        for _ in 0..nulls {
                            a.push(None);
                        }
                    }
                    BuilderKind::Date(a) => {
                        for _ in 0..nulls {
                            a.push(None);
                        }
                    }
                    _ => {}
                }
                self.kind = kind;
                self.push(v);
            }
            (BuilderKind::Int(a), Value::Int(i)) => a.push(Some(*i)),
            (BuilderKind::Int(a), Value::Null) => a.push(None),
            (BuilderKind::Float(a), Value::Float(f)) => a.push(Some(*f)),
            (BuilderKind::Float(a), Value::Null) => a.push(None),
            (BuilderKind::Str(a), Value::Str(s)) => a.push(Some(s)),
            (BuilderKind::Str(a), Value::Null) => a.push(None),
            (BuilderKind::Date(a), Value::Date(d)) => a.push(Some(d.0)),
            (BuilderKind::Date(a), Value::Null) => a.push(None),
            (BuilderKind::Mixed(vals), _) => vals.push(v.clone()),
            // Variant conflict: keep exactness by degrading to Mixed.
            _ => self.degrade(v),
        }
    }

    /// Finish the column and reset the builder.
    pub fn finish(&mut self) -> Array {
        match std::mem::take(&mut self.kind) {
            BuilderKind::Untyped => Array::Null(0),
            BuilderKind::Nulls(n) => Array::Null(n),
            BuilderKind::Int(a) => Array::Int(a),
            BuilderKind::Float(a) => Array::Float(a),
            BuilderKind::Str(a) => Array::Str(a),
            BuilderKind::Date(a) => Array::Date(a),
            BuilderKind::Mixed(v) => Array::Mixed(v),
        }
    }
}

// ---------------------------------------------------------------------------
// Chunk
// ---------------------------------------------------------------------------

/// A columnar batch: `n_cols` equal-length [`Array`]s plus an explicit row
/// count (needed because zero-column chunks still carry rows).
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    columns: Vec<Array>,
    rows: usize,
}

impl Chunk {
    /// Assemble a chunk from columns; every column must have `rows` rows.
    pub fn new(columns: Vec<Array>, rows: usize) -> Chunk {
        for (i, c) in columns.iter().enumerate() {
            assert_eq!(c.len(), rows, "column {i} length {} != rows {rows}", c.len());
        }
        Chunk { columns, rows }
    }

    /// A chunk with no rows and no columns.
    pub fn empty() -> Chunk {
        Chunk { columns: Vec::new(), rows: 0 }
    }

    /// Columnarize a slice of row tuples. All tuples must share one arity.
    pub fn from_tuples(tuples: &[Tuple]) -> Chunk {
        let Some(first) = tuples.first() else { return Chunk::empty() };
        let arity = first.arity();
        let mut builders: Vec<ArrayBuilder> = (0..arity).map(|_| ArrayBuilder::new()).collect();
        for t in tuples {
            assert_eq!(t.arity(), arity, "ragged tuple arity in chunk");
            for (b, v) in builders.iter_mut().zip(t.values()) {
                b.push(v);
            }
        }
        Chunk { columns: builders.iter_mut().map(|b| b.finish()).collect(), rows: tuples.len() }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (row arity).
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// True when the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Column `i`.
    pub fn column(&self, i: usize) -> &Array {
        &self.columns[i]
    }

    /// All columns.
    pub fn columns(&self) -> &[Array] {
        &self.columns
    }

    /// Materialize row `i` as a [`Tuple`] (the row-view fallback).
    pub fn row(&self, i: usize) -> Tuple {
        assert!(i < self.rows, "row {i} out of range {}", self.rows);
        // Collecting straight into the tuple's shared slice allocates once
        // (the column iterator has a trusted length).
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Iterate rows as freshly materialized [`Tuple`]s. Cold-path adapter:
    /// operators that want columns should read them directly.
    pub fn rows(&self) -> Rows<'_> {
        Rows { chunk: self, next: 0 }
    }

    /// Materialize every row.
    pub fn to_tuples(&self) -> Vec<Tuple> {
        self.rows().collect()
    }

    /// Hash the given key columns of every row, column-at-a-time.
    ///
    /// Bit-identical to hashing `tuple.get(c)` for `c in cols` through one
    /// [`FxHasher`](crate::hash::FxHasher) per row — the exact computation
    /// `Grouping::Fields` performs — so partition decisions match the
    /// row-at-a-time path.
    pub fn key_hashes(&self, cols: &[usize]) -> Vec<u64> {
        let mut states = vec![0u64; self.rows];
        for &c in cols {
            self.columns[c].update_hash_states(&mut states);
        }
        states
    }

    /// Rough in-memory footprint in bytes (for memory budgeting).
    pub fn approx_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| match c {
                Array::Int(a) => 8 * a.len(),
                Array::Float(a) => 8 * a.len(),
                Array::Date(a) => 4 * a.len(),
                Array::Str(a) => a.bytes().len() + 4 * (a.len() + 1),
                Array::Null(_) => 0,
                Array::Mixed(v) => {
                    v.len() * std::mem::size_of::<Value>()
                        + v.iter()
                            .map(|x| match x {
                                Value::Str(s) => s.len(),
                                _ => 0,
                            })
                            .sum::<usize>()
                }
            })
            .sum::<usize>()
            + 16
    }
}

/// Iterator over a [`Chunk`]'s rows as materialized [`Tuple`]s.
#[derive(Debug)]
pub struct Rows<'a> {
    chunk: &'a Chunk,
    next: usize,
}

impl Iterator for Rows<'_> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.next >= self.chunk.rows {
            return None;
        }
        let t = self.chunk.row(self.next);
        self.next += 1;
        Some(t)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.chunk.rows - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Rows<'_> {}

// ---------------------------------------------------------------------------
// ChunkBuilder
// ---------------------------------------------------------------------------

/// Accumulates row tuples into a [`Chunk`] — the per-target scatter buffer of
/// the batched data plane.
///
/// The builder is arity-locked to its first tuple; callers must check
/// [`ChunkBuilder::accepts`] and flush on a mismatch so ragged streams (e.g.
/// punctuation-adjacent control rows) split into uniform chunks. Splitting at
/// an arbitrary boundary never changes results: routing happens per row
/// before buffering, and consumers only see row multisets.
#[derive(Debug, Default)]
pub struct ChunkBuilder {
    builders: Vec<ArrayBuilder>,
    rows: usize,
    arity: Option<usize>,
}

impl ChunkBuilder {
    /// A fresh, empty builder.
    pub fn new() -> ChunkBuilder {
        ChunkBuilder::default()
    }

    /// Number of buffered rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when no rows are buffered.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Whether `t` can be appended without an arity flush.
    pub fn accepts(&self, t: &Tuple) -> bool {
        self.arity.is_none_or(|a| a == t.arity())
    }

    /// Append one row (panics on arity mismatch — check [`Self::accepts`]).
    pub fn push(&mut self, t: &Tuple) {
        match self.arity {
            None => {
                self.arity = Some(t.arity());
                self.builders = (0..t.arity()).map(|_| ArrayBuilder::new()).collect();
            }
            Some(a) => assert_eq!(a, t.arity(), "ragged arity pushed into ChunkBuilder"),
        }
        for (b, v) in self.builders.iter_mut().zip(t.values()) {
            b.push(v);
        }
        self.rows += 1;
    }

    /// Finish the buffered rows as a [`Chunk`] and reset.
    pub fn finish(&mut self) -> Chunk {
        let rows = self.rows;
        let columns = self.builders.iter_mut().map(|b| b.finish()).collect();
        self.builders.clear();
        self.rows = 0;
        self.arity = None;
        Chunk { columns, rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::{fx_hash, FxHasher};
    use crate::tuple;
    use std::hash::{Hash, Hasher};

    fn sample_tuples() -> Vec<Tuple> {
        vec![
            tuple![1i64, "alpha", 1.5f64],
            tuple![2i64, Value::Null, 2.5f64],
            tuple![3i64, "gamma", Value::Null],
        ]
    }

    #[test]
    fn roundtrip_exact_variants() {
        let ts = sample_tuples();
        let c = Chunk::from_tuples(&ts);
        assert_eq!(c.n_rows(), 3);
        assert_eq!(c.n_cols(), 3);
        assert_eq!(c.to_tuples(), ts);
    }

    #[test]
    fn mixed_column_preserves_int_vs_float() {
        // Int(3) == Float(3.0) under Value equality; the column must still
        // give back the exact variants.
        let ts = vec![tuple![3i64], tuple![3.0f64]];
        let c = Chunk::from_tuples(&ts);
        assert!(matches!(c.column(0), Array::Mixed(_)));
        let back = c.to_tuples();
        assert!(matches!(back[0].get(0), Value::Int(3)));
        assert!(matches!(back[1].get(0), Value::Float(f) if *f == 3.0));
    }

    #[test]
    fn all_null_column() {
        let ts = vec![tuple![Value::Null], tuple![Value::Null]];
        let c = Chunk::from_tuples(&ts);
        assert!(matches!(c.column(0), Array::Null(2)));
        assert_eq!(c.to_tuples(), ts);
    }

    #[test]
    fn empty_chunk() {
        let c = Chunk::from_tuples(&[]);
        assert_eq!(c.n_rows(), 0);
        assert_eq!(c.n_cols(), 0);
        assert!(c.to_tuples().is_empty());
    }

    #[test]
    fn nulls_before_type_adoption() {
        let ts = vec![tuple![Value::Null], tuple![7i64], tuple![Value::Null]];
        let c = Chunk::from_tuples(&ts);
        assert!(matches!(c.column(0), Array::Int(_)));
        assert_eq!(c.to_tuples(), ts);
    }

    #[test]
    fn key_hashes_match_row_hasher() {
        let ts = vec![
            tuple![5i64, "k", 1.0f64],
            tuple![Value::Null, "longer string over eight bytes", 2.5f64],
            tuple![-9i64, Value::Null, f64::NAN],
            tuple![7i64, "x", 3.0f64],
        ];
        let c = Chunk::from_tuples(&ts);
        for cols in [vec![0usize], vec![1], vec![2], vec![0, 1, 2], vec![2, 0]] {
            let got = c.key_hashes(&cols);
            for (i, t) in ts.iter().enumerate() {
                let mut h = FxHasher::default();
                for &col in &cols {
                    t.get(col).hash(&mut h);
                }
                assert_eq!(got[i], h.finish(), "row {i} cols {cols:?}");
            }
        }
    }

    #[test]
    fn specialized_int_hash_matches_generic() {
        let vals: Vec<i64> = vec![0, 1, -1, i64::MAX, i64::MIN, 42424242];
        let mut states = vec![0u64; vals.len()];
        hash_i64_keys(&vals, &mut states);
        for (s, v) in states.iter().zip(&vals) {
            assert_eq!(*s, fx_hash(&Value::Int(*v)));
        }
    }

    #[test]
    fn chunk_builder_flush_and_reuse() {
        let mut b = ChunkBuilder::new();
        b.push(&tuple![1i64, 2i64]);
        b.push(&tuple![3i64, 4i64]);
        assert!(!b.accepts(&tuple![1i64]));
        let c1 = b.finish();
        assert_eq!(c1.n_rows(), 2);
        assert!(b.accepts(&tuple![1i64]));
        b.push(&tuple![9i64]);
        let c2 = b.finish();
        assert_eq!(c2.n_rows(), 1);
        assert_eq!(c2.n_cols(), 1);
    }

    #[test]
    fn zero_arity_rows() {
        let ts = vec![Tuple::new(Vec::<Value>::new()), Tuple::new(Vec::<Value>::new())];
        let c = Chunk::from_tuples(&ts);
        assert_eq!(c.n_rows(), 2);
        assert_eq!(c.n_cols(), 0);
        assert_eq!(c.to_tuples(), ts);
    }
}
