//! Fast, non-cryptographic hashing.
//!
//! Hashing is on the hot path of every partitioning scheme and every local
//! join index, so Squall uses an Fx-style multiplicative hash (the algorithm
//! popularized by rustc's `FxHasher`) instead of the standard library's
//! SipHash. HashDoS resistance is irrelevant here: keys come from the user's
//! own data and the engine is not a network-facing service.

use std::hash::{BuildHasherDefault, Hash, Hasher};

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// One Fx mixing step: fold `word` into `state`.
///
/// This is the exact transition [`FxHasher`] applies per written word,
/// exposed as a free function so column-at-a-time key hashing (see
/// [`crate::array::Chunk::key_hashes`]) can run over primitive slices
/// without constructing a hasher or dispatching on [`crate::Value`]
/// variants per row — while producing bit-identical hashes, which keeps
/// partitioning decisions (and therefore per-machine loads) byte-identical
/// to the row-at-a-time path.
#[inline]
pub fn fx_mix(state: u64, word: u64) -> u64 {
    (state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64)
}

/// Fold a byte slice into `state` exactly as [`FxHasher::write`] does:
/// 8-byte little-endian words, with the remainder zero-padded and
/// length-mixed. Used for string columns in columnar key hashing.
#[inline]
pub fn fx_write(mut state: u64, bytes: &[u8]) -> u64 {
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        state = fx_mix(state, u64::from_le_bytes(chunk.try_into().unwrap()));
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut word = [0u8; 8];
        word[..rest.len()].copy_from_slice(rest);
        // Mix in the length so "a" and "a\0" differ.
        word[7] = rest.len() as u8;
        state = fx_mix(state, u64::from_le_bytes(word));
    }
    state
}

/// Pre-specialized column hash for `Int` join keys: fold each `values[i]`
/// into `states[i]` exactly as hashing `Value::Int(values[i])` through
/// [`FxHasher`] would (tag word then payload word), without the generic
/// `Value` hasher's per-row enum dispatch. The tight two-multiply loop is
/// the hot path of `Fields` groupings and hash aggregation over integer
/// keys.
#[inline]
pub fn hash_i64_keys(values: &[i64], states: &mut [u64]) {
    debug_assert_eq!(values.len(), states.len());
    for (s, &v) in states.iter_mut().zip(values) {
        *s = fx_mix(fx_mix(*s, 1), v as u64);
    }
}

/// An Fx-style hasher: `state = (state.rotate_left(5) ^ word) * SEED`.
///
/// Extremely fast for the short integer/string keys used as join keys, at
/// the cost of lower hash quality than SipHash — a trade the Rust compiler
/// itself makes, and the same trade the paper makes by using Trove's
/// primitive collections (§3.3).
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    /// Resume hashing from a previously captured state.
    ///
    /// Used by column-at-a-time key hashing to continue a per-row running
    /// state through a heterogeneous (`Mixed`) column via the generic
    /// `Value` hash, without losing bit-compatibility with the
    /// row-at-a-time path.
    #[inline]
    pub fn from_state(state: u64) -> FxHasher {
        FxHasher { state }
    }

    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Mix in the length so "a" and "a\0" differ.
            word[7] = rest.len() as u8;
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_word(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` replacement with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` replacement with the fast hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hash any `Hash` value to a `u64` with the Fx hasher.
#[inline]
pub fn fx_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// Map a hash to one of `n` partitions.
///
/// Uses the widening-multiply trick (Lemire) instead of `% n`: unbiased
/// enough for partitioning and avoids an integer division on the hot path.
#[inline]
pub fn partition_of(hash: u64, n: usize) -> usize {
    debug_assert!(n > 0, "partition count must be positive");
    (((hash as u128) * (n as u128)) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fx_hash(&42u64), fx_hash(&42u64));
        assert_eq!(fx_hash("hello"), fx_hash("hello"));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(fx_hash(&1u64), fx_hash(&2u64));
        assert_ne!(fx_hash("a"), fx_hash("b"));
        // Length mixing: a prefix plus NULs must not collide with the prefix.
        assert_ne!(fx_hash("a".as_bytes()), fx_hash("a\0".as_bytes()));
    }

    #[test]
    fn partition_of_in_range_and_covers() {
        let n = 7;
        let mut seen = vec![false; n];
        for i in 0..10_000u64 {
            let p = partition_of(fx_hash(&i), n);
            assert!(p < n);
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s), "all partitions should be hit");
    }

    #[test]
    fn partition_of_single() {
        assert_eq!(partition_of(u64::MAX, 1), 0);
        assert_eq!(partition_of(0, 1), 0);
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let n = 16;
        let trials = 160_000u64;
        let mut counts = vec![0usize; n];
        for i in 0..trials {
            counts[partition_of(fx_hash(&i), n)] += 1;
        }
        let expected = trials as f64 / n as f64;
        for &c in &counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "partition count {c} deviates {dev} from {expected}");
        }
    }

    #[test]
    fn fx_map_works() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&50), Some(&100));
        assert_eq!(m.len(), 100);
    }
}
