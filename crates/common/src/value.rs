//! Runtime values.
//!
//! Squall tuples are heterogeneous rows of [`Value`]s. Strings are stored as
//! reference-counted shared buffers so that the hypercube schemes can
//! replicate a tuple to a whole row/column/slice of machines without copying
//! string payloads (the paper's memory-footprint optimization of §3.3).
//! Dates are stored as days-since-epoch integers but *parsed from text*,
//! because the paper's Figure 5 explicitly measures that parsing a `Date`
//! from its string form costs an order of magnitude more than parsing an
//! integer.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{Result, SquallError};

/// A calendar date stored as days since 1970-01-01 (proleptic Gregorian).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(pub i32);

impl Date {
    /// Construct from a year/month/day triple.
    ///
    /// Uses the classic days-from-civil algorithm (Howard Hinnant), valid for
    /// all Gregorian dates.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Result<Date> {
        if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return Err(SquallError::Parse(format!("invalid date {year}-{month}-{day}")));
        }
        let y = if month <= 2 { year - 1 } else { year };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = (y - era * 400) as i64;
        let m = month as i64;
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + day as i64 - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        Ok(Date((era as i64 * 146_097 + doe - 719_468) as i32))
    }

    /// Parse `"YYYY-MM-DD"`. Deliberately does real per-character work
    /// (validation, bounds checks) so the Fig. 5 experiment is meaningful.
    pub fn parse(s: &str) -> Result<Date> {
        let bytes = s.as_bytes();
        if bytes.len() != 10 || bytes[4] != b'-' || bytes[7] != b'-' {
            return Err(SquallError::Parse(format!("bad date literal: {s:?}")));
        }
        fn digits(b: &[u8], s: &str) -> Result<i64> {
            let mut v: i64 = 0;
            for &c in b {
                if !c.is_ascii_digit() {
                    return Err(SquallError::Parse(format!("bad date literal: {s:?}")));
                }
                v = v * 10 + (c - b'0') as i64;
            }
            Ok(v)
        }
        let year = digits(&bytes[0..4], s)? as i32;
        let month = digits(&bytes[5..7], s)? as u32;
        let day = digits(&bytes[8..10], s)? as u32;
        Date::from_ymd(year, month, day)
    }

    /// Convert back to (year, month, day).
    pub fn to_ymd(self) -> (i32, u32, u32) {
        let z = self.0 as i64 + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
        ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// A single runtime value.
///
/// `Float` wraps `f64`; Squall orders floats by `total_cmp` and hashes their
/// bit pattern, which makes `Value` usable as a grouping/join key (NaN is a
/// legal, self-equal key — the pragmatic choice every analytics engine makes).
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Str(Arc<str>),
    Date(Date),
}

impl Value {
    /// Shared string constructor.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer accessor.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => {
                Err(SquallError::TypeMismatch { expected: "Int", found: format!("{other:?}") })
            }
        }
    }

    /// Float accessor; integers widen implicitly (SQL numeric semantics).
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => {
                Err(SquallError::TypeMismatch { expected: "Float", found: format!("{other:?}") })
            }
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => {
                Err(SquallError::TypeMismatch { expected: "Str", found: format!("{other:?}") })
            }
        }
    }

    /// Date accessor.
    pub fn as_date(&self) -> Result<Date> {
        match self {
            Value::Date(d) => Ok(*d),
            other => {
                Err(SquallError::TypeMismatch { expected: "Date", found: format!("{other:?}") })
            }
        }
    }

    /// A small discriminant used in hashing so values of different types
    /// never collide structurally.
    fn tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::Date(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b) == Ordering::Equal,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64).total_cmp(b) == Ordering::Equal
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Date(a), Value::Date(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: within a type, natural order; across numeric types,
    /// numeric order; otherwise order by type tag (Null < numbers < Str <
    /// Date). A total order is required by the BTree indexes used for band
    /// and inequality join conditions (§3.3).
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            _ => self.tag().cmp(&other.tag()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            // Ints and equal-valued floats must hash alike because they
            // compare equal; hash integral floats as ints.
            Value::Int(i) => {
                state.write_u8(1);
                state.write_i64(*i);
            }
            Value::Float(f) => {
                if f.fract() == 0.0
                    && f.is_finite()
                    && *f >= i64::MIN as f64
                    && *f <= i64::MAX as f64
                {
                    state.write_u8(1);
                    state.write_i64(*f as i64);
                } else {
                    state.write_u8(2);
                    state.write_u64(f.to_bits());
                }
            }
            Value::Str(s) => {
                state.write_u8(3);
                state.write(s.as_bytes());
            }
            Value::Date(d) => {
                state.write_u8(4);
                state.write_u32(d.0 as u32);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::fx_hash;

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in
            &[(1970, 1, 1), (2000, 2, 29), (1992, 12, 31), (2016, 6, 30), (1900, 3, 1)]
        {
            let date = Date::from_ymd(y, m, d).unwrap();
            assert_eq!(date.to_ymd(), (y, m, d));
        }
    }

    #[test]
    fn date_epoch_is_zero() {
        assert_eq!(Date::from_ymd(1970, 1, 1).unwrap().0, 0);
        assert_eq!(Date::from_ymd(1970, 1, 2).unwrap().0, 1);
    }

    #[test]
    fn date_parse_and_display() {
        let d = Date::parse("1995-03-17").unwrap();
        assert_eq!(d.to_string(), "1995-03-17");
        assert!(Date::parse("1995/03/17").is_err());
        assert!(Date::parse("1995-3-17").is_err());
        assert!(Date::parse("1995-13-17").is_err());
        assert!(Date::parse("xxxx-03-17").is_err());
    }

    #[test]
    fn date_ordering_matches_calendar() {
        let a = Date::parse("1994-01-01").unwrap();
        let b = Date::parse("1994-01-02").unwrap();
        let c = Date::parse("1995-01-01").unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn numeric_cross_type_equality_and_hash() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(fx_hash(&Value::Int(3)), fx_hash(&Value::Float(3.0)));
        assert_ne!(Value::Int(3), Value::Float(3.5));
    }

    #[test]
    fn nan_is_self_equal_key() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert_eq!(fx_hash(&nan), fx_hash(&nan.clone()));
    }

    #[test]
    fn total_order_across_types_is_consistent() {
        let mut vals = [
            Value::str("b"),
            Value::Int(1),
            Value::Null,
            Value::Float(0.5),
            Value::Date(Date(10)),
            Value::str("a"),
        ];
        vals.sort();
        // Null first, then numerics in numeric order, then strings, then dates.
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Float(0.5));
        assert_eq!(vals[2], Value::Int(1));
        assert_eq!(vals[3], Value::str("a"));
        assert_eq!(vals[4], Value::str("b"));
        assert_eq!(vals[5], Value::Date(Date(10)));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(4).as_int().unwrap(), 4);
        assert_eq!(Value::Int(4).as_float().unwrap(), 4.0);
        assert_eq!(Value::str("x").as_str().unwrap(), "x");
        assert!(Value::str("x").as_int().is_err());
        assert!(Value::Null.as_float().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::str("hi").to_string(), "hi");
    }

    #[test]
    fn string_clone_is_cheap_shared() {
        let v = Value::str("payload");
        let w = v.clone();
        if let (Value::Str(a), Value::Str(b)) = (&v, &w) {
            assert!(Arc::ptr_eq(a, b));
        } else {
            panic!("expected strings");
        }
    }
}
