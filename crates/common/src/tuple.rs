//! Tuples: cheaply clonable rows of values.
//!
//! Hypercube partitioning replicates each input tuple to a whole row, column
//! or slice of machines (§3.1), so a tuple clone must be O(1): `Tuple` wraps
//! an `Arc<[Value]>`.

use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

use crate::value::Value;

/// An immutable row of values. Cloning is a reference-count bump.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl FromIterator<Value> for Tuple {
    /// Collect values directly into the shared slice — one allocation,
    /// no intermediate `Vec` (the hot path when materializing rows out of
    /// a columnar chunk).
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Tuple {
        Tuple { values: iter.into_iter().collect() }
    }
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple { values: values.into() }
    }

    /// Number of fields.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Field accessor; panics on out-of-range (schemas are validated at plan
    /// time, so an out-of-range access is an engine bug, not a user error).
    #[inline]
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// All fields.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Project onto the given column indexes, producing a new tuple.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple::new(cols.iter().map(|&c| self.values[c].clone()).collect())
    }

    /// Concatenate two tuples (join output construction).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Tuple::new(v)
    }

    /// Extract the key formed by the given columns (used by groupings,
    /// indexes and group-by).
    pub fn key(&self, cols: &[usize]) -> Vec<Value> {
        cols.iter().map(|&c| self.values[c].clone()).collect()
    }

    /// Approximate heap footprint in bytes, used by memory budgets and the
    /// spill store. Counts inline enum size plus string payloads.
    pub fn approx_bytes(&self) -> usize {
        let inline = self.values.len() * std::mem::size_of::<Value>();
        let strings: usize = self
            .values
            .iter()
            .map(|v| match v {
                Value::Str(s) => s.len(),
                _ => 0,
            })
            .sum();
        inline + strings + std::mem::size_of::<Self>()
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.values.iter()).finish()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

/// Convenience macro: `tuple![1, 2.5, "x"]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tuple![1, "a", 2.5];
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), &Value::Int(1));
        assert_eq!(t.get(1), &Value::str("a"));
        assert_eq!(t.get(2), &Value::Float(2.5));
    }

    #[test]
    fn clone_is_shared() {
        let t = tuple![1, 2, 3];
        let u = t.clone();
        assert!(Arc::ptr_eq(&t.values, &u.values));
    }

    #[test]
    fn project_and_concat() {
        let t = tuple![10, 20, 30];
        let p = t.project(&[2, 0]);
        assert_eq!(p, tuple![30, 10]);
        let c = t.concat(&p);
        assert_eq!(c, tuple![10, 20, 30, 30, 10]);
    }

    #[test]
    fn key_extraction() {
        let t = tuple![1, "k", 3];
        assert_eq!(t.key(&[1]), vec![Value::str("k")]);
        assert_eq!(t.key(&[]), Vec::<Value>::new());
    }

    #[test]
    fn equality_and_hash_are_structural() {
        use crate::hash::fx_hash;
        let a = tuple![1, "x"];
        let b = tuple![1, "x"];
        assert_eq!(a, b);
        assert_eq!(fx_hash(&a), fx_hash(&b));
        assert_ne!(a, tuple![1, "y"]);
    }

    #[test]
    fn approx_bytes_counts_strings() {
        let short = tuple![1];
        let long = tuple!["aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"];
        assert!(long.approx_bytes() > short.approx_bytes());
    }

    #[test]
    fn display_formats_row() {
        assert_eq!(tuple![1, "a"].to_string(), "(1, a)");
    }
}
