//! Offline stand-in for [criterion.rs](https://github.com/bheisler/criterion.rs).
//!
//! Implements the subset of the criterion API the squall benches use —
//! benchmark groups, `bench_function` / `bench_with_input`, `Bencher::iter`
//! — with plain wall-clock timing (mean and min over `sample_size` runs)
//! printed as a table. No statistical analysis, no outlier detection, no
//! HTML reports. See `crates/shims/README.md` for why this exists.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to each registered benchmark function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        println!("\n== {name} ==");
        BenchmarkGroup { _c: self, name, sample_size }
    }

    /// Ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.default_sample_size, f);
        self
    }
}

/// A named benchmark group; benchmarks print as `group/bench[/param]`.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Samples (full closure runs) per benchmark. Criterion proper insists
    /// on >= 10; here any positive value works.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to the benchmark closure; `iter` times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` `sample_size` times, recording each run's wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = f();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { samples: Vec::with_capacity(sample_size), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<55} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!("{label:<55} mean {mean:>12.3?}   min {min:>12.3?}   ({} samples)", b.samples.len());
}

/// Re-export of `std::hint::black_box` under criterion's historical name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("counting", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("q", 7).to_string(), "q/7");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
