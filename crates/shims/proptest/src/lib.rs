//! Offline stand-in for [proptest](https://github.com/proptest-rs/proptest).
//!
//! Provides the subset of the proptest API squall's property tests use:
//! the `proptest!` macro over functions with `param in strategy`
//! arguments, integer-range strategies, `collection::vec`, and the
//! `prop_assert*` macros. Sampling is deterministic (seeded from the test
//! name), there is no shrinking, and a failing case panics with the plain
//! assertion message. See `crates/shims/README.md`.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Produces one sampled value per test case.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                Strategy::sample(&self.size, rng)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Run configuration; only `cases` matters to the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
        /// Accepted for source compatibility; unused by the shim.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256, max_global_rejects: 65_536 }
        }
    }

    /// Deterministic splitmix64 generator, seeded from the test name so
    /// every property sees a stable but distinct stream.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> TestRng {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut proptest_rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _proptest_case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut proptest_rng);
                    )*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(
            a in -50i64..50,
            b in 1usize..9,
            c in 0u8..3,
        ) {
            prop_assert!((-50..50).contains(&a));
            prop_assert!((1..9).contains(&b));
            prop_assert!(c < 3);
        }

        #[test]
        fn vec_strategy_respects_sizes(
            v in crate::collection::vec(0i64..10, 2..5),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
