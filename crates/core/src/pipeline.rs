//! Pipelines of 2-way joins — the baseline the multi-way hypercube
//! operators are compared against (§3, §7.2, Figure 6).
//!
//! "We also run the corresponding pipelines of 2-way joins, where each
//! 2-way join uses hash partitioning in the case of skew-free equi-joins,
//! otherwise it uses the 1-Bucket partitioning." The pipeline builds a
//! left-deep chain: stage k joins the accumulated prefix with the next
//! relation, shuffling the (possibly very large) intermediate result over
//! the network — exactly the cost multi-way joins avoid.

use std::sync::Arc;

use squall_common::{FxHashMap, Result, Schema, SquallError, Tuple};
use squall_expr::join_cond::CmpOp;
use squall_expr::{JoinAtom, MultiJoinSpec, RelationDef};
use squall_join::{DBToasterJoin, LocalJoin, TraditionalJoin};
use squall_partition::onebucket::matrix_scheme;
use squall_partition::HypercubeScheme;
use squall_runtime::{Grouping, IterSpoutVec, TopologyBuilder};

use crate::driver::{JoinReport, LocalJoinKind};
use crate::operators::{JoinBolt, JoinEmit};

/// Run the left-deep pipeline of 2-way joins for `spec`, joining relations
/// in the given `order` (must be a permutation of all relations such that
/// every prefix is connected).
///
/// Each stage uses hash partitioning when equi atoms connect the sides and
/// every key is skew-free; otherwise the 1-Bucket matrix. Returns the same
/// [`JoinReport`] as the multi-way driver so the two are directly
/// comparable; `loads` are the *last* stage's machine loads and
/// `network_factor` captures the intermediate shuffling the pipeline pays.
pub fn run_pipeline(
    spec: &MultiJoinSpec,
    mut data: Vec<Vec<Tuple>>,
    order: &[usize],
    machines_per_stage: usize,
    local: LocalJoinKind,
    collect_results: bool,
) -> Result<JoinReport> {
    let n = spec.n_relations();
    if order.len() != n || n < 2 {
        return Err(SquallError::InvalidPlan("pipeline order must cover all ≥2 relations".into()));
    }
    if data.len() != n {
        return Err(SquallError::InvalidPlan("one data stream per relation required".into()));
    }

    // col_base[rel] = offset of `rel`'s columns in the *relation-ordered*
    // output (what the multi-way driver produces), used to permute the
    // pipeline's order-dependent layout back for comparability.
    let mut col_base = vec![0usize; n];
    let mut off = 0;
    for (rel, base) in col_base.iter_mut().enumerate() {
        *base = off;
        off += spec.relations[rel].schema.arity();
    }

    let input_count: u64 = data.iter().map(|d| d.len() as u64).sum();
    let mut b = TopologyBuilder::new();
    let mut source_nodes = vec![usize::MAX; n];
    for (rel, tuples) in data.drain(..).enumerate() {
        let shared = Arc::new(tuples);
        source_nodes[rel] =
            b.add_spout(format!("src-{}", spec.relations[rel].name), 1, move |task| {
                Box::new(IterSpoutVec::strided(Arc::clone(&shared), task, 1))
            });
    }

    // Stages: prefix(order[..k]) ⋈ order[k].
    let mut prev_node = source_nodes[order[0]];
    let mut prefix: Vec<usize> = vec![order[0]];
    let mut prefix_schema: Schema = spec.relations[order[0]].schema.clone();
    let mut stage_nodes = Vec::new();
    for &next in &order[1..] {
        // Atoms between the prefix and `next`, remapped: prefix side uses
        // the position inside prefix_schema, next side its own columns.
        let mut atoms = Vec::new();
        let mut prefix_offset_of = FxHashMap::default();
        {
            let mut off = 0;
            for &r in &prefix {
                prefix_offset_of.insert(r, off);
                off += spec.relations[r].schema.arity();
            }
        }
        for a in &spec.atoms {
            let (p_rel, p_col, op, n_col) = if prefix.contains(&a.left_rel) && a.right_rel == next {
                (a.left_rel, a.left_col, a.op, a.right_col)
            } else if prefix.contains(&a.right_rel) && a.left_rel == next {
                (a.right_rel, a.right_col, a.op.flip(), a.left_col)
            } else {
                continue;
            };
            atoms.push(JoinAtom {
                left_rel: 0,
                left_col: prefix_offset_of[&p_rel] + p_col,
                op,
                right_rel: 1,
                right_col: n_col,
            });
        }
        if atoms.is_empty() {
            return Err(SquallError::InvalidPlan(format!(
                "pipeline prefix disconnected from relation {next}"
            )));
        }
        let next_schema = spec.relations[next].schema.clone();
        let stage_spec = MultiJoinSpec::new(
            vec![
                RelationDef::new("prefix", prefix_schema.clone(), 0),
                RelationDef::new(spec.relations[next].name.clone(), next_schema.clone(), 0),
            ],
            atoms.clone(),
        )?;

        // Partitioning: hash on the equi keys when possible & skew-free,
        // else 1-Bucket.
        let equi: Vec<(usize, usize)> =
            atoms.iter().filter(|a| a.op == CmpOp::Eq).map(|a| (a.left_col, a.right_col)).collect();
        let skew_free = atoms.iter().filter(|a| a.op == CmpOp::Eq).all(|a| {
            stage_spec.relations[0].schema.field(a.left_col).skew_free
                && stage_spec.relations[1].schema.field(a.right_col).skew_free
        });
        let use_hash = !equi.is_empty() && skew_free;
        let one_bucket: Option<Arc<HypercubeScheme>> = if use_hash {
            None
        } else {
            // Shape by observed sizes is unknown here; square matrix.
            let side = (machines_per_stage as f64).sqrt().floor().max(1.0) as usize;
            Some(Arc::new(matrix_scheme(side, machines_per_stage / side, 77)))
        };

        let last_stage = prefix.len() + 1 == n;
        let emit =
            if last_stage && !collect_results { JoinEmit::CountOnly } else { JoinEmit::Results };
        let stage_spec_arc = Arc::new(stage_spec);
        let prev = prev_node;
        let next_src = source_nodes[next];
        let spec_for_bolt = Arc::clone(&stage_spec_arc);
        let local_kind = local;
        let node = b.add_bolt(
            format!("join-{}", spec.relations[next].name),
            machines_per_stage,
            move |task| {
                let join: Box<dyn LocalJoin> = match local_kind {
                    LocalJoinKind::Traditional => Box::new(TraditionalJoin::new(&spec_for_bolt)),
                    LocalJoinKind::DBToaster => Box::new(DBToasterJoin::new(&spec_for_bolt)),
                };
                let mut map = FxHashMap::default();
                map.insert(prev, 0usize);
                map.insert(next_src, 1usize);
                Box::new(JoinBolt::new(task, map, join, 2, emit))
            },
        );
        match one_bucket {
            None => {
                let left_cols: Vec<usize> = equi.iter().map(|&(l, _)| l).collect();
                let right_cols: Vec<usize> = equi.iter().map(|&(_, r)| r).collect();
                b.connect(prev, node, Grouping::Fields(left_cols));
                b.connect(next_src, node, Grouping::Fields(right_cols));
            }
            Some(scheme) => {
                b.connect(prev, node, Grouping::Custom(Arc::new(scheme.grouping_for(0))));
                b.connect(next_src, node, Grouping::Custom(Arc::new(scheme.grouping_for(1))));
            }
        }
        stage_nodes.push(node);
        prev_node = node;
        prefix_schema = prefix_schema.concat(&next_schema);
        prefix.push(next);
    }

    let outcome = b.build()?.run();
    let metrics = &outcome.metrics;
    let last = *stage_nodes.last().expect("≥1 stage");
    let last_metrics = metrics.node(last);
    let result_count = if collect_results {
        last_metrics.total_emitted()
    } else {
        outcome.outputs.iter().map(|(_, t)| t.get(0).as_int().unwrap_or(0) as u64).sum()
    };
    // Permute each result back to relation order so reports are comparable
    // with the multi-way driver.
    let mut results: Vec<Tuple> = Vec::new();
    if collect_results {
        let perm: Vec<(usize, usize)> =
            (0..n).map(|rel| (col_base[rel], spec.relations[rel].schema.arity())).collect();
        // The pipeline output lays columns out in `order`; compute where
        // each relation starts there.
        let mut order_off = FxHashMap::default();
        let mut off = 0;
        for &r in order {
            order_off.insert(r, off);
            off += spec.relations[r].schema.arity();
        }
        for (_, t) in &outcome.outputs {
            let mut values = vec![squall_common::Value::Null; t.arity()];
            for rel in 0..n {
                let (dst, len) = perm[rel];
                let src = order_off[&rel];
                for k in 0..len {
                    values[dst + k] = t.get(src + k).clone();
                }
            }
            results.push(Tuple::new(values));
        }
    }
    let sources: Vec<usize> = source_nodes.clone();
    Ok(JoinReport {
        results,
        result_count,
        input_count,
        input_counts: Vec::new(),
        loads: last_metrics.received.clone(),
        replication_factor: metrics.replication_factor(
            last,
            &[
                stage_nodes
                    .len()
                    .checked_sub(2)
                    .map(|i| stage_nodes[i])
                    .unwrap_or(source_nodes[order[0]]),
                source_nodes[*order.last().unwrap()],
            ],
        ),
        skew_degree: last_metrics.skew_degree(),
        network_factor: metrics.intermediate_network_factor(&sources, &[last]),
        elapsed: outcome.elapsed,
        scheme_description: "pipeline-of-2-way".into(),
        scheduler: outcome.metrics.scheduler.clone(),
        error: outcome.error,
        transport: None,
        maintenance: None,
    })
}

/// Total tuples shuffled over the network by a run — the Figure 6
/// comparison quantity ("total network transfer due to reshuffling data").
pub fn total_shuffled(report: &JoinReport) -> u64 {
    report.loads.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_multiway, MultiwayConfig};
    use squall_common::{tuple, DataType, SplitMix64};
    use squall_join::naive::{naive_join, same_multiset};
    use squall_partition::optimizer::SchemeKind;

    fn chain3() -> MultiJoinSpec {
        let mk = |n: &str| {
            RelationDef::new(n, Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]), 100)
        };
        MultiJoinSpec::new(
            vec![mk("R"), mk("S"), mk("T")],
            vec![JoinAtom::eq(0, 1, 1, 0), JoinAtom::eq(1, 1, 2, 0)],
        )
        .unwrap()
    }

    fn rand_data(n: usize, dom: i64, seed: u64) -> Vec<Vec<Tuple>> {
        let mut rng = SplitMix64::new(seed);
        (0..3)
            .map(|_| {
                (0..n).map(|_| tuple![rng.next_range(0, dom), rng.next_range(0, dom)]).collect()
            })
            .collect()
    }

    #[test]
    fn pipeline_matches_oracle_and_multiway() {
        let spec = chain3();
        let data = rand_data(100, 10, 3);
        let oracle = naive_join(&spec, &data);
        let pipe = run_pipeline(&spec, data.clone(), &[0, 1, 2], 4, LocalJoinKind::DBToaster, true)
            .unwrap();
        assert!(pipe.error.is_none());
        assert!(
            same_multiset(&pipe.results, &oracle),
            "pipeline {} vs oracle {}",
            pipe.results.len(),
            oracle.len()
        );
        let multi = run_multiway(
            &spec,
            data,
            &MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, 4),
        )
        .unwrap();
        assert!(same_multiset(&pipe.results, &multi.results));
    }

    #[test]
    fn pipeline_respects_join_order() {
        let spec = chain3();
        let data = rand_data(60, 8, 5);
        let oracle = naive_join(&spec, &data);
        // Reverse order T, S, R is also a connected left-deep chain.
        let pipe =
            run_pipeline(&spec, data, &[2, 1, 0], 4, LocalJoinKind::Traditional, true).unwrap();
        assert!(same_multiset(&pipe.results, &oracle));
    }

    #[test]
    fn disconnected_order_rejected() {
        let spec = chain3();
        let data = rand_data(10, 4, 6);
        // R then T leaves the prefix disconnected from T (no R-T atoms).
        assert!(run_pipeline(&spec, data, &[0, 2, 1], 2, LocalJoinKind::DBToaster, true).is_err());
    }

    #[test]
    fn multiway_shuffles_fewer_tuples_when_intermediates_blow_up() {
        // The Figure 6 phenomenon: self-join chains over a graph-like
        // relation produce huge intermediate results; the pipeline ships
        // them, the hypercube does not.
        let mut rng = SplitMix64::new(9);
        // Power-law-ish: few hub keys with many edges.
        let edges: Vec<Tuple> = (0..400)
            .map(|_| {
                let a = if rng.next_f64() < 0.3 { 0 } else { rng.next_range(0, 40) };
                let b = if rng.next_f64() < 0.3 { 0 } else { rng.next_range(0, 40) };
                tuple![a, b]
            })
            .collect();
        let spec = chain3();
        let data = vec![edges.clone(), edges.clone(), edges.clone()];
        let multi = run_multiway(
            &spec,
            data.clone(),
            &MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, 9).count_only(),
        )
        .unwrap();
        let pipe =
            run_pipeline(&spec, data, &[0, 1, 2], 9, LocalJoinKind::DBToaster, false).unwrap();
        assert_eq!(multi.result_count, pipe.result_count, "same query answer");
        assert!(
            multi.network_factor < pipe.network_factor,
            "multi-way {} vs pipeline {} network factor",
            multi.network_factor,
            pipe.network_factor
        );
    }

    #[test]
    fn pipeline_count_only() {
        let spec = chain3();
        let data = rand_data(80, 8, 12);
        let oracle = naive_join(&spec, &data);
        let pipe =
            run_pipeline(&spec, data, &[0, 1, 2], 3, LocalJoinKind::DBToaster, false).unwrap();
        assert!(pipe.results.is_empty());
        assert_eq!(pipe.result_count, oracle.len() as u64);
    }
}
