//! Physical operators: the bolts Squall installs into topologies.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use squall_common::array::Array;
use squall_common::{Chunk, ChunkBuilder, FxHashMap, Result, SquallError, Tuple, Value};
use squall_expr::ScalarExpr;
use squall_join::{AggSpec, GroupByAggregator, LocalJoin, WindowJoin, WindowSpec};
use squall_runtime::{Bolt, NodeId, OutputCollector};

/// Selection + projection in one bolt (Squall co-locates these with the
/// data source whenever possible, §2; a standalone bolt is used when the
/// optimizer cannot).
pub struct SelectProjectBolt {
    /// Optional predicate; tuples failing it are dropped.
    pub predicate: Option<ScalarExpr>,
    /// Optional projection expressions; `None` passes tuples through.
    pub projections: Option<Vec<ScalarExpr>>,
}

impl SelectProjectBolt {
    pub fn select(predicate: ScalarExpr) -> SelectProjectBolt {
        SelectProjectBolt { predicate: Some(predicate), projections: None }
    }

    pub fn project(projections: Vec<ScalarExpr>) -> SelectProjectBolt {
        SelectProjectBolt { predicate: None, projections: Some(projections) }
    }

    /// Apply to one tuple without a runtime (used by tests and the naive
    /// executor).
    pub fn apply(&self, tuple: &Tuple) -> Result<Option<Tuple>> {
        if let Some(p) = &self.predicate {
            if !p.eval_bool(tuple)? {
                return Ok(None);
            }
        }
        match &self.projections {
            None => Ok(Some(tuple.clone())),
            Some(exprs) => {
                let mut values = Vec::with_capacity(exprs.len());
                for e in exprs {
                    values.push(e.eval(tuple)?);
                }
                Ok(Some(Tuple::new(values)))
            }
        }
    }
}

impl SelectProjectBolt {
    /// Evaluate the projection expressions column-at-a-time over `chunk`
    /// and emit one output row per input row.
    fn project_chunk(exprs: &[ScalarExpr], chunk: &Chunk, out: &mut OutputCollector) -> Result<()> {
        let mut arrays = Vec::with_capacity(exprs.len());
        for e in exprs {
            arrays.push(e.eval_chunk(chunk)?);
        }
        for i in 0..chunk.n_rows() {
            out.emit(Tuple::new(arrays.iter().map(|a| a.value(i)).collect::<Vec<_>>()));
        }
        Ok(())
    }
}

impl Bolt for SelectProjectBolt {
    fn execute(&mut self, _origin: NodeId, tuple: Tuple, out: &mut OutputCollector) -> Result<()> {
        if let Some(t) = self.apply(&tuple)? {
            out.emit(t);
        }
        Ok(())
    }

    fn execute_chunk(
        &mut self,
        _origin: NodeId,
        chunk: &Chunk,
        out: &mut OutputCollector,
    ) -> Result<()> {
        if chunk.n_rows() == 0 {
            return Ok(());
        }
        match (&self.predicate, &self.projections) {
            (None, None) => {
                for t in chunk.rows() {
                    out.emit(t);
                }
            }
            (None, Some(exprs)) => Self::project_chunk(exprs, chunk, out)?,
            (Some(p), projections) => {
                let mask = p.eval_bool_chunk(chunk)?;
                match projections {
                    None => {
                        for (i, keep) in mask.iter().enumerate() {
                            if *keep {
                                out.emit(chunk.row(i));
                            }
                        }
                    }
                    Some(exprs) => {
                        // Compact survivors *before* projecting: the row
                        // path never evaluates projections on filtered-out
                        // rows, so neither may we (a projection that only
                        // fails on dropped rows must stay silent).
                        let mut survivors = ChunkBuilder::new();
                        for (i, keep) in mask.iter().enumerate() {
                            if *keep {
                                survivors.push(&chunk.row(i));
                            }
                        }
                        let sub = survivors.finish();
                        if sub.n_rows() > 0 {
                            Self::project_chunk(exprs, &sub, out)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// How a join task exposes its results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinEmit {
    /// Emit every result tuple downstream (needed when an aggregate or
    /// another operator consumes the join).
    Results,
    /// Emit only a per-task `(count)` tuple at end-of-stream — the mode
    /// used for result-count benchmarks where materializing output would
    /// dominate.
    CountOnly,
}

/// Exactly-once ownership predicate for range schemes:
/// `f(relation_of_last_arrival, result) -> keep`.
pub type OwnerFilter = Box<dyn Fn(usize, &Tuple) -> bool + Send>;

/// The distributed join task: one [`LocalJoin`] instance per machine
/// (task), fed by the partitioning scheme's groupings. With a hypercube
/// grouping and a [`squall_join::DBToasterJoin`] inside, this is the HyLD
/// operator of §3.4.
pub struct JoinBolt {
    /// Maps the upstream node that emitted a tuple to its relation index.
    origin_to_rel: FxHashMap<NodeId, usize>,
    join: WindowJoin<Box<dyn LocalJoin>>,
    /// `tuple[ts_cols[rel]]` supplies the window timestamp; empty for
    /// full-history semantics (timestamps then count arrivals).
    ts_cols: Vec<Option<usize>>,
    arrivals: u64,
    emit: JoinEmit,
    /// Per-machine stored-tuple budget (the §7.3 memory-overflow
    /// experiments); `None` = unlimited.
    budget: Option<usize>,
    /// Optional exactly-once ownership filter for range schemes (M-Bucket
    /// / EWH assign *cells*, so a machine owning several cells of a row
    /// must keep only the pairs it owns).
    owner_filter: Option<OwnerFilter>,
    machine: usize,
    buf: Vec<Tuple>,
    wbuf: Vec<(Tuple, i64)>,
    results: u64,
    /// Event-time mode with a windowed aggregate downstream: forward the
    /// bolt's watermark whenever it advances by at least this granule
    /// (plus a final `u64::MAX` at end-of-stream). `None` = no forwarding.
    wm_granule: Option<u64>,
    /// Next watermark value at which a forward is due.
    next_wm: u64,
}

impl JoinBolt {
    /// A full-history join bolt.
    pub fn new(
        machine: usize,
        origin_to_rel: FxHashMap<NodeId, usize>,
        join: Box<dyn LocalJoin>,
        n_relations: usize,
        emit: JoinEmit,
    ) -> JoinBolt {
        JoinBolt {
            origin_to_rel,
            join: WindowJoin::new(join, n_relations, WindowSpec::FullHistory),
            ts_cols: vec![None; n_relations],
            arrivals: 0,
            emit,
            budget: None,
            owner_filter: None,
            machine,
            buf: Vec::new(),
            wbuf: Vec::new(),
            results: 0,
            wm_granule: None,
            next_wm: 0,
        }
    }

    /// A windowed join bolt under *event-time* semantics: `ts_cols[rel]`
    /// names the timestamp column and `arities[rel]` the tuple width of
    /// each relation (both in the bolt's input coordinates). State is
    /// evicted by the cross-relation watermark and every emitted result is
    /// filtered by the window predicate over its constituent timestamps,
    /// so the produced rows are a pure function of the timestamped inputs
    /// no matter how the relations interleave.
    pub fn new_windowed(
        machine: usize,
        origin_to_rel: FxHashMap<NodeId, usize>,
        join: Box<dyn LocalJoin>,
        emit: JoinEmit,
        spec: WindowSpec,
        ts_cols: Vec<usize>,
        arities: &[usize],
    ) -> JoinBolt {
        JoinBolt {
            origin_to_rel,
            join: WindowJoin::event_time(join, spec, arities, &ts_cols),
            ts_cols: ts_cols.into_iter().map(Some).collect(),
            arrivals: 0,
            emit,
            budget: None,
            owner_filter: None,
            machine,
            buf: Vec::new(),
            wbuf: Vec::new(),
            results: 0,
            wm_granule: None,
            next_wm: 0,
        }
    }

    /// Forward this task's event-time watermark downstream whenever it
    /// advances by at least `granule` time units, plus a final `u64::MAX`
    /// watermark at end-of-stream. Windowed aggregation downstream closes
    /// windows on the minimum forwarded watermark across all join tasks;
    /// the granule throttles how often scatter buffers are flushed for a
    /// watermark (one window length is the natural choice). Event-time
    /// bolts only.
    pub fn with_watermark_forwarding(mut self, granule: u64) -> JoinBolt {
        assert!(self.join.is_event_time(), "watermark forwarding needs event-time windows");
        self.wm_granule = Some(granule.max(1));
        self
    }

    pub fn with_budget(mut self, budget: usize) -> JoinBolt {
        self.budget = Some(budget);
        self
    }

    /// Exactly-once filter: `f(relation_of_last_arrival, result)` must
    /// return true for the bolt to emit (range-scheme cell ownership).
    pub fn with_owner_filter(mut self, f: OwnerFilter) -> JoinBolt {
        self.owner_filter = Some(f);
        self
    }

    pub fn results(&self) -> u64 {
        self.results
    }

    fn rel_of(&self, origin: NodeId) -> Result<usize> {
        self.origin_to_rel
            .get(&origin)
            .copied()
            .ok_or_else(|| SquallError::Runtime(format!("unknown origin node {origin}")))
    }

    /// Process one arrival whose relation is already resolved — the
    /// per-tuple body shared by [`Bolt::execute`] and the chunked path
    /// (which resolves the relation once per chunk).
    fn step(&mut self, rel: usize, tuple: Tuple, out: &mut OutputCollector) -> Result<()> {
        self.arrivals += 1;
        let ts = match self.ts_cols[rel] {
            Some(c) => tuple.get(c).as_int()? as u64,
            None => self.arrivals,
        };
        if self.emit == JoinEmit::CountOnly
            && self.owner_filter.is_none()
            && !self.join.is_event_time()
        {
            // Weighted fast path: aggregated DBToaster views report
            // (tuple, multiplicity) deltas without materializing hot-key
            // outputs (§3.3).
            self.wbuf.clear();
            self.join.insert_weighted(rel, ts, &tuple, &mut self.wbuf);
            self.results += self.wbuf.iter().map(|(_, m)| *m.max(&0) as u64).sum::<u64>();
        } else {
            self.buf.clear();
            self.join.insert(rel, ts, &tuple, &mut self.buf);
            if let Some(filter) = &self.owner_filter {
                self.buf.retain(|t| filter(rel, t));
            }
            self.results += self.buf.len() as u64;
            if self.emit == JoinEmit::Results {
                for t in self.buf.drain(..) {
                    out.emit(t);
                }
            }
        }
        if let Some(granule) = self.wm_granule {
            // Watermark forwarding: the results emitted above all carry
            // event time ≥ the bolt's watermark, so promising it downstream
            // is safe; the granule batches promises so buffers are not
            // flushed on every arrival.
            if let Some(w) = self.join.watermark() {
                if w >= self.next_wm {
                    out.emit_watermark(w);
                    self.next_wm = w.saturating_add(granule);
                }
            }
        }
        if let Some(budget) = self.budget {
            let stored = self.join.inner().stored();
            if stored > budget {
                return Err(SquallError::MemoryOverflow { machine: self.machine, stored, budget });
            }
        }
        Ok(())
    }
}

impl Bolt for JoinBolt {
    fn execute(&mut self, origin: NodeId, tuple: Tuple, out: &mut OutputCollector) -> Result<()> {
        let rel = self.rel_of(origin)?;
        self.step(rel, tuple, out)
    }

    fn execute_chunk(
        &mut self,
        origin: NodeId,
        chunk: &Chunk,
        out: &mut OutputCollector,
    ) -> Result<()> {
        // One relation lookup per chunk: every tuple in a batch shares its
        // origin node, so the per-row hash-map probe of the row path is
        // pure overhead here.
        let rel = self.rel_of(origin)?;
        for tuple in chunk.rows() {
            self.step(rel, tuple, out)?;
        }
        Ok(())
    }

    fn finish(&mut self, out: &mut OutputCollector) -> Result<()> {
        if self.wm_granule.is_some() {
            // This task will never emit again: release downstream windows
            // unconditionally (a task that saw no data for some relation
            // never advanced its watermark — without this, windowed
            // aggregation could only close windows at its own finish).
            out.emit_watermark(u64::MAX);
        }
        if self.emit == JoinEmit::CountOnly {
            out.emit(squall_common::tuple![self.results as i64]);
        }
        Ok(())
    }
}

/// The aggregation task: online (emit the refreshed group row on every
/// update — full-history IVM semantics) or final (emit the snapshot at
/// end-of-stream, the mode batch-style tests and benches use).
pub struct AggBolt {
    agg: GroupByAggregator,
    online: bool,
}

impl AggBolt {
    pub fn new(group_cols: Vec<usize>, aggs: Vec<AggSpec>, online: bool) -> AggBolt {
        AggBolt { agg: GroupByAggregator::new(group_cols, aggs), online }
    }
}

impl Bolt for AggBolt {
    fn execute(&mut self, _origin: NodeId, tuple: Tuple, out: &mut OutputCollector) -> Result<()> {
        let row = self.agg.update(&tuple)?;
        if self.online {
            out.emit(row);
        }
        Ok(())
    }

    fn execute_chunk(
        &mut self,
        _origin: NodeId,
        chunk: &Chunk,
        out: &mut OutputCollector,
    ) -> Result<()> {
        if self.online {
            let mut emit = |row: Tuple| out.emit(row);
            self.agg.update_chunk(chunk, Some(&mut emit))
        } else {
            // Final-mode aggregation never looks at the per-update output
            // rows, so the chunked path skips building them entirely.
            self.agg.update_chunk(chunk, None)
        }
    }

    fn finish(&mut self, out: &mut OutputCollector) -> Result<()> {
        if !self.online {
            for row in self.agg.snapshot() {
                out.emit(row);
            }
        }
        Ok(())
    }
}

/// Per-window aggregation: the windowed mode of the aggregation component
/// (§2 "window semantics for its operators" — the window applied to the
/// *aggregate*, not just the join).
///
/// State is keyed by `(window_start, group key)`: each incoming join
/// result is folded into every window it belongs to —
///
/// * **tumbling `width`** — exactly one window, `[k·width, (k+1)·width)`
///   where `k = ⌊ts/width⌋` (the window predicate upstream guarantees all
///   constituent timestamps share the bucket);
/// * **sliding `size`** — every window `[s, s+size]` (inclusive, matching
///   the join's `max − min ≤ size` predicate) that contains *all*
///   constituent timestamps: `s ∈ [max−size, min]`, one window per time
///   unit, so adjacent windows overlap.
///
/// A window is **closed** — its rows finalized and emitted, its state
/// dropped — once the minimum watermark across every upstream join task
/// guarantees no further result can fall into it (tumbling: watermark
/// reached the next bucket; sliding: `start < watermark − size`). Closed
/// windows are emitted in ascending `window_start` order, each row shaped
/// `(window_start, window_end, group…, agg…)` with both bounds inclusive,
/// and the remaining windows flush — still in order — at end-of-stream.
///
/// The bolt runs **group-hash sharded**: a `Fields` grouping on the group
/// columns routes every row of a group to one task, so each shard holds
/// `(window_start, group)` state for its groups only and closes windows
/// against its own copy of the cross-task join watermark (watermarks
/// broadcast, so every shard sees every join task's frontier). After
/// closing below a boundary the shard forwards that boundary downstream —
/// the promise "all my future rows have `window_start ≥ boundary`" that
/// [`WindowMergeBolt`] turns back into the global window-order contract.
pub struct WindowedAggBolt {
    spec: WindowSpec,
    /// Positions of each relation's event-time column in the join-output
    /// row (results are concatenated in relation order).
    ts_cols: Vec<usize>,
    group_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    /// Open windows by start, each with its own group-by state.
    windows: BTreeMap<u64, GroupByAggregator>,
    /// Latest watermark per upstream task `(node, task)`.
    frontiers: FxHashMap<(NodeId, usize), u64>,
    /// Upstream task count; window closing waits until every task has
    /// promised a frontier (before that no minimum is meaningful).
    n_upstream: usize,
    /// Every window with `start` below this has been emitted; a data row
    /// for such a window would violate the watermark contract.
    closed_before: u64,
    /// Highest window-start boundary forwarded downstream (to the merge
    /// sink); forwards are suppressed until the boundary advances.
    forwarded: u64,
    /// Scratch for closed-window rows between close and emit.
    drain: Vec<Tuple>,
}

impl WindowedAggBolt {
    /// `ts_cols` are the constituent event-time columns in join-output
    /// coordinates; `n_upstream` is the join component's parallelism.
    pub fn new(
        spec: WindowSpec,
        ts_cols: Vec<usize>,
        group_cols: Vec<usize>,
        aggs: Vec<AggSpec>,
        n_upstream: usize,
    ) -> WindowedAggBolt {
        assert!(
            !matches!(spec, WindowSpec::FullHistory),
            "per-window aggregation needs a bounded window shape"
        );
        assert!(!ts_cols.is_empty(), "event-time columns required");
        assert!(n_upstream > 0);
        WindowedAggBolt {
            spec,
            ts_cols,
            group_cols,
            aggs,
            windows: BTreeMap::new(),
            frontiers: FxHashMap::default(),
            n_upstream,
            closed_before: 0,
            forwarded: 0,
            drain: Vec::new(),
        }
    }

    /// Inclusive end of the window starting at `start`.
    fn window_end(&self, start: u64) -> u64 {
        match self.spec {
            WindowSpec::Tumbling { width } => start + width - 1,
            WindowSpec::Sliding { size } => start + size,
            WindowSpec::FullHistory => unreachable!("rejected at construction"),
        }
    }

    /// Close every window with `start < boundary` into `rows`, in window
    /// order — the collector-free face of the close path, shared by the
    /// runtime wrapper below and by benchmarks driving the bare kernel.
    pub fn close_into(&mut self, boundary: u64, rows: &mut Vec<Tuple>) {
        while let Some(entry) = self.windows.first_entry() {
            if *entry.key() >= boundary {
                break;
            }
            let (start, agg) = entry.remove_entry();
            let end = self.window_end(start);
            for row in agg.snapshot() {
                let mut values = Vec::with_capacity(2 + row.arity());
                values.push(Value::Int(start as i64));
                values.push(Value::Int(end as i64));
                values.extend(row.values().iter().cloned());
                rows.push(Tuple::new(values));
            }
        }
        self.closed_before = self.closed_before.max(boundary);
    }

    /// Open windows (testing / introspection).
    pub fn open_windows(&self) -> usize {
        self.windows.len()
    }

    /// The window-start range a result with constituent-timestamp extrema
    /// `[lo, hi]` folds into (see the type docs), with the late-data check.
    fn window_range(&self, lo: u64, hi: u64) -> Result<(u64, u64)> {
        let (first, last) = match self.spec {
            WindowSpec::Tumbling { width } => {
                debug_assert_eq!(lo / width, hi / width, "join window predicate violated");
                let start = hi / width * width;
                (start, start)
            }
            WindowSpec::Sliding { size } => (hi.saturating_sub(size), lo),
            WindowSpec::FullHistory => unreachable!("rejected at construction"),
        };
        if first < self.closed_before {
            return Err(SquallError::Runtime(format!(
                "late join result for closed window {first} (closed below {})",
                self.closed_before
            )));
        }
        Ok((first, last))
    }

    /// Fold one join result row into every window it belongs to (the
    /// per-row insert path).
    pub fn insert_row(&mut self, tuple: &Tuple) -> Result<()> {
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for &c in &self.ts_cols {
            let v = tuple.get(c).as_int()?;
            if v < 0 {
                return Err(SquallError::Runtime(format!(
                    "negative event-time timestamp {v} in aggregate input"
                )));
            }
            lo = lo.min(v as u64);
            hi = hi.max(v as u64);
        }
        let (first, last) = self.window_range(lo, hi)?;
        for start in first..=last {
            self.windows
                .entry(start)
                .or_insert_with(|| {
                    GroupByAggregator::new(self.group_cols.clone(), self.aggs.clone())
                })
                .update(tuple)?;
        }
        Ok(())
    }

    /// Fold one columnar chunk of join results in without materializing a
    /// single per-row [`Tuple`]: window bounds run over the timestamp
    /// columns (straight over the i64 slice when fully-valid Int),
    /// aggregate input expressions evaluate once per chunk, and each row
    /// folds into its windows from the resulting arrays via
    /// [`GroupByAggregator::accumulate`] — the columnar insert kernel that
    /// replaces per-row `chunk.row(i)` + expression re-evaluation.
    pub fn insert_chunk(&mut self, chunk: &Chunk) -> Result<()> {
        let rows = chunk.n_rows();
        if rows == 0 {
            return Ok(());
        }
        let mut lo = vec![u64::MAX; rows];
        let mut hi = vec![0u64; rows];
        for &c in &self.ts_cols {
            let col = chunk.column(c);
            let plain = col.as_i64().filter(|a| a.validity().is_none()).map(|a| a.values());
            for i in 0..rows {
                let v = match plain {
                    Some(vals) => vals[i],
                    None => col.value(i).as_int()?,
                };
                if v < 0 {
                    return Err(SquallError::Runtime(format!(
                        "negative event-time timestamp {v} in aggregate input"
                    )));
                }
                lo[i] = lo[i].min(v as u64);
                hi[i] = hi[i].max(v as u64);
            }
        }
        // Aggregate inputs, column-at-a-time, once per chunk.
        let mut inputs: Vec<Option<Array>> = Vec::with_capacity(self.aggs.len());
        for a in &self.aggs {
            inputs.push(match &a.input {
                Some(e) => Some(e.eval_chunk(chunk)?),
                None => None,
            });
        }
        let mut key: Vec<Value> = Vec::with_capacity(self.group_cols.len());
        let mut vals: Vec<Option<Value>> = Vec::with_capacity(self.aggs.len());
        for i in 0..rows {
            let (first, last) = self.window_range(lo[i], hi[i])?;
            key.clear();
            for &c in &self.group_cols {
                key.push(chunk.column(c).value(i));
            }
            vals.clear();
            for a in &inputs {
                vals.push(a.as_ref().map(|arr| arr.value(i)));
            }
            for start in first..=last {
                self.windows
                    .entry(start)
                    .or_insert_with(|| {
                        GroupByAggregator::new(self.group_cols.clone(), self.aggs.clone())
                    })
                    .accumulate(&key, &vals)?;
            }
        }
        Ok(())
    }
}

impl Bolt for WindowedAggBolt {
    fn execute(&mut self, _origin: NodeId, tuple: Tuple, _out: &mut OutputCollector) -> Result<()> {
        self.insert_row(&tuple)
    }

    fn execute_chunk(
        &mut self,
        _origin: NodeId,
        chunk: &Chunk,
        _out: &mut OutputCollector,
    ) -> Result<()> {
        self.insert_chunk(chunk)
    }

    fn watermark(
        &mut self,
        origin: NodeId,
        from_task: usize,
        ts: u64,
        out: &mut OutputCollector,
    ) -> Result<()> {
        let slot = self.frontiers.entry((origin, from_task)).or_insert(0);
        *slot = (*slot).max(ts);
        if self.frontiers.len() < self.n_upstream {
            return Ok(()); // some upstream task has made no promise yet
        }
        let w = self.frontiers.values().copied().min().unwrap_or(0);
        // Any future result carries max-constituent-ts ≥ w, so its
        // earliest window start is bounded below; everything under that
        // bound is final.
        let boundary = match self.spec {
            WindowSpec::Tumbling { width } => w / width * width,
            WindowSpec::Sliding { size } => w.saturating_sub(size),
            WindowSpec::FullHistory => unreachable!("rejected at construction"),
        };
        let mut rows = std::mem::take(&mut self.drain);
        self.close_into(boundary, &mut rows);
        for t in rows.drain(..) {
            out.emit(t);
        }
        self.drain = rows;
        // Forward the shard's window-start frontier so the merge sink can
        // release: the rows above were emitted first (and buffers flush
        // ahead of watermarks), so per-sender FIFO keeps every released
        // prefix final. Idle shards forward too — with no data for a
        // group-hash shard, the merge would otherwise wait for it until
        // end-of-stream.
        if boundary > self.forwarded {
            out.emit_watermark(boundary);
            self.forwarded = boundary;
        }
        Ok(())
    }

    fn finish(&mut self, out: &mut OutputCollector) -> Result<()> {
        // All inputs done: every remaining window is final.
        let mut rows = std::mem::take(&mut self.drain);
        self.close_into(u64::MAX, &mut rows);
        for t in rows.drain(..) {
            out.emit(t);
        }
        self.drain = rows;
        Ok(())
    }
}

/// Coordinator-side ordered merge of group-hash-sharded windowed
/// aggregation: restores the global window-order contract that the
/// single-task plane provided for free.
///
/// Every shard of [`WindowedAggBolt`] emits its closed windows in
/// ascending `window_start` order and forwards a window-start boundary
/// watermark after each close ("all my future rows have
/// `window_start ≥ boundary`"). The merge buffers incoming rows in a
/// binary min-heap keyed on `(window_start, row)` and releases rows only
/// while `window_start` is below the **minimum** boundary across all
/// shards — by then every row of those windows has arrived (per-sender
/// FIFO puts a shard's rows ahead of its promise), so the released prefix
/// is final and globally ordered.
///
/// Ordering within a window: rows are `(window_start, window_end,
/// group…, agg…)` and group keys are disjoint across shards (group-hash
/// routing), so heap order — lexicographic over the row — coincides with
/// the sorted-by-group-key order a single aggregation task emits.
/// The merged stream is therefore **byte-identical** to the 1-task plane.
pub struct WindowMergeBolt {
    /// Min-heap of buffered rows keyed on `(window_start, row)`.
    heap: BinaryHeap<Reverse<(u64, Tuple)>>,
    /// Latest window-start boundary per upstream shard `(node, task)`.
    frontiers: FxHashMap<(NodeId, usize), u64>,
    /// Shard count; releasing waits until every shard has promised.
    n_upstream: usize,
    /// Every row below this window start has been released; a later
    /// arrival below it would violate the shard's boundary promise.
    released_below: u64,
    /// Scratch for released rows between release and emit.
    drain: Vec<Tuple>,
}

impl WindowMergeBolt {
    /// `n_upstream` is the windowed-aggregation shard count.
    pub fn new(n_upstream: usize) -> WindowMergeBolt {
        assert!(n_upstream > 0);
        WindowMergeBolt {
            heap: BinaryHeap::new(),
            frontiers: FxHashMap::default(),
            n_upstream,
            released_below: 0,
            drain: Vec::new(),
        }
    }

    /// Buffer one shard row (`window_start` in column 0).
    pub fn push(&mut self, tuple: Tuple) -> Result<()> {
        let start = tuple.get(0).as_int()?;
        if start < 0 {
            return Err(SquallError::Runtime(format!(
                "negative window start {start} at the merge sink"
            )));
        }
        let start = start as u64;
        if start < self.released_below {
            return Err(SquallError::Runtime(format!(
                "late shard row for window {start} (released below {})",
                self.released_below
            )));
        }
        self.heap.push(Reverse((start, tuple)));
        Ok(())
    }

    /// Release every buffered row with `window_start < boundary` into
    /// `rows`, in `(window_start, row)` order.
    pub fn release_below(&mut self, boundary: u64, rows: &mut Vec<Tuple>) {
        while let Some(Reverse((start, _))) = self.heap.peek() {
            if *start >= boundary {
                break;
            }
            let Reverse((_, t)) = self.heap.pop().expect("peeked");
            rows.push(t);
        }
        self.released_below = self.released_below.max(boundary);
    }

    /// Buffered (not yet released) rows — testing / introspection.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }
}

impl Bolt for WindowMergeBolt {
    fn execute(&mut self, _origin: NodeId, tuple: Tuple, _out: &mut OutputCollector) -> Result<()> {
        self.push(tuple)
    }

    fn watermark(
        &mut self,
        origin: NodeId,
        from_task: usize,
        ts: u64,
        out: &mut OutputCollector,
    ) -> Result<()> {
        let slot = self.frontiers.entry((origin, from_task)).or_insert(0);
        *slot = (*slot).max(ts);
        if self.frontiers.len() < self.n_upstream {
            return Ok(()); // some shard has made no promise yet
        }
        let boundary = self.frontiers.values().copied().min().unwrap_or(0);
        let mut rows = std::mem::take(&mut self.drain);
        self.release_below(boundary, &mut rows);
        for t in rows.drain(..) {
            out.emit(t);
        }
        self.drain = rows;
        Ok(())
    }

    fn finish(&mut self, out: &mut OutputCollector) -> Result<()> {
        // Every shard has flushed and punctuated: drain the heap.
        let mut rows = std::mem::take(&mut self.drain);
        self.release_below(u64::MAX, &mut rows);
        for t in rows.drain(..) {
            out.emit(t);
        }
        self.drain = rows;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::tuple;
    use squall_expr::{BinOp, ScalarExpr};

    #[test]
    fn select_project_apply() {
        let b = SelectProjectBolt {
            predicate: Some(ScalarExpr::bin(BinOp::Gt, ScalarExpr::col(0), ScalarExpr::lit(3))),
            projections: Some(vec![ScalarExpr::col(1)]),
        };
        assert_eq!(b.apply(&tuple![5, "keep"]).unwrap(), Some(tuple!["keep"]));
        assert_eq!(b.apply(&tuple![1, "drop"]).unwrap(), None);
    }

    #[test]
    fn select_only_passes_through() {
        let b = SelectProjectBolt::select(ScalarExpr::lit(1));
        assert_eq!(b.apply(&tuple![9, 9]).unwrap(), Some(tuple![9, 9]));
    }

    #[test]
    fn project_only_reshapes() {
        let b = SelectProjectBolt::project(vec![
            ScalarExpr::col(1),
            ScalarExpr::bin(BinOp::Add, ScalarExpr::col(0), ScalarExpr::lit(1)),
        ]);
        assert_eq!(b.apply(&tuple![10, 20]).unwrap(), Some(tuple![20, 11]));
    }

    fn windowed_bolt(spec: WindowSpec) -> WindowedAggBolt {
        // Join-output rows (k, ts_a, ts_b): group on k, COUNT + SUM(2·ts_a).
        WindowedAggBolt::new(
            spec,
            vec![1, 2],
            vec![0],
            vec![
                AggSpec::count(),
                AggSpec::sum(ScalarExpr::bin(BinOp::Mul, ScalarExpr::lit(2), ScalarExpr::col(1))),
            ],
            1,
        )
    }

    fn windowed_rows(n: i64, spread: u64) -> Vec<Tuple> {
        (0..n).map(|i| tuple![i % 3, i, i + (i as u64 % spread) as i64]).collect()
    }

    #[test]
    fn columnar_insert_kernel_matches_row_path() {
        // insert_chunk must leave byte-identical state to per-row
        // insert_row — same windows, same groups, same accumulators.
        for spec in [WindowSpec::Tumbling { width: 64 }, WindowSpec::Sliding { size: 5 }] {
            let spread = match spec {
                WindowSpec::Tumbling { .. } => 1, // same bucket per row
                _ => 4,
            };
            let rows = windowed_rows(200, spread);
            let mut by_row = windowed_bolt(spec);
            let mut by_chunk = windowed_bolt(spec);
            for t in &rows {
                by_row.insert_row(t).unwrap();
            }
            for batch in rows.chunks(64) {
                by_chunk.insert_chunk(&Chunk::from_tuples(batch)).unwrap();
            }
            assert_eq!(by_row.open_windows(), by_chunk.open_windows());
            let (mut a, mut b) = (Vec::new(), Vec::new());
            by_row.close_into(u64::MAX, &mut a);
            by_chunk.close_into(u64::MAX, &mut b);
            assert!(!a.is_empty());
            assert_eq!(a, b, "{spec:?}");
        }
    }

    #[test]
    fn window_merge_releases_in_order_and_rejects_late_rows() {
        let mut m = WindowMergeBolt::new(2);
        // Two shards' window-ordered streams, interleaved out of global
        // order: shard A has windows 0 and 10, shard B windows 5 and 10.
        m.push(tuple![10, 19, 2, 7]).unwrap();
        m.push(tuple![0, 9, 1, 3]).unwrap();
        m.push(tuple![5, 14, 4, 1]).unwrap();
        m.push(tuple![10, 19, 1, 2]).unwrap();
        let mut out = Vec::new();
        m.release_below(10, &mut out);
        assert_eq!(out, vec![tuple![0, 9, 1, 3], tuple![5, 14, 4, 1]]);
        assert_eq!(m.pending(), 2);
        // A row below the released boundary violates the shard promise.
        assert!(m.push(tuple![4, 13, 9, 9]).is_err());
        m.release_below(u64::MAX, &mut out);
        assert_eq!(
            out[2..],
            [tuple![10, 19, 1, 2], tuple![10, 19, 2, 7]],
            "equal starts order by the remaining row columns (disjoint group keys)"
        );
    }
}
