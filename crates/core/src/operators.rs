//! Physical operators: the bolts Squall installs into topologies.

use squall_common::{FxHashMap, Result, SquallError, Tuple};
use squall_expr::ScalarExpr;
use squall_join::{AggSpec, GroupByAggregator, LocalJoin, WindowJoin, WindowSpec};
use squall_runtime::{Bolt, NodeId, OutputCollector};

/// Selection + projection in one bolt (Squall co-locates these with the
/// data source whenever possible, §2; a standalone bolt is used when the
/// optimizer cannot).
pub struct SelectProjectBolt {
    /// Optional predicate; tuples failing it are dropped.
    pub predicate: Option<ScalarExpr>,
    /// Optional projection expressions; `None` passes tuples through.
    pub projections: Option<Vec<ScalarExpr>>,
}

impl SelectProjectBolt {
    pub fn select(predicate: ScalarExpr) -> SelectProjectBolt {
        SelectProjectBolt { predicate: Some(predicate), projections: None }
    }

    pub fn project(projections: Vec<ScalarExpr>) -> SelectProjectBolt {
        SelectProjectBolt { predicate: None, projections: Some(projections) }
    }

    /// Apply to one tuple without a runtime (used by tests and the naive
    /// executor).
    pub fn apply(&self, tuple: &Tuple) -> Result<Option<Tuple>> {
        if let Some(p) = &self.predicate {
            if !p.eval_bool(tuple)? {
                return Ok(None);
            }
        }
        match &self.projections {
            None => Ok(Some(tuple.clone())),
            Some(exprs) => {
                let mut values = Vec::with_capacity(exprs.len());
                for e in exprs {
                    values.push(e.eval(tuple)?);
                }
                Ok(Some(Tuple::new(values)))
            }
        }
    }
}

impl Bolt for SelectProjectBolt {
    fn execute(&mut self, _origin: NodeId, tuple: Tuple, out: &mut OutputCollector) -> Result<()> {
        if let Some(t) = self.apply(&tuple)? {
            out.emit(t);
        }
        Ok(())
    }
}

/// How a join task exposes its results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinEmit {
    /// Emit every result tuple downstream (needed when an aggregate or
    /// another operator consumes the join).
    Results,
    /// Emit only a per-task `(count)` tuple at end-of-stream — the mode
    /// used for result-count benchmarks where materializing output would
    /// dominate.
    CountOnly,
}

/// Exactly-once ownership predicate for range schemes:
/// `f(relation_of_last_arrival, result) -> keep`.
pub type OwnerFilter = Box<dyn Fn(usize, &Tuple) -> bool + Send>;

/// The distributed join task: one [`LocalJoin`] instance per machine
/// (task), fed by the partitioning scheme's groupings. With a hypercube
/// grouping and a [`squall_join::DBToasterJoin`] inside, this is the HyLD
/// operator of §3.4.
pub struct JoinBolt {
    /// Maps the upstream node that emitted a tuple to its relation index.
    origin_to_rel: FxHashMap<NodeId, usize>,
    join: WindowJoin<Box<dyn LocalJoin>>,
    /// `tuple[ts_cols[rel]]` supplies the window timestamp; empty for
    /// full-history semantics (timestamps then count arrivals).
    ts_cols: Vec<Option<usize>>,
    arrivals: u64,
    emit: JoinEmit,
    /// Per-machine stored-tuple budget (the §7.3 memory-overflow
    /// experiments); `None` = unlimited.
    budget: Option<usize>,
    /// Optional exactly-once ownership filter for range schemes (M-Bucket
    /// / EWH assign *cells*, so a machine owning several cells of a row
    /// must keep only the pairs it owns).
    owner_filter: Option<OwnerFilter>,
    machine: usize,
    buf: Vec<Tuple>,
    wbuf: Vec<(Tuple, i64)>,
    results: u64,
}

impl JoinBolt {
    /// A full-history join bolt.
    pub fn new(
        machine: usize,
        origin_to_rel: FxHashMap<NodeId, usize>,
        join: Box<dyn LocalJoin>,
        n_relations: usize,
        emit: JoinEmit,
    ) -> JoinBolt {
        JoinBolt {
            origin_to_rel,
            join: WindowJoin::new(join, n_relations, WindowSpec::FullHistory),
            ts_cols: vec![None; n_relations],
            arrivals: 0,
            emit,
            budget: None,
            owner_filter: None,
            machine,
            buf: Vec::new(),
            wbuf: Vec::new(),
            results: 0,
        }
    }

    /// A windowed join bolt under *event-time* semantics: `ts_cols[rel]`
    /// names the timestamp column and `arities[rel]` the tuple width of
    /// each relation (both in the bolt's input coordinates). State is
    /// evicted by the cross-relation watermark and every emitted result is
    /// filtered by the window predicate over its constituent timestamps,
    /// so the produced rows are a pure function of the timestamped inputs
    /// no matter how the relations interleave.
    pub fn new_windowed(
        machine: usize,
        origin_to_rel: FxHashMap<NodeId, usize>,
        join: Box<dyn LocalJoin>,
        emit: JoinEmit,
        spec: WindowSpec,
        ts_cols: Vec<usize>,
        arities: &[usize],
    ) -> JoinBolt {
        JoinBolt {
            origin_to_rel,
            join: WindowJoin::event_time(join, spec, arities, &ts_cols),
            ts_cols: ts_cols.into_iter().map(Some).collect(),
            arrivals: 0,
            emit,
            budget: None,
            owner_filter: None,
            machine,
            buf: Vec::new(),
            wbuf: Vec::new(),
            results: 0,
        }
    }

    pub fn with_budget(mut self, budget: usize) -> JoinBolt {
        self.budget = Some(budget);
        self
    }

    /// Exactly-once filter: `f(relation_of_last_arrival, result)` must
    /// return true for the bolt to emit (range-scheme cell ownership).
    pub fn with_owner_filter(mut self, f: OwnerFilter) -> JoinBolt {
        self.owner_filter = Some(f);
        self
    }

    pub fn results(&self) -> u64 {
        self.results
    }
}

impl Bolt for JoinBolt {
    fn execute(&mut self, origin: NodeId, tuple: Tuple, out: &mut OutputCollector) -> Result<()> {
        let rel = *self
            .origin_to_rel
            .get(&origin)
            .ok_or_else(|| SquallError::Runtime(format!("unknown origin node {origin}")))?;
        self.arrivals += 1;
        let ts = match self.ts_cols[rel] {
            Some(c) => tuple.get(c).as_int()? as u64,
            None => self.arrivals,
        };
        if self.emit == JoinEmit::CountOnly
            && self.owner_filter.is_none()
            && !self.join.is_event_time()
        {
            // Weighted fast path: aggregated DBToaster views report
            // (tuple, multiplicity) deltas without materializing hot-key
            // outputs (§3.3).
            self.wbuf.clear();
            self.join.insert_weighted(rel, ts, &tuple, &mut self.wbuf);
            self.results += self.wbuf.iter().map(|(_, m)| *m.max(&0) as u64).sum::<u64>();
        } else {
            self.buf.clear();
            self.join.insert(rel, ts, &tuple, &mut self.buf);
            if let Some(filter) = &self.owner_filter {
                self.buf.retain(|t| filter(rel, t));
            }
            self.results += self.buf.len() as u64;
            if self.emit == JoinEmit::Results {
                for t in self.buf.drain(..) {
                    out.emit(t);
                }
            }
        }
        if let Some(budget) = self.budget {
            let stored = self.join.inner().stored();
            if stored > budget {
                return Err(SquallError::MemoryOverflow { machine: self.machine, stored, budget });
            }
        }
        Ok(())
    }

    fn finish(&mut self, out: &mut OutputCollector) -> Result<()> {
        if self.emit == JoinEmit::CountOnly {
            out.emit(squall_common::tuple![self.results as i64]);
        }
        Ok(())
    }
}

/// The aggregation task: online (emit the refreshed group row on every
/// update — full-history IVM semantics) or final (emit the snapshot at
/// end-of-stream, the mode batch-style tests and benches use).
pub struct AggBolt {
    agg: GroupByAggregator,
    online: bool,
}

impl AggBolt {
    pub fn new(group_cols: Vec<usize>, aggs: Vec<AggSpec>, online: bool) -> AggBolt {
        AggBolt { agg: GroupByAggregator::new(group_cols, aggs), online }
    }
}

impl Bolt for AggBolt {
    fn execute(&mut self, _origin: NodeId, tuple: Tuple, out: &mut OutputCollector) -> Result<()> {
        let row = self.agg.update(&tuple)?;
        if self.online {
            out.emit(row);
        }
        Ok(())
    }

    fn finish(&mut self, out: &mut OutputCollector) -> Result<()> {
        if !self.online {
            for row in self.agg.snapshot() {
                out.emit(row);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::tuple;
    use squall_expr::{BinOp, ScalarExpr};

    #[test]
    fn select_project_apply() {
        let b = SelectProjectBolt {
            predicate: Some(ScalarExpr::bin(BinOp::Gt, ScalarExpr::col(0), ScalarExpr::lit(3))),
            projections: Some(vec![ScalarExpr::col(1)]),
        };
        assert_eq!(b.apply(&tuple![5, "keep"]).unwrap(), Some(tuple!["keep"]));
        assert_eq!(b.apply(&tuple![1, "drop"]).unwrap(), None);
    }

    #[test]
    fn select_only_passes_through() {
        let b = SelectProjectBolt::select(ScalarExpr::lit(1));
        assert_eq!(b.apply(&tuple![9, 9]).unwrap(), Some(tuple![9, 9]));
    }

    #[test]
    fn project_only_reshapes() {
        let b = SelectProjectBolt::project(vec![
            ScalarExpr::col(1),
            ScalarExpr::bin(BinOp::Add, ScalarExpr::col(0), ScalarExpr::lit(1)),
        ]);
        assert_eq!(b.apply(&tuple![10, 20]).unwrap(), Some(tuple![20, 11]));
    }
}
