//! Physical operators: the bolts Squall installs into topologies.

use std::collections::BTreeMap;

use squall_common::{Chunk, ChunkBuilder, FxHashMap, Result, SquallError, Tuple, Value};
use squall_expr::ScalarExpr;
use squall_join::{AggSpec, GroupByAggregator, LocalJoin, WindowJoin, WindowSpec};
use squall_runtime::{Bolt, NodeId, OutputCollector};

/// Selection + projection in one bolt (Squall co-locates these with the
/// data source whenever possible, §2; a standalone bolt is used when the
/// optimizer cannot).
pub struct SelectProjectBolt {
    /// Optional predicate; tuples failing it are dropped.
    pub predicate: Option<ScalarExpr>,
    /// Optional projection expressions; `None` passes tuples through.
    pub projections: Option<Vec<ScalarExpr>>,
}

impl SelectProjectBolt {
    pub fn select(predicate: ScalarExpr) -> SelectProjectBolt {
        SelectProjectBolt { predicate: Some(predicate), projections: None }
    }

    pub fn project(projections: Vec<ScalarExpr>) -> SelectProjectBolt {
        SelectProjectBolt { predicate: None, projections: Some(projections) }
    }

    /// Apply to one tuple without a runtime (used by tests and the naive
    /// executor).
    pub fn apply(&self, tuple: &Tuple) -> Result<Option<Tuple>> {
        if let Some(p) = &self.predicate {
            if !p.eval_bool(tuple)? {
                return Ok(None);
            }
        }
        match &self.projections {
            None => Ok(Some(tuple.clone())),
            Some(exprs) => {
                let mut values = Vec::with_capacity(exprs.len());
                for e in exprs {
                    values.push(e.eval(tuple)?);
                }
                Ok(Some(Tuple::new(values)))
            }
        }
    }
}

impl SelectProjectBolt {
    /// Evaluate the projection expressions column-at-a-time over `chunk`
    /// and emit one output row per input row.
    fn project_chunk(exprs: &[ScalarExpr], chunk: &Chunk, out: &mut OutputCollector) -> Result<()> {
        let mut arrays = Vec::with_capacity(exprs.len());
        for e in exprs {
            arrays.push(e.eval_chunk(chunk)?);
        }
        for i in 0..chunk.n_rows() {
            out.emit(Tuple::new(arrays.iter().map(|a| a.value(i)).collect::<Vec<_>>()));
        }
        Ok(())
    }
}

impl Bolt for SelectProjectBolt {
    fn execute(&mut self, _origin: NodeId, tuple: Tuple, out: &mut OutputCollector) -> Result<()> {
        if let Some(t) = self.apply(&tuple)? {
            out.emit(t);
        }
        Ok(())
    }

    fn execute_chunk(
        &mut self,
        _origin: NodeId,
        chunk: &Chunk,
        out: &mut OutputCollector,
    ) -> Result<()> {
        if chunk.n_rows() == 0 {
            return Ok(());
        }
        match (&self.predicate, &self.projections) {
            (None, None) => {
                for t in chunk.rows() {
                    out.emit(t);
                }
            }
            (None, Some(exprs)) => Self::project_chunk(exprs, chunk, out)?,
            (Some(p), projections) => {
                let mask = p.eval_bool_chunk(chunk)?;
                match projections {
                    None => {
                        for (i, keep) in mask.iter().enumerate() {
                            if *keep {
                                out.emit(chunk.row(i));
                            }
                        }
                    }
                    Some(exprs) => {
                        // Compact survivors *before* projecting: the row
                        // path never evaluates projections on filtered-out
                        // rows, so neither may we (a projection that only
                        // fails on dropped rows must stay silent).
                        let mut survivors = ChunkBuilder::new();
                        for (i, keep) in mask.iter().enumerate() {
                            if *keep {
                                survivors.push(&chunk.row(i));
                            }
                        }
                        let sub = survivors.finish();
                        if sub.n_rows() > 0 {
                            Self::project_chunk(exprs, &sub, out)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// How a join task exposes its results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinEmit {
    /// Emit every result tuple downstream (needed when an aggregate or
    /// another operator consumes the join).
    Results,
    /// Emit only a per-task `(count)` tuple at end-of-stream — the mode
    /// used for result-count benchmarks where materializing output would
    /// dominate.
    CountOnly,
}

/// Exactly-once ownership predicate for range schemes:
/// `f(relation_of_last_arrival, result) -> keep`.
pub type OwnerFilter = Box<dyn Fn(usize, &Tuple) -> bool + Send>;

/// The distributed join task: one [`LocalJoin`] instance per machine
/// (task), fed by the partitioning scheme's groupings. With a hypercube
/// grouping and a [`squall_join::DBToasterJoin`] inside, this is the HyLD
/// operator of §3.4.
pub struct JoinBolt {
    /// Maps the upstream node that emitted a tuple to its relation index.
    origin_to_rel: FxHashMap<NodeId, usize>,
    join: WindowJoin<Box<dyn LocalJoin>>,
    /// `tuple[ts_cols[rel]]` supplies the window timestamp; empty for
    /// full-history semantics (timestamps then count arrivals).
    ts_cols: Vec<Option<usize>>,
    arrivals: u64,
    emit: JoinEmit,
    /// Per-machine stored-tuple budget (the §7.3 memory-overflow
    /// experiments); `None` = unlimited.
    budget: Option<usize>,
    /// Optional exactly-once ownership filter for range schemes (M-Bucket
    /// / EWH assign *cells*, so a machine owning several cells of a row
    /// must keep only the pairs it owns).
    owner_filter: Option<OwnerFilter>,
    machine: usize,
    buf: Vec<Tuple>,
    wbuf: Vec<(Tuple, i64)>,
    results: u64,
    /// Event-time mode with a windowed aggregate downstream: forward the
    /// bolt's watermark whenever it advances by at least this granule
    /// (plus a final `u64::MAX` at end-of-stream). `None` = no forwarding.
    wm_granule: Option<u64>,
    /// Next watermark value at which a forward is due.
    next_wm: u64,
}

impl JoinBolt {
    /// A full-history join bolt.
    pub fn new(
        machine: usize,
        origin_to_rel: FxHashMap<NodeId, usize>,
        join: Box<dyn LocalJoin>,
        n_relations: usize,
        emit: JoinEmit,
    ) -> JoinBolt {
        JoinBolt {
            origin_to_rel,
            join: WindowJoin::new(join, n_relations, WindowSpec::FullHistory),
            ts_cols: vec![None; n_relations],
            arrivals: 0,
            emit,
            budget: None,
            owner_filter: None,
            machine,
            buf: Vec::new(),
            wbuf: Vec::new(),
            results: 0,
            wm_granule: None,
            next_wm: 0,
        }
    }

    /// A windowed join bolt under *event-time* semantics: `ts_cols[rel]`
    /// names the timestamp column and `arities[rel]` the tuple width of
    /// each relation (both in the bolt's input coordinates). State is
    /// evicted by the cross-relation watermark and every emitted result is
    /// filtered by the window predicate over its constituent timestamps,
    /// so the produced rows are a pure function of the timestamped inputs
    /// no matter how the relations interleave.
    pub fn new_windowed(
        machine: usize,
        origin_to_rel: FxHashMap<NodeId, usize>,
        join: Box<dyn LocalJoin>,
        emit: JoinEmit,
        spec: WindowSpec,
        ts_cols: Vec<usize>,
        arities: &[usize],
    ) -> JoinBolt {
        JoinBolt {
            origin_to_rel,
            join: WindowJoin::event_time(join, spec, arities, &ts_cols),
            ts_cols: ts_cols.into_iter().map(Some).collect(),
            arrivals: 0,
            emit,
            budget: None,
            owner_filter: None,
            machine,
            buf: Vec::new(),
            wbuf: Vec::new(),
            results: 0,
            wm_granule: None,
            next_wm: 0,
        }
    }

    /// Forward this task's event-time watermark downstream whenever it
    /// advances by at least `granule` time units, plus a final `u64::MAX`
    /// watermark at end-of-stream. Windowed aggregation downstream closes
    /// windows on the minimum forwarded watermark across all join tasks;
    /// the granule throttles how often scatter buffers are flushed for a
    /// watermark (one window length is the natural choice). Event-time
    /// bolts only.
    pub fn with_watermark_forwarding(mut self, granule: u64) -> JoinBolt {
        assert!(self.join.is_event_time(), "watermark forwarding needs event-time windows");
        self.wm_granule = Some(granule.max(1));
        self
    }

    pub fn with_budget(mut self, budget: usize) -> JoinBolt {
        self.budget = Some(budget);
        self
    }

    /// Exactly-once filter: `f(relation_of_last_arrival, result)` must
    /// return true for the bolt to emit (range-scheme cell ownership).
    pub fn with_owner_filter(mut self, f: OwnerFilter) -> JoinBolt {
        self.owner_filter = Some(f);
        self
    }

    pub fn results(&self) -> u64 {
        self.results
    }

    fn rel_of(&self, origin: NodeId) -> Result<usize> {
        self.origin_to_rel
            .get(&origin)
            .copied()
            .ok_or_else(|| SquallError::Runtime(format!("unknown origin node {origin}")))
    }

    /// Process one arrival whose relation is already resolved — the
    /// per-tuple body shared by [`Bolt::execute`] and the chunked path
    /// (which resolves the relation once per chunk).
    fn step(&mut self, rel: usize, tuple: Tuple, out: &mut OutputCollector) -> Result<()> {
        self.arrivals += 1;
        let ts = match self.ts_cols[rel] {
            Some(c) => tuple.get(c).as_int()? as u64,
            None => self.arrivals,
        };
        if self.emit == JoinEmit::CountOnly
            && self.owner_filter.is_none()
            && !self.join.is_event_time()
        {
            // Weighted fast path: aggregated DBToaster views report
            // (tuple, multiplicity) deltas without materializing hot-key
            // outputs (§3.3).
            self.wbuf.clear();
            self.join.insert_weighted(rel, ts, &tuple, &mut self.wbuf);
            self.results += self.wbuf.iter().map(|(_, m)| *m.max(&0) as u64).sum::<u64>();
        } else {
            self.buf.clear();
            self.join.insert(rel, ts, &tuple, &mut self.buf);
            if let Some(filter) = &self.owner_filter {
                self.buf.retain(|t| filter(rel, t));
            }
            self.results += self.buf.len() as u64;
            if self.emit == JoinEmit::Results {
                for t in self.buf.drain(..) {
                    out.emit(t);
                }
            }
        }
        if let Some(granule) = self.wm_granule {
            // Watermark forwarding: the results emitted above all carry
            // event time ≥ the bolt's watermark, so promising it downstream
            // is safe; the granule batches promises so buffers are not
            // flushed on every arrival.
            if let Some(w) = self.join.watermark() {
                if w >= self.next_wm {
                    out.emit_watermark(w);
                    self.next_wm = w.saturating_add(granule);
                }
            }
        }
        if let Some(budget) = self.budget {
            let stored = self.join.inner().stored();
            if stored > budget {
                return Err(SquallError::MemoryOverflow { machine: self.machine, stored, budget });
            }
        }
        Ok(())
    }
}

impl Bolt for JoinBolt {
    fn execute(&mut self, origin: NodeId, tuple: Tuple, out: &mut OutputCollector) -> Result<()> {
        let rel = self.rel_of(origin)?;
        self.step(rel, tuple, out)
    }

    fn execute_chunk(
        &mut self,
        origin: NodeId,
        chunk: &Chunk,
        out: &mut OutputCollector,
    ) -> Result<()> {
        // One relation lookup per chunk: every tuple in a batch shares its
        // origin node, so the per-row hash-map probe of the row path is
        // pure overhead here.
        let rel = self.rel_of(origin)?;
        for tuple in chunk.rows() {
            self.step(rel, tuple, out)?;
        }
        Ok(())
    }

    fn finish(&mut self, out: &mut OutputCollector) -> Result<()> {
        if self.wm_granule.is_some() {
            // This task will never emit again: release downstream windows
            // unconditionally (a task that saw no data for some relation
            // never advanced its watermark — without this, windowed
            // aggregation could only close windows at its own finish).
            out.emit_watermark(u64::MAX);
        }
        if self.emit == JoinEmit::CountOnly {
            out.emit(squall_common::tuple![self.results as i64]);
        }
        Ok(())
    }
}

/// The aggregation task: online (emit the refreshed group row on every
/// update — full-history IVM semantics) or final (emit the snapshot at
/// end-of-stream, the mode batch-style tests and benches use).
pub struct AggBolt {
    agg: GroupByAggregator,
    online: bool,
}

impl AggBolt {
    pub fn new(group_cols: Vec<usize>, aggs: Vec<AggSpec>, online: bool) -> AggBolt {
        AggBolt { agg: GroupByAggregator::new(group_cols, aggs), online }
    }
}

impl Bolt for AggBolt {
    fn execute(&mut self, _origin: NodeId, tuple: Tuple, out: &mut OutputCollector) -> Result<()> {
        let row = self.agg.update(&tuple)?;
        if self.online {
            out.emit(row);
        }
        Ok(())
    }

    fn execute_chunk(
        &mut self,
        _origin: NodeId,
        chunk: &Chunk,
        out: &mut OutputCollector,
    ) -> Result<()> {
        if self.online {
            let mut emit = |row: Tuple| out.emit(row);
            self.agg.update_chunk(chunk, Some(&mut emit))
        } else {
            // Final-mode aggregation never looks at the per-update output
            // rows, so the chunked path skips building them entirely.
            self.agg.update_chunk(chunk, None)
        }
    }

    fn finish(&mut self, out: &mut OutputCollector) -> Result<()> {
        if !self.online {
            for row in self.agg.snapshot() {
                out.emit(row);
            }
        }
        Ok(())
    }
}

/// Per-window aggregation: the windowed mode of the aggregation component
/// (§2 "window semantics for its operators" — the window applied to the
/// *aggregate*, not just the join).
///
/// State is keyed by `(window_start, group key)`: each incoming join
/// result is folded into every window it belongs to —
///
/// * **tumbling `width`** — exactly one window, `[k·width, (k+1)·width)`
///   where `k = ⌊ts/width⌋` (the window predicate upstream guarantees all
///   constituent timestamps share the bucket);
/// * **sliding `size`** — every window `[s, s+size]` (inclusive, matching
///   the join's `max − min ≤ size` predicate) that contains *all*
///   constituent timestamps: `s ∈ [max−size, min]`, one window per time
///   unit, so adjacent windows overlap.
///
/// A window is **closed** — its rows finalized and emitted, its state
/// dropped — once the minimum watermark across every upstream join task
/// guarantees no further result can fall into it (tumbling: watermark
/// reached the next bucket; sliding: `start < watermark − size`). Closed
/// windows are emitted in ascending `window_start` order, each row shaped
/// `(window_start, window_end, group…, agg…)` with both bounds inclusive,
/// and the remaining windows flush — still in order — at end-of-stream.
/// The bolt runs at parallelism 1 so this order is the order the query's
/// sink observes: the streaming per-window contract of `ResultSet`.
pub struct WindowedAggBolt {
    spec: WindowSpec,
    /// Positions of each relation's event-time column in the join-output
    /// row (results are concatenated in relation order).
    ts_cols: Vec<usize>,
    group_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    /// Open windows by start, each with its own group-by state.
    windows: BTreeMap<u64, GroupByAggregator>,
    /// Latest watermark per upstream task `(node, task)`.
    frontiers: FxHashMap<(NodeId, usize), u64>,
    /// Upstream task count; window closing waits until every task has
    /// promised a frontier (before that no minimum is meaningful).
    n_upstream: usize,
    /// Every window with `start` below this has been emitted; a data row
    /// for such a window would violate the watermark contract.
    closed_before: u64,
}

impl WindowedAggBolt {
    /// `ts_cols` are the constituent event-time columns in join-output
    /// coordinates; `n_upstream` is the join component's parallelism.
    pub fn new(
        spec: WindowSpec,
        ts_cols: Vec<usize>,
        group_cols: Vec<usize>,
        aggs: Vec<AggSpec>,
        n_upstream: usize,
    ) -> WindowedAggBolt {
        assert!(
            !matches!(spec, WindowSpec::FullHistory),
            "per-window aggregation needs a bounded window shape"
        );
        assert!(!ts_cols.is_empty(), "event-time columns required");
        assert!(n_upstream > 0);
        WindowedAggBolt {
            spec,
            ts_cols,
            group_cols,
            aggs,
            windows: BTreeMap::new(),
            frontiers: FxHashMap::default(),
            n_upstream,
            closed_before: 0,
        }
    }

    /// Inclusive end of the window starting at `start`.
    fn window_end(&self, start: u64) -> u64 {
        match self.spec {
            WindowSpec::Tumbling { width } => start + width - 1,
            WindowSpec::Sliding { size } => start + size,
            WindowSpec::FullHistory => unreachable!("rejected at construction"),
        }
    }

    /// Emit and drop every window with `start < boundary`, in window
    /// order.
    fn close_below(&mut self, boundary: u64, out: &mut OutputCollector) {
        while let Some(entry) = self.windows.first_entry() {
            if *entry.key() >= boundary {
                break;
            }
            let (start, agg) = entry.remove_entry();
            self.emit_window(start, &agg, out);
        }
        self.closed_before = self.closed_before.max(boundary);
    }

    fn emit_window(&self, start: u64, agg: &GroupByAggregator, out: &mut OutputCollector) {
        let end = self.window_end(start);
        for row in agg.snapshot() {
            let mut values = Vec::with_capacity(2 + row.arity());
            values.push(Value::Int(start as i64));
            values.push(Value::Int(end as i64));
            values.extend(row.values().iter().cloned());
            out.emit(Tuple::new(values));
        }
    }

    /// Open windows (testing / introspection).
    pub fn open_windows(&self) -> usize {
        self.windows.len()
    }

    /// Fold one join result, whose constituent-timestamp extrema are
    /// already known, into every window it belongs to.
    fn fold(&mut self, lo: u64, hi: u64, tuple: &Tuple) -> Result<()> {
        // The windows this result belongs to (see the type docs).
        let (first, last) = match self.spec {
            WindowSpec::Tumbling { width } => {
                debug_assert_eq!(lo / width, hi / width, "join window predicate violated");
                let start = hi / width * width;
                (start, start)
            }
            WindowSpec::Sliding { size } => (hi.saturating_sub(size), lo),
            WindowSpec::FullHistory => unreachable!("rejected at construction"),
        };
        if first < self.closed_before {
            return Err(SquallError::Runtime(format!(
                "late join result for closed window {first} (closed below {})",
                self.closed_before
            )));
        }
        for start in first..=last {
            self.windows
                .entry(start)
                .or_insert_with(|| {
                    GroupByAggregator::new(self.group_cols.clone(), self.aggs.clone())
                })
                .update(tuple)?;
        }
        Ok(())
    }
}

impl Bolt for WindowedAggBolt {
    fn execute(&mut self, _origin: NodeId, tuple: Tuple, _out: &mut OutputCollector) -> Result<()> {
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for &c in &self.ts_cols {
            let v = tuple.get(c).as_int()?;
            if v < 0 {
                return Err(SquallError::Runtime(format!(
                    "negative event-time timestamp {v} in aggregate input"
                )));
            }
            lo = lo.min(v as u64);
            hi = hi.max(v as u64);
        }
        self.fold(lo, hi, &tuple)
    }

    fn execute_chunk(
        &mut self,
        _origin: NodeId,
        chunk: &Chunk,
        _out: &mut OutputCollector,
    ) -> Result<()> {
        // Timestamp extraction runs column-at-a-time (straight over the
        // i64 slice when the column is a fully-valid Int array); the
        // window fold stays per row — that is the state boundary.
        let rows = chunk.n_rows();
        let mut lo = vec![u64::MAX; rows];
        let mut hi = vec![0u64; rows];
        for &c in &self.ts_cols {
            let col = chunk.column(c);
            let plain = col.as_i64().filter(|a| a.validity().is_none()).map(|a| a.values());
            for i in 0..rows {
                let v = match plain {
                    Some(vals) => vals[i],
                    None => col.value(i).as_int()?,
                };
                if v < 0 {
                    return Err(SquallError::Runtime(format!(
                        "negative event-time timestamp {v} in aggregate input"
                    )));
                }
                lo[i] = lo[i].min(v as u64);
                hi[i] = hi[i].max(v as u64);
            }
        }
        for i in 0..rows {
            self.fold(lo[i], hi[i], &chunk.row(i))?;
        }
        Ok(())
    }

    fn watermark(
        &mut self,
        origin: NodeId,
        from_task: usize,
        ts: u64,
        out: &mut OutputCollector,
    ) -> Result<()> {
        let slot = self.frontiers.entry((origin, from_task)).or_insert(0);
        *slot = (*slot).max(ts);
        if self.frontiers.len() < self.n_upstream {
            return Ok(()); // some upstream task has made no promise yet
        }
        let w = self.frontiers.values().copied().min().unwrap_or(0);
        // Any future result carries max-constituent-ts ≥ w, so its
        // earliest window start is bounded below; everything under that
        // bound is final.
        let boundary = match self.spec {
            WindowSpec::Tumbling { width } => w / width * width,
            WindowSpec::Sliding { size } => w.saturating_sub(size),
            WindowSpec::FullHistory => unreachable!("rejected at construction"),
        };
        self.close_below(boundary, out);
        Ok(())
    }

    fn finish(&mut self, out: &mut OutputCollector) -> Result<()> {
        // All inputs done: every remaining window is final.
        self.close_below(u64::MAX, out);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::tuple;
    use squall_expr::{BinOp, ScalarExpr};

    #[test]
    fn select_project_apply() {
        let b = SelectProjectBolt {
            predicate: Some(ScalarExpr::bin(BinOp::Gt, ScalarExpr::col(0), ScalarExpr::lit(3))),
            projections: Some(vec![ScalarExpr::col(1)]),
        };
        assert_eq!(b.apply(&tuple![5, "keep"]).unwrap(), Some(tuple!["keep"]));
        assert_eq!(b.apply(&tuple![1, "drop"]).unwrap(), None);
    }

    #[test]
    fn select_only_passes_through() {
        let b = SelectProjectBolt::select(ScalarExpr::lit(1));
        assert_eq!(b.apply(&tuple![9, 9]).unwrap(), Some(tuple![9, 9]));
    }

    #[test]
    fn project_only_reshapes() {
        let b = SelectProjectBolt::project(vec![
            ScalarExpr::col(1),
            ScalarExpr::bin(BinOp::Add, ScalarExpr::col(0), ScalarExpr::lit(1)),
        ]);
        assert_eq!(b.apply(&tuple![10, 20]).unwrap(), Some(tuple![20, 11]));
    }
}
