//! Executable model of the Adaptive 1-Bucket operator (\[32\], §5
//! "Hypercube sizes").
//!
//! The decision logic lives in [`squall_partition::AdaptiveMatrix`]; this
//! module adds the *state* side: tuples placed under the old matrix shape
//! are migrated to their new rows/columns when the controller re-shapes,
//! without blocking new arrivals (migration work is accounted separately,
//! as shipped tuples). The simulation verifies the operator's two claims:
//!
//! 1. under drifting `|R| : |S|` ratios the adaptive operator's maximum
//!    machine load tracks the optimal static shape chosen *in hindsight*;
//! 2. correctness is preserved across reshapes — every (r, s) pair still
//!    meets on at least one machine, and result ownership stays
//!    exactly-once.

use squall_common::{SplitMix64, Tuple};
use squall_partition::AdaptiveMatrix;

/// Per-machine state of the simulated operator.
#[derive(Debug, Clone, Default)]
struct MachineState {
    r: Vec<usize>, // indexes into the R log
    s: Vec<usize>,
}

/// Simulation result.
#[derive(Debug)]
pub struct AdaptiveRun {
    /// Tuples received per machine (including migrated ones).
    pub loads: Vec<u64>,
    /// Tuples shipped by reshapes only.
    pub migrated: u64,
    /// Number of reshapes performed.
    pub reshapes: u64,
    /// Join results produced (for correctness checks).
    pub results: u64,
}

impl AdaptiveRun {
    pub fn max_load(&self) -> u64 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    pub fn avg_load(&self) -> f64 {
        if self.loads.is_empty() {
            0.0
        } else {
            self.loads.iter().sum::<u64>() as f64 / self.loads.len() as f64
        }
    }
}

/// One arrival: which relation (0 = R, 1 = S) and the tuple.
pub type Arrival = (usize, Tuple);

/// Simulate a (possibly adaptive) 1-Bucket join over an arrival stream.
///
/// With `adaptive = false` the initial square shape is kept for the whole
/// run — the static baseline of the ablation. Results are counted for
/// cross-relation pairs co-located on a machine; the row/column discipline
/// guarantees exactly-once, which the caller can verify against
/// `n_r · n_s` for a cross product condition.
pub fn simulate(machines: usize, arrivals: &[Arrival], adaptive: bool, seed: u64) -> AdaptiveRun {
    let mut ctl = AdaptiveMatrix::new(machines).expect("machines > 0");
    let mut rng = SplitMix64::new(seed);
    let mut states: Vec<MachineState> = vec![MachineState::default(); machines];
    let mut loads = vec![0u64; machines];
    let mut migrated = 0u64;
    let mut results = 0u64;
    // Logs of every arrival with its current (row|col) placement.
    let mut r_rows: Vec<usize> = Vec::new();
    let mut s_cols: Vec<usize> = Vec::new();

    let machine_at =
        |shape: (usize, usize), row: usize, col: usize| -> usize { row * shape.1 + col };

    for (rel, _tuple) in arrivals {
        let shape = ctl.shape();
        if *rel == 0 {
            let row = rng.next_below(shape.0);
            let idx = r_rows.len();
            r_rows.push(row);
            ctl.observe_r(1);
            // Join against stored S in the row's machines, store in row.
            for col in 0..shape.1 {
                let m = machine_at(shape, row, col);
                loads[m] += 1;
                results += states[m].s.len() as u64;
                states[m].r.push(idx);
            }
        } else {
            let col = rng.next_below(shape.1);
            let idx = s_cols.len();
            s_cols.push(col);
            ctl.observe_s(1);
            for row in 0..shape.0 {
                let m = machine_at(shape, row, col);
                loads[m] += 1;
                results += states[m].r.len() as u64;
                states[m].s.push(idx);
            }
        }
        if !adaptive {
            continue;
        }
        if let Some(reshape) = ctl.check() {
            // Migrate: re-place every stored tuple under the new shape.
            // (The [32] operator interleaves this with processing; the
            // simulation ships it eagerly and counts the cost.)
            let new = reshape.to;
            let mut new_states: Vec<MachineState> = vec![MachineState::default(); machines];
            // Keep each R tuple's row identity where possible (mod the new
            // row count) — a deterministic re-placement that preserves the
            // row/column discipline.
            for (idx, row) in r_rows.iter_mut().enumerate() {
                *row %= new.0;
                for col in 0..new.1 {
                    let m = machine_at(new, *row, col);
                    new_states[m].r.push(idx);
                    migrated += 1;
                }
            }
            for (idx, col) in s_cols.iter_mut().enumerate() {
                *col %= new.1;
                for row in 0..new.0 {
                    let m = machine_at(new, row, *col);
                    new_states[m].s.push(idx);
                    migrated += 1;
                }
            }
            states = new_states;
        }
    }
    AdaptiveRun { loads, migrated, reshapes: ctl.reshapes, results }
}

/// A drifting workload: the first `phase1` arrivals are evenly split, the
/// rest are `ratio`:1 in favour of R — the \[32\] drift scenario.
pub fn drifting_stream(phase1: usize, phase2: usize, ratio: usize, seed: u64) -> Vec<Arrival> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(phase1 + phase2);
    for i in 0..phase1 {
        out.push((i % 2, squall_common::tuple![rng.next_range(0, 1000)]));
    }
    for _ in 0..phase2 {
        let rel = if rng.next_below(ratio + 1) < ratio { 0 } else { 1 };
        out.push((rel, squall_common::tuple![rng.next_range(0, 1000)]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_once_cross_product() {
        // With no join predicate (cross product), results must equal
        // n_r · n_s under both static and adaptive operation.
        let arrivals = drifting_stream(200, 800, 8, 3);
        let n_r = arrivals.iter().filter(|(r, _)| *r == 0).count() as u64;
        let n_s = arrivals.len() as u64 - n_r;
        for adaptive in [false, true] {
            let run = simulate(16, &arrivals, adaptive, 5);
            assert_eq!(run.results, n_r * n_s, "adaptive={adaptive}");
        }
    }

    #[test]
    fn adaptive_reshapes_static_does_not() {
        let arrivals = drifting_stream(200, 3000, 10, 4);
        let stat = simulate(16, &arrivals, false, 6);
        let adap = simulate(16, &arrivals, true, 6);
        assert_eq!(stat.reshapes, 0);
        assert!(adap.reshapes >= 1);
        assert!(adap.migrated > 0);
    }

    #[test]
    fn adaptive_improves_new_tuple_load_under_drift() {
        // Compare *arrival* loads (excluding migration, which is a one-off
        // cost): adaptive must beat the stale square shape.
        let arrivals = drifting_stream(100, 8000, 12, 7);
        let stat = simulate(16, &arrivals, false, 8);
        let adap = simulate(16, &arrivals, true, 8);
        assert!(
            (adap.max_load() as f64) < stat.max_load() as f64 * 0.85,
            "adaptive {} vs static {}",
            adap.max_load(),
            stat.max_load()
        );
    }

    #[test]
    fn balanced_stream_never_reshapes() {
        let arrivals = drifting_stream(4000, 0, 1, 9);
        let run = simulate(16, &arrivals, true, 10);
        assert_eq!(run.reshapes, 0);
        assert_eq!(run.migrated, 0);
    }
}
