//! Checkpoint storage and §5 peer-replica reconstruction.
//!
//! The standing-view checkpoint protocol (see [`crate::standing`]) flows an
//! aligned barrier through the data plane every
//! [`checkpoint_interval`](crate::MultiwayConfig::checkpoint_interval)
//! epochs; at alignment every stateful operator serializes its state (the
//! [`squall_join::Snapshot`] contract) and ships the blob to the
//! coordinator. This module is the coordinator side: the
//! [`CheckpointStore`] collects blobs per epoch, knows when a checkpoint is
//! *complete* (every join task plus the view sink reported), and hands a
//! [`RestoreState`] to recovery.
//!
//! It also implements the paper's §5 observation as a store feature: "if
//! the partitioning scheme replicates tuples, a failed node can recover its
//! state from some of its peers rather than from a disk checkpoint".
//! When the newest checkpoint is missing exactly the blobs of a lost
//! worker, [`CheckpointStore::reconstruct_newest`] rebuilds them from the
//! surviving replicas' blobs — provided the scheme's replication makes that
//! sound — instead of falling back to an older complete checkpoint.

use std::collections::BTreeMap;

use squall_common::codec::{self, Reader};
use squall_common::{FxHashMap, Result, SplitMix64, Tuple};
use squall_partition::hypercube::DimRole;
use squall_partition::HypercubeScheme;

use crate::recovery::PlacementTracker;

/// Blob role byte: a join bolt's state.
pub const ROLE_JOIN: u8 = 0;
/// Blob role byte: the view sink's state.
pub const ROLE_SINK: u8 = 1;

/// Join-blob tag byte: full-history join (base relations only — the format
/// peer reconstruction understands).
pub const JOIN_BLOB_FULL: u8 = 0;
/// Join-blob tag byte: windowed join (opaque buffers; restorable but not
/// peer-reconstructable).
pub const JOIN_BLOB_WINDOWED: u8 = 1;

/// One snapshot blob in flight from an operator to the coordinator:
/// `(role, task, epoch, payload)`.
pub type SnapshotBlobMsg = (u8, usize, u64, Vec<u8>);

/// The blobs collected for one checkpoint epoch.
#[derive(Debug, Default, Clone)]
pub struct EpochBlobs {
    /// Join-task id → serialized join state (tag byte + snapshot bytes).
    pub join: FxHashMap<usize, Vec<u8>>,
    /// The view sink's serialized state.
    pub sink: Option<Vec<u8>>,
}

/// Everything needed to restart a standing view from a checkpoint.
#[derive(Debug, Default, Clone)]
pub struct RestoreState {
    /// The checkpoint's epoch: operators resume holding state *through*
    /// this epoch, and the sink dedups replays at it.
    pub epoch: u64,
    /// Join-task id → blob, for every join task.
    pub join: FxHashMap<usize, Vec<u8>>,
    /// The view sink's blob.
    pub sink: Option<Vec<u8>>,
}

/// Coordinator-side store of checkpoint blobs, newest epochs last.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    epochs: BTreeMap<u64, EpochBlobs>,
    n_join_tasks: usize,
}

impl CheckpointStore {
    /// A store expecting `n_join_tasks` join blobs (plus one sink blob) per
    /// complete checkpoint.
    pub fn new(n_join_tasks: usize) -> CheckpointStore {
        CheckpointStore { epochs: BTreeMap::new(), n_join_tasks }
    }

    /// File one blob. Unknown roles are ignored (forward compatibility);
    /// re-sent blobs overwrite.
    pub fn insert(&mut self, (role, task, epoch, payload): SnapshotBlobMsg) {
        let slot = self.epochs.entry(epoch).or_default();
        match role {
            ROLE_JOIN => {
                slot.join.insert(task, payload);
            }
            ROLE_SINK => slot.sink = Some(payload),
            _ => {}
        }
    }

    /// Whether every expected blob for `epoch` arrived.
    pub fn is_complete(&self, epoch: u64) -> bool {
        self.epochs
            .get(&epoch)
            .is_some_and(|b| b.sink.is_some() && b.join.len() >= self.n_join_tasks)
    }

    /// The newest epoch with a complete blob set.
    pub fn latest_complete(&self) -> Option<u64> {
        self.epochs.keys().rev().copied().find(|&e| self.is_complete(e))
    }

    /// The newest epoch any blob arrived for (complete or not).
    pub fn newest(&self) -> Option<u64> {
        self.epochs.keys().next_back().copied()
    }

    /// Assemble the restore state of a complete checkpoint.
    pub fn restore_state(&self, epoch: u64) -> Option<RestoreState> {
        if !self.is_complete(epoch) {
            return None;
        }
        let blobs = self.epochs.get(&epoch)?;
        Some(RestoreState { epoch, join: blobs.join.clone(), sink: blobs.sink.clone() })
    }

    /// Drop every checkpoint older than `keep_from` (bounded storage: once
    /// a newer checkpoint completes, older ones are never restored).
    pub fn trim_below(&mut self, keep_from: u64) {
        self.epochs = self.epochs.split_off(&keep_from);
    }

    /// §5 peer-replica reconstruction: complete the newest (partial)
    /// checkpoint from surviving replicas' blobs, without falling back to
    /// an older epoch. Returns the completed epoch when reconstruction was
    /// sound and succeeded.
    ///
    /// Soundness requires that routing is reproducible (no
    /// [`DimRole::Random`] axes — standing views pin the Hash scheme, which
    /// guarantees this), every present join blob is a full-history blob,
    /// the sink blob arrived (the sink lives on the coordinator), and every
    /// *replica group* (machines agreeing on all non-Spread coordinates)
    /// that lost a member kept at least one member with a blob — otherwise
    /// some tuples are unrecoverable from peers and an older complete
    /// checkpoint must be used instead.
    pub fn reconstruct_newest(&mut self, scheme: &HypercubeScheme, n_rels: usize) -> Option<u64> {
        let epoch = self.newest()?;
        if self.is_complete(epoch) {
            return Some(epoch);
        }
        let blobs = self.epochs.get(&epoch)?;
        blobs.sink.as_ref()?;
        if scheme.roles.iter().flatten().any(|r| matches!(r, DimRole::Random)) {
            return None; // routing not reproducible offline
        }
        if blobs.join.values().any(|b| b.first() != Some(&JOIN_BLOB_FULL)) {
            return None; // windowed blobs are opaque to peers
        }
        let routed = scheme.machines();
        let missing: Vec<usize> =
            (0..self.n_join_tasks).filter(|t| !blobs.join.contains_key(t)).collect();
        for rel in 0..n_rels {
            if !replica_groups_covered(scheme, rel, &missing, &blobs.join) {
                return None;
            }
        }

        // Union the surviving stores and re-derive every tuple's placement
        // with the scheme's (deterministic) routing.
        let mut stored: FxHashMap<(usize, Tuple), i64> = FxHashMap::default();
        for (&task, blob) in &blobs.join {
            if task >= routed {
                continue;
            }
            let rels = parse_full_blob(blob).ok()?;
            for (rel, rows) in rels.into_iter().enumerate() {
                for (tuple, mult) in rows {
                    stored.entry((rel, tuple)).or_insert(mult);
                }
            }
        }
        let mut tracker = PlacementTracker::new();
        let mut rng = SplitMix64::new(0);
        let mut out = Vec::new();
        for (rel, tuple) in stored.keys() {
            scheme.route(*rel, tuple, &mut rng, &mut out);
            tracker.record(*rel, tuple, &out);
        }

        let mut rebuilt: Vec<(usize, Vec<u8>)> = Vec::new();
        for &task in &missing {
            let mut rows: Vec<FxHashMap<Tuple, i64>> = vec![FxHashMap::default(); n_rels];
            if task < routed {
                let plan = tracker.plan_recovery(task);
                if !plan.unrecoverable.is_empty() {
                    return None;
                }
                for r in plan.recovered {
                    let mult = *stored.get(&(r.rel, r.tuple.clone()))?;
                    rows[r.rel].insert(r.tuple, mult);
                }
            }
            rebuilt.push((task, serialize_full_blob(&rows)));
        }
        let slot = self.epochs.get_mut(&epoch)?;
        for (task, blob) in rebuilt {
            slot.join.insert(task, blob);
        }
        Some(epoch)
    }
}

/// True when, for `rel`, every replica group containing a missing task also
/// contains a surviving task with a blob. A replica group is the set of
/// machines agreeing on every non-Spread coordinate — exactly the replica
/// set of the tuples routed there (Spread axes replicate across all their
/// coordinates, §5).
fn replica_groups_covered(
    scheme: &HypercubeScheme,
    rel: usize,
    missing: &[usize],
    present: &FxHashMap<usize, Vec<u8>>,
) -> bool {
    let routed = scheme.machines();
    let group_of = |m: usize| -> Vec<usize> {
        coords(scheme, m)
            .into_iter()
            .zip(&scheme.roles[rel])
            .filter(|(_, role)| !matches!(role, DimRole::Spread))
            .map(|(c, _)| c)
            .collect()
    };
    let mut lost_groups: Vec<Vec<usize>> =
        missing.iter().filter(|&&m| m < routed).map(|&m| group_of(m)).collect();
    lost_groups.sort();
    lost_groups.dedup();
    if lost_groups.is_empty() {
        return true;
    }
    let covered: std::collections::HashSet<Vec<usize>> =
        present.keys().filter(|&&m| m < routed).map(|&m| group_of(m)).collect();
    lost_groups.iter().all(|g| covered.contains(g))
}

/// A machine's hypercube coordinates (row-major, matching the scheme's
/// routing strides).
fn coords(scheme: &HypercubeScheme, machine: usize) -> Vec<usize> {
    let mut strides = vec![1usize; scheme.dims.len()];
    for i in (0..scheme.dims.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * scheme.dims[i + 1].size;
    }
    scheme.dims.iter().zip(&strides).map(|(dim, stride)| (machine / stride) % dim.size).collect()
}

/// Parse a full-history join blob (tag byte + the
/// [`squall_join::DBToasterJoin`] snapshot format) into per-relation
/// `(tuple, multiplicity)` rows.
pub fn parse_full_blob(blob: &[u8]) -> Result<Vec<Vec<(Tuple, i64)>>> {
    let mut r = Reader::new(blob);
    let tag = r.u8()?;
    if tag != JOIN_BLOB_FULL {
        return Err(squall_common::SquallError::Codec("not a full-history join blob".into()));
    }
    let n_rels = r.len()?;
    let mut rels = Vec::with_capacity(n_rels);
    for _ in 0..n_rels {
        let n = r.len()?;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let t = codec::get_tuple(&mut r)?;
            let m = r.i64()?;
            rows.push((t, m));
        }
        rels.push(rows);
    }
    r.finish()?;
    Ok(rels)
}

/// Serialize per-relation stores into a full-history join blob,
/// byte-identical to what the lost join task itself would have produced
/// (rows sorted, [`squall_join::DBToasterJoin`] snapshot format).
pub fn serialize_full_blob(rels: &[FxHashMap<Tuple, i64>]) -> Vec<u8> {
    let mut buf = vec![JOIN_BLOB_FULL];
    codec::put_u32(&mut buf, rels.len() as u32);
    for rows in rels {
        let mut sorted: Vec<(&Tuple, i64)> = rows.iter().map(|(t, &m)| (t, m)).collect();
        sorted.sort_by(|a, b| a.0.cmp(b.0));
        codec::put_u32(&mut buf, sorted.len() as u32);
        for (t, m) in sorted {
            codec::put_tuple(&mut buf, t);
            codec::put_i64(&mut buf, m);
        }
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::{tuple, DataType, Schema};
    use squall_expr::{JoinAtom, MultiJoinSpec, RelationDef};
    use squall_join::{DBToasterJoin, Snapshot};
    use squall_partition::hypercube::{Dimension, PartitionKind};

    fn chain3() -> MultiJoinSpec {
        let mk = |n: &str| {
            RelationDef::new(n, Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]), 0)
        };
        MultiJoinSpec::new(
            vec![mk("R"), mk("S"), mk("T")],
            vec![JoinAtom::eq(0, 1, 1, 0), JoinAtom::eq(1, 1, 2, 0)],
        )
        .unwrap()
    }

    /// A 2×2 hash cube over the chain: R spreads over z, T spreads over y,
    /// S is hashed on both (fully partitioned — the §5 unsound case).
    fn hash_cube() -> HypercubeScheme {
        HypercubeScheme::new(
            3,
            vec![
                Dimension {
                    name: "y".into(),
                    size: 2,
                    kind: PartitionKind::Hash,
                    members: vec![(0, 1), (1, 0)],
                },
                Dimension {
                    name: "z".into(),
                    size: 2,
                    kind: PartitionKind::Hash,
                    members: vec![(1, 1), (2, 0)],
                },
            ],
            3,
        )
    }

    fn join_blob(j: &DBToasterJoin) -> Vec<u8> {
        let mut buf = vec![JOIN_BLOB_FULL];
        j.snapshot_state(&mut buf);
        buf
    }

    /// Route `n` tuples per relation into per-machine joins and return each
    /// machine's blob.
    fn routed_blobs(scheme: &HypercubeScheme, n: usize) -> Vec<Vec<u8>> {
        let spec = chain3();
        let mut joins: Vec<DBToasterJoin> =
            (0..scheme.machines()).map(|_| DBToasterJoin::new(&spec)).collect();
        let mut rng = squall_common::SplitMix64::new(9);
        let mut out = Vec::new();
        let mut discard = Vec::new();
        for rel in 0..3 {
            for i in 0..n {
                let t = tuple![i as i64 % 5, (i * 31 % 7) as i64];
                scheme.route(rel, &t, &mut rng, &mut out);
                for &m in &out {
                    joins[m].delta(rel, &t, 1, &mut discard);
                    discard.clear();
                }
            }
        }
        joins.iter().map(join_blob).collect()
    }

    #[test]
    fn store_tracks_completeness_and_trims() {
        let mut store = CheckpointStore::new(2);
        store.insert((ROLE_JOIN, 0, 4, vec![1]));
        store.insert((ROLE_JOIN, 1, 4, vec![2]));
        assert!(!store.is_complete(4), "sink blob still missing");
        store.insert((ROLE_SINK, 0, 4, vec![3]));
        assert!(store.is_complete(4));
        store.insert((ROLE_JOIN, 0, 8, vec![4]));
        assert_eq!(store.latest_complete(), Some(4));
        assert_eq!(store.newest(), Some(8));
        let rs = store.restore_state(4).unwrap();
        assert_eq!(rs.epoch, 4);
        assert_eq!(rs.join[&1], vec![2]);
        assert_eq!(rs.sink, Some(vec![3]));
        store.trim_below(8);
        assert_eq!(store.latest_complete(), None);
        assert_eq!(store.newest(), Some(8));
    }

    #[test]
    fn blob_parse_serialize_roundtrips_dbtoaster_bytes() {
        let spec = chain3();
        let mut j = DBToasterJoin::new(&spec);
        let mut discard = Vec::new();
        for i in 0..30i64 {
            j.delta((i % 3) as usize, &tuple![i % 4, i % 6], 1, &mut discard);
            discard.clear();
        }
        let blob = join_blob(&j);
        let rels = parse_full_blob(&blob).unwrap();
        let maps: Vec<FxHashMap<Tuple, i64>> =
            rels.into_iter().map(|rows| rows.into_iter().collect()).collect();
        assert_eq!(serialize_full_blob(&maps), blob, "byte-identical re-serialization");
    }

    #[test]
    fn reconstructs_lost_replicated_blobs_byte_identically() {
        let scheme = hash_cube();
        let blobs = routed_blobs(&scheme, 40);
        // A one-task-per-machine layout; lose machine 3, but keep S sound:
        // S tuples on machine 3 exist nowhere else, so first check the
        // gate rejects, then lose only replicated state.
        let mut store = CheckpointStore::new(4);
        for (task, blob) in blobs.iter().enumerate() {
            if task != 3 {
                store.insert((ROLE_JOIN, task, 4, blob.clone()));
            }
        }
        store.insert((ROLE_SINK, 0, 4, vec![7]));
        assert_eq!(
            store.reconstruct_newest(&scheme, 3),
            None,
            "S is fully partitioned: losing a machine loses S tuples irrecoverably"
        );

        // Fully replicated cube (Spread on every axis for every relation):
        // any single loss is recoverable.
        let spread = HypercubeScheme::new(
            3,
            vec![
                Dimension {
                    name: "~a".into(),
                    size: 2,
                    kind: PartitionKind::Random,
                    members: vec![],
                },
                Dimension {
                    name: "~b".into(),
                    size: 2,
                    kind: PartitionKind::Random,
                    members: vec![],
                },
            ],
            1,
        );
        assert!(
            spread.roles.iter().flatten().all(|r| matches!(r, DimRole::Spread)),
            "dimensions without members spread every relation"
        );
        let blobs = routed_blobs(&spread, 25);
        let mut store = CheckpointStore::new(4);
        for (task, blob) in blobs.iter().enumerate() {
            if task != 2 {
                store.insert((ROLE_JOIN, task, 6, blob.clone()));
            }
        }
        store.insert((ROLE_SINK, 0, 6, vec![9]));
        assert_eq!(store.reconstruct_newest(&spread, 3), Some(6));
        let rs = store.restore_state(6).unwrap();
        assert_eq!(rs.join[&2], blobs[2], "rebuilt blob is byte-identical to the lost one");
    }

    #[test]
    fn tasks_beyond_the_scheme_get_empty_blobs() {
        let scheme = hash_cube();
        let blobs = routed_blobs(&scheme, 10);
        // 6 join tasks but the scheme only routes to 4: tasks 4 and 5 are
        // empty; losing one is always reconstructable.
        let mut store = CheckpointStore::new(6);
        for (task, blob) in blobs.iter().enumerate() {
            store.insert((ROLE_JOIN, task, 2, blob.clone()));
        }
        store.insert((ROLE_JOIN, 4, 2, join_blob(&DBToasterJoin::new(&chain3()))));
        store.insert((ROLE_SINK, 0, 2, vec![1]));
        assert_eq!(store.reconstruct_newest(&scheme, 3), Some(2));
        let rs = store.restore_state(2).unwrap();
        assert_eq!(rs.join[&5], join_blob(&DBToasterJoin::new(&chain3())));
    }
}
