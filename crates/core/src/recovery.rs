//! Replication-aware peer recovery (§5 "Fault tolerance").
//!
//! "If the partitioning scheme replicates tuples, a failed node can
//! recover its state from some of its peers rather than from a disk
//! checkpoint. For example, if a machine with coordinates {1,1,1} fails,
//! we can recover its state from any machine {1,*,*} (for R), {*,1,*}
//! (for S) and {*,*,1} (for T)."
//!
//! This module implements that observation as a library feature over any
//! [`HypercubeScheme`]: given the per-machine stored placements, compute a
//! recovery plan for a failed machine — which peer supplies each lost
//! tuple — and report the tuples that are *not* recoverable from peers
//! (those a non-replicating dimension stored on the failed machine only),
//! which must come from a checkpoint instead.

use squall_common::{FxHashMap, Tuple};
use squall_partition::HypercubeScheme;

/// Where one lost tuple can be re-fetched from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredTuple {
    pub rel: usize,
    pub tuple: Tuple,
    /// A peer machine holding a replica.
    pub from_peer: usize,
}

/// The outcome of planning recovery for one failed machine.
#[derive(Debug, Default)]
pub struct RecoveryPlan {
    /// Tuples recoverable from peers, with a chosen donor each.
    pub recovered: Vec<RecoveredTuple>,
    /// Tuples stored only on the failed machine (peer recovery
    /// impossible; a disk checkpoint is needed — the §5 trade-off).
    pub unrecoverable: Vec<(usize, Tuple)>,
}

/// Tracks where every routed tuple lives, exactly as the runtime placed
/// it. (In the real system each machine knows its own store; the tracker
/// is the test/simulation stand-in for the cluster's collective state.)
#[derive(Debug, Default)]
pub struct PlacementTracker {
    /// `(rel, tuple)` → machines holding a replica.
    placements: FxHashMap<(usize, Tuple), Vec<usize>>,
}

impl PlacementTracker {
    pub fn new() -> PlacementTracker {
        PlacementTracker::default()
    }

    /// Record one routing decision (the target list a scheme produced).
    pub fn record(&mut self, rel: usize, tuple: &Tuple, machines: &[usize]) {
        self.placements.entry((rel, tuple.clone())).or_default().extend_from_slice(machines);
    }

    /// Tuples stored on a machine.
    pub fn stored_on(&self, machine: usize) -> Vec<(usize, Tuple)> {
        let mut out: Vec<(usize, Tuple)> = self
            .placements
            .iter()
            .filter(|(_, ms)| ms.contains(&machine))
            .map(|((rel, t), _)| (*rel, t.clone()))
            .collect();
        out.sort();
        out
    }

    /// Plan recovery of `failed`: every lost tuple is sourced from the
    /// lowest-numbered surviving replica.
    pub fn plan_recovery(&self, failed: usize) -> RecoveryPlan {
        let mut plan = RecoveryPlan::default();
        for ((rel, tuple), machines) in &self.placements {
            if !machines.contains(&failed) {
                continue;
            }
            match machines.iter().copied().filter(|&m| m != failed).min() {
                Some(peer) => plan.recovered.push(RecoveredTuple {
                    rel: *rel,
                    tuple: tuple.clone(),
                    from_peer: peer,
                }),
                None => plan.unrecoverable.push((*rel, tuple.clone())),
            }
        }
        plan.recovered.sort_by(|a, b| (a.rel, &a.tuple).cmp(&(b.rel, &b.tuple)));
        plan.unrecoverable.sort();
        plan
    }
}

/// Fraction of a scheme's state that peer recovery can restore, per
/// relation: 1.0 when the relation is replicated across some dimension,
/// 0.0 when it is fully partitioned (every tuple on exactly one machine).
pub fn recoverable_fraction(scheme: &HypercubeScheme, rel: usize) -> f64 {
    if scheme.replication(rel) > 1 {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::{prop_assert, prop_assert_eq, prop_assert_ne};
    use squall_common::{tuple, SplitMix64};
    use squall_partition::hypercube::{Dimension, PartitionKind};

    /// Fig. 2b Random-Hypercube 2×2×2 (8 machines) — every relation
    /// replicated 4×.
    fn random_cube() -> HypercubeScheme {
        let dim = |name: &str, rel: usize| Dimension {
            name: name.into(),
            size: 2,
            kind: PartitionKind::Random,
            members: vec![(rel, 0)],
        };
        HypercubeScheme::new(3, vec![dim("~R", 0), dim("~S", 1), dim("~T", 2)], 3)
    }

    /// Fig. 2a Hash-Hypercube 2×2: S is fully partitioned (no replicas).
    fn hash_cube() -> HypercubeScheme {
        HypercubeScheme::new(
            3,
            vec![
                Dimension {
                    name: "y".into(),
                    size: 2,
                    kind: PartitionKind::Hash,
                    members: vec![(0, 1), (1, 0)],
                },
                Dimension {
                    name: "z".into(),
                    size: 2,
                    kind: PartitionKind::Hash,
                    members: vec![(1, 1), (2, 0)],
                },
            ],
            3,
        )
    }

    fn place(scheme: &HypercubeScheme, n: usize) -> PlacementTracker {
        let mut tracker = PlacementTracker::new();
        let mut rng = SplitMix64::new(7);
        let mut out = vec![];
        for rel in 0..3 {
            for i in 0..n {
                let t = tuple![i as i64, (i * 31 % 17) as i64];
                scheme.route(rel, &t, &mut rng, &mut out);
                tracker.record(rel, &t, &out);
            }
        }
        tracker
    }

    #[test]
    fn random_hypercube_fully_peer_recoverable() {
        // §5: "if a machine with coordinates {1,1,1} fails, we can recover
        // its state from any machine {1,*,*} (for R), {*,1,*} (for S) ..."
        let scheme = random_cube();
        let tracker = place(&scheme, 50);
        for failed in 0..scheme.machines() {
            let plan = tracker.plan_recovery(failed);
            assert!(
                plan.unrecoverable.is_empty(),
                "machine {failed}: {} unrecoverable",
                plan.unrecoverable.len()
            );
            let lost = tracker.stored_on(failed).len();
            assert_eq!(plan.recovered.len(), lost, "all lost tuples recovered");
            for r in &plan.recovered {
                assert_ne!(r.from_peer, failed);
            }
        }
    }

    #[test]
    fn hash_hypercube_partitioned_relation_needs_checkpoint() {
        // S is hashed on both dimensions → stored on exactly one machine:
        // peer recovery cannot restore it. R and T (replicated across one
        // axis) are recoverable.
        let scheme = hash_cube();
        let tracker = place(&scheme, 50);
        let mut s_unrecoverable = 0;
        let mut rt_unrecoverable = 0;
        for failed in 0..scheme.machines() {
            let plan = tracker.plan_recovery(failed);
            for (rel, _) in &plan.unrecoverable {
                if *rel == 1 {
                    s_unrecoverable += 1;
                } else {
                    rt_unrecoverable += 1;
                }
            }
        }
        assert_eq!(rt_unrecoverable, 0, "replicated relations are peer-recoverable");
        assert_eq!(s_unrecoverable, 50, "every S tuple lives on exactly one machine");
    }

    #[test]
    fn recoverable_fraction_matches_replication() {
        assert_eq!(recoverable_fraction(&random_cube(), 0), 1.0);
        assert_eq!(recoverable_fraction(&hash_cube(), 1), 0.0);
        assert_eq!(recoverable_fraction(&hash_cube(), 0), 1.0);
    }

    #[test]
    fn donor_is_a_true_replica() {
        let scheme = random_cube();
        let tracker = place(&scheme, 30);
        let plan = tracker.plan_recovery(3);
        for r in &plan.recovered {
            let machines = &tracker.placements[&(r.rel, r.tuple.clone())];
            assert!(machines.contains(&r.from_peer));
            assert!(machines.contains(&3));
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig {
            cases: 32,
            ..proptest::test_runner::ProptestConfig::default()
        })]

        /// §5 invariant over arbitrary hypercube shapes — replicating,
        /// partitioning and Spread dimensions alike: `plan_recovery`
        /// splits the failed machine's placement into `recovered` and
        /// `unrecoverable` with no tuple missing, duplicated, or
        /// invented, and every donor is a surviving machine.
        #[test]
        fn plan_exactly_partitions_lost_state(
            dim_codes in proptest::collection::vec(0u64..1000, 1..4),
            seed in 0u64..1000,
            failed_sel in 0u64..1000,
        ) {
            // Each code decodes one dimension: size 1..=3, Hash or
            // Random, and a member relation — or none, which
            // `HypercubeScheme::new` turns into a Spread (replicating)
            // role for every relation.
            let dims: Vec<Dimension> = dim_codes
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    let rel = ((c / 6) % 4) as usize;
                    Dimension {
                        name: format!("d{i}"),
                        size: 1 + (c % 3) as usize,
                        kind: if (c / 3) % 2 == 0 {
                            PartitionKind::Hash
                        } else {
                            PartitionKind::Random
                        },
                        members: if rel < 3 { vec![(rel, 0)] } else { Vec::new() },
                    }
                })
                .collect();
            let scheme = HypercubeScheme::new(3, dims, seed);
            let tracker = place(&scheme, 40);
            let failed = (failed_sel as usize) % scheme.machines();

            let lost = tracker.stored_on(failed);
            let plan = tracker.plan_recovery(failed);
            let mut covered: Vec<(usize, Tuple)> = plan
                .recovered
                .iter()
                .map(|r| (r.rel, r.tuple.clone()))
                .chain(plan.unrecoverable.iter().cloned())
                .collect();
            covered.sort();
            // Union == lost state; lengths match, so with unique
            // placement keys the two halves are also disjoint.
            prop_assert_eq!(covered, lost);
            for r in &plan.recovered {
                prop_assert_ne!(r.from_peer, failed);
                let machines = &tracker.placements[&(r.rel, r.tuple.clone())];
                prop_assert!(machines.contains(&r.from_peer), "donor holds a replica");
            }
        }
    }
}
