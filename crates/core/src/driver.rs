//! The execution driver: one call from a multi-way join query to a running
//! topology with per-machine metrics.
//!
//! This is the "Squall-to-Storm translator" of Figure 1 for the workloads
//! the paper evaluates: data sources → (partitioning-scheme groupings) →
//! join component → optional aggregation component. With
//! `scheme = Hybrid` / `local = DBToaster` the join component is the HyLD
//! operator of §3.4.

use std::sync::Arc;

use squall_common::{FxHashMap, Result, SquallError, Tuple};
use squall_expr::MultiJoinSpec;
use squall_join::{AggSpec, DBToasterJoin, LocalJoin, TraditionalJoin, WindowSpec};
use squall_partition::optimizer::{build_scheme, SchemeKind};
use squall_partition::HypercubeScheme;
use squall_runtime::{
    ClusterRun, Grouping, IterSpoutVec, NodeId, RunHandle, RunOutcome, SchedulerStats, Topology,
    TopologyBuilder, TransportStats, DEFAULT_BATCH_SIZE,
};

use crate::cluster::{boot_coordinator, ClusterSpec};

/// Which local join algorithm each machine runs (§3.3 / Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalJoinKind {
    Traditional,
    DBToaster,
}

impl std::fmt::Display for LocalJoinKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocalJoinKind::Traditional => write!(f, "traditional"),
            LocalJoinKind::DBToaster => write!(f, "DBToaster"),
        }
    }
}

/// Window semantics for the join component: the window shape plus each
/// relation's event-time column in its (post-projection) input schema.
///
/// The driver then installs event-time [`squall_join::WindowJoin`] bolts
/// and requires each relation's spout to emit in event-time order (the
/// planner sorts prepared inputs; see
/// `squall_runtime::sort_by_event_time`).
#[derive(Debug, Clone)]
pub struct WindowPlan {
    pub spec: WindowSpec,
    pub ts_cols: Vec<usize>,
}

/// Optional aggregation stage after the join.
///
/// With [`MultiwayConfig::window`] also set, the stage aggregates **per
/// window** instead of over the full join history: state is keyed by
/// `(window, group key)`, windows close on the minimum watermark across
/// the join tasks, and the result rows are
/// `(window_start, window_end, group…, agg…)` (bounds inclusive), emitted
/// in window order. Both modes shard across `parallelism` tasks by
/// group hash; per-window mode additionally runs a single ordered merge
/// sink behind the shards, so the window-order contract holds at any
/// parallelism with output byte-identical to a 1-task run.
#[derive(Debug, Clone)]
pub struct AggPlan {
    /// Group-by columns of the join output schema.
    pub group_cols: Vec<usize>,
    /// The aggregate columns, in output order.
    pub aggs: Vec<AggSpec>,
    /// Task count of the aggregation component.
    pub parallelism: usize,
}

/// Configuration of one multi-way join execution.
#[derive(Debug, Clone)]
pub struct MultiwayConfig {
    pub scheme: SchemeKind,
    pub local: LocalJoinKind,
    /// Machines for the join component.
    pub machines: usize,
    pub seed: u64,
    /// Per-machine stored-tuple budget (§7.3 memory overflow); `None` =
    /// unlimited.
    pub budget: Option<usize>,
    /// Spout tasks per relation.
    pub source_parallelism: usize,
    /// Aggregate the join output (results are then the aggregate rows).
    pub agg: Option<AggPlan>,
    /// Windowed join semantics; `None` = full history.
    pub window: Option<WindowPlan>,
    /// Collect full join results (`true`) or only per-machine counts
    /// (`false`; large-output benchmarks). Ignored when `agg` is set.
    pub collect_results: bool,
    /// Worker pool size executing the topology; `None` = the machine's
    /// available parallelism. Machines (tasks) may far exceed this.
    pub worker_threads: Option<usize>,
    /// Tuples per data-plane batch (1 = per-tuple messaging). Affects
    /// throughput only — routing stays per-tuple, so loads and results are
    /// batch-size independent.
    pub batch_size: usize,
    /// Split the topology across worker processes over TCP (`None` = run
    /// every task in this process). Routing, results and per-machine
    /// loads are placement-independent; only the wire moves.
    pub cluster: Option<ClusterSpec>,
    /// Resident (standing-view) topology: spouts are live queues that
    /// stay up after the initial load, tuples carry trailing
    /// multiplicity/epoch columns, and the sink is a view-maintenance
    /// bolt (see [`crate::standing`]). Workers use this flag to rebuild
    /// the standing topology shape instead of the batch one.
    pub standing: bool,
    /// Checkpoint every N epochs (standing views only; `0` disables). At
    /// each multiple an aligned barrier flows through the data plane and
    /// every stateful operator ships a snapshot blob to the coordinator's
    /// [`crate::checkpoint::CheckpointStore`].
    pub checkpoint_interval: u64,
    /// Declare a peer lost after this long without traffic (clustered
    /// standing views only; `0` disables liveness timeouts). Peers beat at
    /// a quarter of this interval when idle.
    pub heartbeat_timeout_ms: u64,
}

impl MultiwayConfig {
    pub fn new(scheme: SchemeKind, local: LocalJoinKind, machines: usize) -> MultiwayConfig {
        MultiwayConfig {
            scheme,
            local,
            machines,
            seed: 42,
            budget: None,
            source_parallelism: 1,
            agg: None,
            window: None,
            collect_results: true,
            worker_threads: None,
            batch_size: DEFAULT_BATCH_SIZE,
            cluster: None,
            standing: false,
            checkpoint_interval: 16,
            heartbeat_timeout_ms: 2000,
        }
    }

    pub fn with_budget(mut self, budget: usize) -> MultiwayConfig {
        self.budget = Some(budget);
        self
    }

    pub fn count_only(mut self) -> MultiwayConfig {
        self.collect_results = false;
        self
    }

    pub fn with_agg(mut self, agg: AggPlan) -> MultiwayConfig {
        self.agg = Some(agg);
        self
    }

    /// Run the join under window semantics (spouts must then feed each
    /// relation in event-time order).
    pub fn with_window(mut self, window: WindowPlan) -> MultiwayConfig {
        self.window = Some(window);
        self
    }
}

/// Everything a run reports (the §6 monitoring quantities).
///
/// ```
/// use squall_common::{tuple, DataType, Schema};
/// use squall_core::driver::{run_multiway, LocalJoinKind, MultiwayConfig};
/// use squall_expr::{JoinAtom, MultiJoinSpec, RelationDef};
/// use squall_partition::optimizer::SchemeKind;
///
/// let schema = Schema::of(&[("a", DataType::Int)]);
/// let spec = MultiJoinSpec::new(
///     vec![RelationDef::new("R", schema.clone(), 2), RelationDef::new("S", schema, 2)],
///     vec![JoinAtom::eq(0, 0, 1, 0)],
/// ).unwrap();
/// let data = vec![vec![tuple![1], tuple![2]], vec![tuple![2], tuple![3]]];
/// let cfg = MultiwayConfig::new(SchemeKind::Hybrid, LocalJoinKind::DBToaster, 2);
/// let report = run_multiway(&spec, data, &cfg).unwrap();
/// assert!(report.error.is_none());
/// assert_eq!(report.result_count, 1, "only the key 2 joins");
/// assert_eq!(report.input_count, 4);
/// assert_eq!(report.loads.len(), 2, "one load counter per join machine");
/// assert!(report.max_load() >= 1 && report.avg_load() > 0.0);
/// ```
#[derive(Debug)]
pub struct JoinReport {
    /// Join results (or aggregate rows when an [`AggPlan`] was set; or
    /// empty in count-only mode).
    pub results: Vec<Tuple>,
    /// Join results produced (valid in every mode).
    pub result_count: u64,
    /// Input tuples fed by the sources.
    pub input_count: u64,
    /// Input tuples per relation, in spec order — the per-step "actual
    /// rows" column of the planner's estimated-vs-actual explain table.
    /// Empty on paths that do not track per-relation counts (pipeline
    /// mode, standing views).
    pub input_counts: Vec<u64>,
    /// Per-join-machine received-tuple loads (Table 1).
    pub loads: Vec<u64>,
    /// Replication factor (§6, Table 2): join input ÷ source output.
    pub replication_factor: f64,
    /// Skew degree (§6): max load ÷ avg load.
    pub skew_degree: f64,
    /// Intermediate network factor (§6).
    pub network_factor: f64,
    /// Wall-clock time.
    pub elapsed: std::time::Duration,
    /// The scheme actually used (dimension sizes etc.).
    pub scheme_description: String,
    /// Cooperative-scheduler observations (worker pool size, steals,
    /// yields, backpressure parks, max inbox depth). Unlike `loads`, the
    /// steal/yield counts are scheduling artifacts and not deterministic
    /// across runs.
    pub scheduler: SchedulerStats,
    /// Set when the run aborted (e.g. memory overflow) — the metrics above
    /// still describe the partial run, matching the paper's extrapolation
    /// methodology for the Hash-Hypercube OOM.
    pub error: Option<SquallError>,
    /// Wire traffic per peer (bytes/batches sent and received) when the
    /// run was split across processes; `None` for single-process runs.
    pub transport: Option<TransportStats>,
    /// View-maintenance counters for resident (standing-view) runs;
    /// `None` for batch queries.
    pub maintenance: Option<MaintenanceStats>,
}

/// Incremental-maintenance counters of one resident view (surfaced
/// through [`JoinReport::maintenance`] and the session's `explain`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// `append()` rounds acknowledged since launch.
    pub appends: u64,
    /// `retract()` rounds acknowledged since launch.
    pub retractions: u64,
    /// Signed deltas the view sink received from the delta join.
    pub deltas_in: u64,
    /// Epochs fully applied (initial load = epoch 1).
    pub epochs_applied: u64,
    /// Net row changes (+1/−1 entries) applied to the materialized rows.
    pub rows_changed: u64,
    /// Consistent snapshots served.
    pub snapshots: u64,
    /// Completed checkpoints (all operator blobs stored).
    pub checkpoints: u64,
    /// Recoveries performed after a lost worker.
    pub recoveries: u64,
    /// Epochs replayed after recovery and deduplicated at the view sink
    /// (exactly-once: replays never mutate the materialized rows twice).
    pub replayed_epochs: u64,
}

impl std::fmt::Display for MaintenanceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "appends {} retractions {} deltas-in {} epochs {} row-changes {} snapshots {} \
             checkpoints {} recoveries {} replayed-epochs {}",
            self.appends,
            self.retractions,
            self.deltas_in,
            self.epochs_applied,
            self.rows_changed,
            self.snapshots,
            self.checkpoints,
            self.recoveries,
            self.replayed_epochs
        )
    }
}

impl JoinReport {
    pub fn max_load(&self) -> u64 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    pub fn avg_load(&self) -> f64 {
        if self.loads.is_empty() {
            0.0
        } else {
            self.loads.iter().sum::<u64>() as f64 / self.loads.len() as f64
        }
    }
}

fn make_local(kind: LocalJoinKind, spec: &MultiJoinSpec, count_only: bool) -> Box<dyn LocalJoin> {
    match (kind, count_only) {
        (LocalJoinKind::Traditional, _) => Box::new(TraditionalJoin::new(spec)),
        // Count-only consumers let DBToaster run with aggregated views —
        // the configuration the paper's Figure 8 measures.
        (LocalJoinKind::DBToaster, true) => {
            Box::new(squall_join::dbtoaster::AggregatedDBToaster::minimal(spec))
        }
        (LocalJoinKind::DBToaster, false) => Box::new(DBToasterJoin::new(spec)),
    }
}

/// Everything [`summarize`] needs to turn a finished (or drained) run into
/// a [`JoinReport`]: node ids, the chosen scheme, and the run mode.
pub(crate) struct RunContext {
    join_node: NodeId,
    source_nodes: Vec<NodeId>,
    agg_node: Option<NodeId>,
    /// The ordered window-merge sink (windowed aggregation only).
    merge_node: Option<NodeId>,
    scheme_description: String,
    input_count: u64,
    input_counts: Vec<u64>,
    agg_set: bool,
    collect_results: bool,
}

/// A validated, ready-to-run topology plus its reporting context.
pub(crate) struct Assembled {
    pub(crate) topology: Topology,
    pub(crate) ctx: RunContext,
}

/// Translate a multi-way join query into a runnable topology (the
/// Squall-to-Storm translation of Figure 1), shared by the collect-all,
/// streaming and distributed execution paths (workers rebuild the very
/// same topology from a shipped [`crate::cluster::JobSpec`] with empty
/// data — their spout tasks live on the coordinator).
pub(crate) fn assemble(
    spec: &MultiJoinSpec,
    data: Vec<Vec<Tuple>>,
    cfg: &MultiwayConfig,
) -> Result<Assembled> {
    if data.len() != spec.n_relations() {
        return Err(SquallError::InvalidPlan(format!(
            "{} relations but {} data streams",
            spec.n_relations(),
            data.len()
        )));
    }
    if let Some(w) = &cfg.window {
        if matches!(w.spec, WindowSpec::FullHistory) {
            // FullHistory is the *absence* of a window plan; under an
            // aggregate it would panic inside the per-window bolt, so
            // reject it as the typed planning error it is.
            return Err(SquallError::InvalidPlan(
                "a window plan must be tumbling or sliding (FullHistory = no window)".into(),
            ));
        }
        if w.ts_cols.len() != spec.n_relations() {
            return Err(SquallError::InvalidPlan(format!(
                "window plan names {} ts columns for {} relations",
                w.ts_cols.len(),
                spec.n_relations()
            )));
        }
        for (rel, (&c, r)) in w.ts_cols.iter().zip(&spec.relations).enumerate() {
            if c >= r.schema.arity() {
                return Err(SquallError::InvalidPlan(format!(
                    "window ts column {c} out of range for relation {rel}"
                )));
            }
        }
    }
    let scheme: Arc<HypercubeScheme> =
        Arc::new(build_scheme(cfg.scheme, spec, cfg.machines, cfg.seed)?);
    let scheme_description = scheme.describe();
    let input_counts: Vec<u64> = data.iter().map(|d| d.len() as u64).collect();
    let input_count: u64 = input_counts.iter().sum();

    let mut b = TopologyBuilder::new().batch_size(cfg.batch_size.max(1));
    if let Some(workers) = cfg.worker_threads {
        b = b.worker_threads(workers);
    }
    // One spout per relation, split across source_parallelism tasks.
    // Windowed runs pin each relation to one spout task: the watermark
    // eviction contract needs per-relation event-time order at every join
    // task, which strided multi-task spouts would break.
    let mut source_nodes = Vec::with_capacity(data.len());
    for (rel, tuples) in data.into_iter().enumerate() {
        let shared = Arc::new(tuples);
        let par = if cfg.window.is_some() { 1 } else { cfg.source_parallelism.max(1) };
        let node = b.add_spout(format!("src-{}", spec.relations[rel].name), par, move |task| {
            Box::new(IterSpoutVec::strided(Arc::clone(&shared), task, par))
        });
        source_nodes.push(node);
    }

    // The join component.
    let spec_arc = Arc::new(spec.clone());
    let origin_map: FxHashMap<usize, usize> =
        source_nodes.iter().enumerate().map(|(rel, &node)| (node, rel)).collect();
    let local = cfg.local;
    let budget = cfg.budget;
    let count_only = cfg.agg.is_none() && !cfg.collect_results;
    // Windowed joins always materialize result tuples inside the bolt
    // (the window predicate reads their event-time columns), so the
    // aggregated count-only views — which elide those columns — are out.
    let minimal_views = count_only && cfg.window.is_none();
    let emit = if count_only {
        crate::operators::JoinEmit::CountOnly
    } else {
        crate::operators::JoinEmit::Results
    };
    let spec_for_bolt = Arc::clone(&spec_arc);
    let origin_map = Arc::new(origin_map);
    let window = cfg.window.clone();
    // Windowed aggregation downstream: the join tasks forward their
    // event-time watermarks (throttled to one per window length) so the
    // aggregate can close windows while the stream is still running.
    let windowed_agg = cfg.window.is_some() && cfg.agg.is_some();
    let join_node = b.add_bolt("join", cfg.machines, move |task| {
        let origin_to_rel: FxHashMap<usize, usize> =
            origin_map.iter().map(|(&k, &v)| (k, v)).collect();
        let local_join = make_local(local, &spec_for_bolt, minimal_views);
        let mut bolt = match &window {
            Some(w) => {
                let arities: Vec<usize> =
                    spec_for_bolt.relations.iter().map(|r| r.schema.arity()).collect();
                let mut bolt = crate::operators::JoinBolt::new_windowed(
                    task,
                    origin_to_rel,
                    local_join,
                    emit,
                    w.spec,
                    w.ts_cols.clone(),
                    &arities,
                );
                if windowed_agg {
                    let granule = match w.spec {
                        WindowSpec::Tumbling { width } => width,
                        WindowSpec::Sliding { size } => size,
                        WindowSpec::FullHistory => 1,
                    };
                    bolt = bolt.with_watermark_forwarding(granule);
                }
                bolt
            }
            None => crate::operators::JoinBolt::new(
                task,
                origin_to_rel,
                local_join,
                spec_for_bolt.n_relations(),
                emit,
            ),
        };
        if let Some(budget) = budget {
            bolt = bolt.with_budget(budget);
        }
        Box::new(bolt)
    });
    for (rel, &src) in source_nodes.iter().enumerate() {
        b.connect(src, join_node, Grouping::Custom(Arc::new(scheme.grouping_for(rel))));
    }

    // Optional aggregation.
    let mut agg_node = None;
    let mut merge_node = None;
    if let Some(agg) = &cfg.agg {
        let group_cols = agg.group_cols.clone();
        let aggs = agg.aggs.clone();
        let node = match &cfg.window {
            Some(w) => {
                // Per-window aggregation, group-hash sharded: a `Fields`
                // grouping on the group columns gives each of the
                // `parallelism` tasks a disjoint set of groups, so shard
                // state and shard output never overlap. The event-time
                // columns move to join-output coordinates (the same
                // mapping the windowed join uses for its result
                // predicate); every join task's watermark broadcasts to
                // every shard, so each shard closes against the same
                // cross-task minimum. A single merge task downstream
                // restores the global window-order contract (see
                // [`crate::operators::WindowMergeBolt`]).
                let arities: Vec<usize> = spec.relations.iter().map(|r| r.schema.arity()).collect();
                let ts_cols = squall_join::output_ts_cols(&arities, &w.ts_cols);
                let wspec = w.spec;
                let n_upstream = cfg.machines.max(1);
                let shards = agg.parallelism.max(1);
                let node = b.add_bolt("agg", shards, move |_task| {
                    Box::new(crate::operators::WindowedAggBolt::new(
                        wspec,
                        ts_cols.clone(),
                        group_cols.clone(),
                        aggs.clone(),
                        n_upstream,
                    ))
                });
                // No group columns hashes every row to one shard — the
                // remaining shards stay idle but still forward watermark
                // boundaries, so the merge never waits on them.
                b.connect(join_node, node, Grouping::Fields(agg.group_cols.clone()));
                let merge = b.add_bolt("agg-merge", 1, move |_task| {
                    Box::new(crate::operators::WindowMergeBolt::new(shards))
                });
                b.connect(node, merge, Grouping::Global);
                merge_node = Some(merge);
                node
            }
            None => {
                let node = b.add_bolt("agg", agg.parallelism, move |_task| {
                    Box::new(crate::operators::AggBolt::new(
                        group_cols.clone(),
                        aggs.clone(),
                        false,
                    ))
                });
                // Group-key partitioning; a global grouping if no keys.
                let grouping = if agg.group_cols.is_empty() {
                    Grouping::Global
                } else {
                    Grouping::Fields(agg.group_cols.clone())
                };
                b.connect(join_node, node, grouping);
                node
            }
        };
        agg_node = Some(node);
    }

    Ok(Assembled {
        topology: b.build()?,
        ctx: RunContext {
            join_node,
            source_nodes,
            agg_node,
            merge_node,
            scheme_description,
            input_count,
            input_counts,
            agg_set: cfg.agg.is_some(),
            collect_results: cfg.collect_results,
        },
    })
}

/// Build the [`JoinReport`] for a finished run. `streamed_count` carries
/// the count-only tally when the sink output was consumed by a stream
/// rather than collected in `outcome.outputs`. For distributed runs the
/// remote peers' metric snapshots must already be merged into
/// `outcome.metrics` — the report then measures the whole cluster, and
/// `loads` is identical to the single-process run.
fn summarize(
    ctx: RunContext,
    outcome: RunOutcome,
    streamed_count: Option<u64>,
    transport: Option<TransportStats>,
) -> JoinReport {
    let metrics = &outcome.metrics;
    let join_metrics = metrics.node(ctx.join_node);
    let result_count = match (ctx.agg_set, ctx.collect_results) {
        (true, _) | (false, true) => join_metrics.total_emitted(),
        (false, false) => streamed_count.unwrap_or_else(|| {
            // Count-only: the emitted tuples are per-task counters.
            outcome.outputs.iter().map(|(_, t)| t.get(0).as_int().unwrap_or(0) as u64).sum()
        }),
    };
    let loads = join_metrics.received.clone();
    let replication_factor = metrics.replication_factor(ctx.join_node, &ctx.source_nodes);
    let skew_degree = join_metrics.skew_degree();
    let sinks = [ctx.merge_node.or(ctx.agg_node).unwrap_or(ctx.join_node)];
    let network_factor = metrics.intermediate_network_factor(&ctx.source_nodes, &sinks);
    let results = match (ctx.agg_set, ctx.collect_results) {
        (false, false) => Vec::new(),
        _ => outcome.outputs.into_iter().map(|(_, t)| t).collect(),
    };
    JoinReport {
        results,
        result_count,
        input_count: ctx.input_count,
        input_counts: ctx.input_counts,
        loads,
        replication_factor,
        skew_degree,
        network_factor,
        elapsed: outcome.elapsed,
        scheme_description: ctx.scheme_description,
        scheduler: outcome.metrics.scheduler.clone(),
        error: outcome.error,
        transport,
        maintenance: None,
    }
}

/// Run a multi-way join (optionally + aggregation) end to end.
///
/// `data[rel]` is relation `rel`'s input stream. Deterministic: the same
/// inputs, config and seed produce the same loads and results — including
/// under a [`MultiwayConfig::cluster`] split, where the same topology runs
/// across OS processes over TCP.
pub fn run_multiway(
    spec: &MultiJoinSpec,
    data: Vec<Vec<Tuple>>,
    cfg: &MultiwayConfig,
) -> Result<JoinReport> {
    if cfg.cluster.is_some() {
        // The distributed data plane is inherently streaming (remote sink
        // rows arrive over the wire); collect it.
        let mut stream = run_multiway_stream(spec, data, cfg)?;
        let rows: Vec<Tuple> = stream.by_ref().collect();
        let mut report = stream.finish();
        report.results = rows;
        return Ok(report);
    }
    let Assembled { topology, ctx } = assemble(spec, data, cfg)?;
    Ok(summarize(ctx, topology.run(), None, None))
}

/// Launch a multi-way join and return a handle that yields result tuples
/// *while the topology runs* — the streaming face of the driver.
///
/// Results arrive in production order (no global sort); once the stream is
/// exhausted (or [`MultiwayStream::finish`] is called) the full
/// [`JoinReport`] is available, with `results` left empty since the rows
/// were handed to the consumer. In count-only mode the stream yields no
/// rows (the sink's per-task counters are tallied into the report
/// instead). A run that aborts mid-way ends the stream early; the
/// report's `error` field records why.
pub fn run_multiway_stream(
    spec: &MultiJoinSpec,
    data: Vec<Vec<Tuple>>,
    cfg: &MultiwayConfig,
) -> Result<MultiwayStream> {
    let Assembled { topology, ctx } = assemble(spec, data, cfg)?;
    let count_only = !ctx.agg_set && !ctx.collect_results;
    let (handle, cluster) = match &cfg.cluster {
        None => (topology.launch(), None),
        Some(cluster_spec) => {
            let (placement, links) =
                boot_coordinator(topology.layout(), spec, cfg, cluster_spec, None, None)?;
            let (handle, run) = topology.launch_cluster(placement, links);
            (handle, Some(run))
        }
    };
    Ok(MultiwayStream {
        handle: Some(handle),
        cluster,
        ctx: Some(ctx),
        report: None,
        count_only,
        streamed: 0,
    })
}

/// Iterator over a running multi-way join's output tuples. See
/// [`run_multiway_stream`].
pub struct MultiwayStream {
    // Field order is drop order: the local pool joins (punctuating every
    // egress queue) before the cluster links close.
    handle: Option<RunHandle>,
    cluster: Option<ClusterRun>,
    ctx: Option<RunContext>,
    report: Option<JoinReport>,
    count_only: bool,
    streamed: u64,
}

impl MultiwayStream {
    /// The run report; `Some` only after the stream is exhausted.
    pub fn report(&self) -> Option<&JoinReport> {
        self.report.as_ref()
    }

    /// Stop consuming early: abort the run, discard remaining output and
    /// return the (partial) report.
    pub fn cancel(mut self) -> JoinReport {
        if let Some(h) = &self.handle {
            h.abort();
        }
        while self.next().is_some() {}
        self.report.take().expect("report built on exhaustion")
    }

    /// Drain any remaining output and return the final report.
    pub fn finish(mut self) -> JoinReport {
        while self.next().is_some() {}
        self.report.take().expect("report built on exhaustion")
    }

    fn complete(&mut self) {
        if let (Some(handle), Some(ctx)) = (self.handle.take(), self.ctx.take()) {
            let streamed = self.count_only.then_some(self.streamed);
            let mut outcome = handle.finish();
            let mut transport = None;
            if let Some(cluster) = self.cluster.take() {
                // The local pool is joined: every egress queue holds its
                // final punctuation. Drain the links, fold the workers'
                // metric snapshots (their local task counters; everything
                // else zero) into ours, and adopt a remote error if we
                // had none.
                let summary = cluster.finish(None);
                for remote in &summary.remote_metrics {
                    outcome.metrics.merge(remote);
                }
                if outcome.error.is_none() {
                    outcome.error = summary.remote_error;
                }
                transport = Some(summary.transport);
            }
            self.report = Some(summarize(ctx, outcome, streamed, transport));
        }
    }
}

impl Iterator for MultiwayStream {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        loop {
            match self.handle.as_mut()?.recv() {
                Some((_, tuple)) => {
                    if self.count_only {
                        // Count-only sink emissions are per-task counters,
                        // not join rows: tally them, never yield them.
                        self.streamed += tuple.get(0).as_int().unwrap_or(0) as u64;
                        continue;
                    }
                    self.streamed += 1;
                    return Some(tuple);
                }
                None => {
                    self.complete();
                    return None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::{tuple, DataType, Schema, SplitMix64};
    use squall_expr::{JoinAtom, RelationDef, ScalarExpr};
    use squall_join::naive::{naive_join, same_multiset};

    fn rst_spec(skew_z: bool) -> MultiJoinSpec {
        let mut s_schema = Schema::of(&[("y", DataType::Int), ("z", DataType::Int)]);
        let mut t_schema = Schema::of(&[("z", DataType::Int), ("t", DataType::Int)]);
        if skew_z {
            s_schema.set_skewed("z").unwrap();
            t_schema.set_skewed("z").unwrap();
        }
        MultiJoinSpec::new(
            vec![
                RelationDef::new(
                    "R",
                    Schema::of(&[("x", DataType::Int), ("y", DataType::Int)]),
                    300,
                ),
                RelationDef::new("S", s_schema, 300),
                RelationDef::new("T", t_schema, 300),
            ],
            vec![JoinAtom::eq(0, 1, 1, 0), JoinAtom::eq(1, 1, 2, 0)],
        )
        .unwrap()
    }

    fn rst_data(n: usize, dom: i64, seed: u64) -> Vec<Vec<Tuple>> {
        let mut rng = SplitMix64::new(seed);
        let mut mk = |_: usize| -> Vec<Tuple> {
            (0..n).map(|_| tuple![rng.next_range(0, dom), rng.next_range(0, dom)]).collect()
        };
        vec![mk(0), mk(1), mk(2)]
    }

    #[test]
    fn all_schemes_and_locals_match_oracle() {
        let spec = rst_spec(false);
        let data = rst_data(120, 12, 5);
        let oracle = naive_join(&spec, &data);
        assert!(!oracle.is_empty());
        for scheme in [SchemeKind::Hash, SchemeKind::Random, SchemeKind::Hybrid] {
            for local in [LocalJoinKind::Traditional, LocalJoinKind::DBToaster] {
                let cfg = MultiwayConfig::new(scheme, local, 8);
                let report = run_multiway(&spec, data.clone(), &cfg).unwrap();
                assert!(report.error.is_none(), "{scheme} {local}: {:?}", report.error);
                assert!(
                    same_multiset(&report.results, &oracle),
                    "{scheme} + {local}: {} results vs oracle {} (scheme {})",
                    report.results.len(),
                    oracle.len(),
                    report.scheme_description,
                );
            }
        }
    }

    #[test]
    fn parallel_sources_do_not_change_results() {
        let spec = rst_spec(false);
        let data = rst_data(90, 10, 6);
        let oracle = naive_join(&spec, &data);
        let mut cfg = MultiwayConfig::new(SchemeKind::Hybrid, LocalJoinKind::DBToaster, 6);
        cfg.source_parallelism = 3;
        let report = run_multiway(&spec, data, &cfg).unwrap();
        assert!(same_multiset(&report.results, &oracle));
    }

    #[test]
    fn count_only_mode_counts_exactly() {
        let spec = rst_spec(false);
        let data = rst_data(100, 10, 7);
        let oracle = naive_join(&spec, &data);
        let cfg = MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, 4).count_only();
        let report = run_multiway(&spec, data, &cfg).unwrap();
        assert!(report.results.is_empty());
        assert_eq!(report.result_count, oracle.len() as u64);
    }

    #[test]
    fn aggregate_stage_runs() {
        // SELECT R.x, COUNT(*) GROUP BY R.x over the RST join.
        let spec = rst_spec(false);
        let data = rst_data(80, 8, 8);
        let oracle = naive_join(&spec, &data);
        let cfg = MultiwayConfig::new(SchemeKind::Hybrid, LocalJoinKind::DBToaster, 4).with_agg(
            AggPlan { group_cols: vec![0], aggs: vec![AggSpec::count()], parallelism: 3 },
        );
        let report = run_multiway(&spec, data, &cfg).unwrap();
        let total: i64 = report.results.iter().map(|t| t.get(1).as_int().unwrap()).sum();
        assert_eq!(total as usize, oracle.len(), "counts must sum to the join size");
        // Groups are disjoint across agg tasks (Fields grouping).
        let mut keys: Vec<_> = report.results.iter().map(|t| t.get(0).clone()).collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), n, "every group emitted exactly once");
    }

    #[test]
    fn sum_aggregate_matches_oracle() {
        let spec = rst_spec(false);
        let data = rst_data(80, 8, 9);
        let oracle = naive_join(&spec, &data);
        let expected: i64 = oracle.iter().map(|t| t.get(5).as_int().unwrap()).sum();
        let cfg = MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::Traditional, 4).with_agg(
            AggPlan {
                group_cols: vec![],
                aggs: vec![AggSpec::sum(ScalarExpr::col(5))],
                parallelism: 1,
            },
        );
        let report = run_multiway(&spec, data, &cfg).unwrap();
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.results[0], tuple![expected]);
    }

    /// Two event streams (key, ts), event-time sorted — the input shape
    /// windowed topologies require.
    fn event_streams(n: usize, dom: i64, ts_step: i64, seed: u64) -> Vec<Vec<Tuple>> {
        let mut rng = SplitMix64::new(seed);
        (0..2)
            .map(|_| {
                let mut ts = 0i64;
                (0..n)
                    .map(|_| {
                        ts += rng.next_range(0, ts_step);
                        tuple![rng.next_range(0, dom), ts]
                    })
                    .collect()
            })
            .collect()
    }

    fn two_stream_spec() -> MultiJoinSpec {
        let s = Schema::of(&[("k", DataType::Int), ("ts", DataType::Int)]);
        MultiJoinSpec::new(
            vec![RelationDef::new("A", s.clone(), 100), RelationDef::new("B", s, 100)],
            vec![JoinAtom::eq(0, 0, 1, 0)],
        )
        .unwrap()
    }

    /// Brute-force per-window GROUP BY COUNT oracle over the pair join.
    /// Windows: tumbling `[k·w, (k+1)·w)`, sliding `[s, s+size]` for every
    /// integer start — a row counts in a window iff both timestamps lie
    /// inside. Rows are `(start, end_inclusive, key, count)`.
    fn window_count_oracle(data: &[Vec<Tuple>], spec: WindowSpec) -> Vec<Tuple> {
        use std::collections::BTreeMap;
        let mut per_window: BTreeMap<(u64, i64), i64> = BTreeMap::new();
        for x in &data[0] {
            for y in &data[1] {
                if x.get(0) != y.get(0) {
                    continue;
                }
                let (tx, ty) =
                    (x.get(1).as_int().unwrap() as u64, y.get(1).as_int().unwrap() as u64);
                let (lo, hi) = (tx.min(ty), tx.max(ty));
                let key = x.get(0).as_int().unwrap();
                match spec {
                    WindowSpec::Tumbling { width } => {
                        if tx / width == ty / width {
                            *per_window.entry((hi / width * width, key)).or_insert(0) += 1;
                        }
                    }
                    WindowSpec::Sliding { size } => {
                        for s in hi.saturating_sub(size)..=lo {
                            *per_window.entry((s, key)).or_insert(0) += 1;
                        }
                    }
                    WindowSpec::FullHistory => unreachable!(),
                }
            }
        }
        per_window
            .into_iter()
            .map(|((start, key), count)| {
                let end = match spec {
                    WindowSpec::Tumbling { width } => start + width - 1,
                    WindowSpec::Sliding { size } => start + size,
                    WindowSpec::FullHistory => unreachable!(),
                };
                tuple![start as i64, end as i64, key, count]
            })
            .collect()
    }

    #[test]
    fn windowed_aggregate_matches_per_window_oracle() {
        let spec = two_stream_spec();
        for (wspec, seed) in
            [(WindowSpec::Tumbling { width: 10 }, 21u64), (WindowSpec::Sliding { size: 7 }, 22)]
        {
            let data = event_streams(60, 5, 4, seed);
            let oracle = window_count_oracle(&data, wspec);
            assert!(!oracle.is_empty(), "oracle must exercise something");
            let cfg = MultiwayConfig::new(SchemeKind::Hybrid, LocalJoinKind::DBToaster, 4)
                .with_window(WindowPlan { spec: wspec, ts_cols: vec![1, 1] })
                .with_agg(AggPlan {
                    group_cols: vec![0],
                    aggs: vec![AggSpec::count()],
                    parallelism: 3, // sharded: 3 tasks + the ordered merge
                });
            let report = run_multiway(&spec, data, &cfg).unwrap();
            assert!(report.error.is_none(), "{:?}", report.error);
            let mut rows = report.results.clone();
            rows.sort();
            assert_eq!(rows, oracle, "{wspec:?}");
        }
    }

    #[test]
    fn windowed_aggregate_streams_closed_windows_in_order() {
        let spec = two_stream_spec();
        let wspec = WindowSpec::Tumbling { width: 8 };
        let data = event_streams(80, 4, 3, 5);
        let oracle = window_count_oracle(&data, wspec);
        let cfg = MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, 3)
            .with_window(WindowPlan { spec: wspec, ts_cols: vec![1, 1] })
            .with_agg(AggPlan {
                group_cols: vec![0],
                aggs: vec![AggSpec::count()],
                parallelism: 1,
            });
        let mut stream = run_multiway_stream(&spec, data, &cfg).unwrap();
        let streamed: Vec<Tuple> = stream.by_ref().collect();
        assert!(stream.report().unwrap().error.is_none());
        // Production order is window order: starts are non-decreasing.
        let starts: Vec<i64> = streamed.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted, "closed windows must stream in window order");
        let mut rows = streamed;
        rows.sort();
        assert_eq!(rows, oracle);
    }

    #[test]
    fn sharded_windowed_agg_is_byte_identical_to_single_task() {
        // The tentpole contract: group-hash sharding + the watermark-driven
        // k-way merge reproduce the 1-task plane's output *byte for byte*,
        // in the same order — at any parallelism.
        let spec = two_stream_spec();
        for (wspec, seed) in
            [(WindowSpec::Tumbling { width: 10 }, 33u64), (WindowSpec::Sliding { size: 6 }, 34)]
        {
            let data = event_streams(80, 5, 4, seed);
            let run = |parallelism: usize| {
                let cfg = MultiwayConfig::new(SchemeKind::Hybrid, LocalJoinKind::DBToaster, 4)
                    .with_window(WindowPlan { spec: wspec, ts_cols: vec![1, 1] })
                    .with_agg(AggPlan {
                        group_cols: vec![0],
                        // COUNT plus SUM of an expression: exercises the
                        // precomputed-input accumulate path, not just the
                        // input-less counter bump.
                        aggs: vec![AggSpec::count(), AggSpec::sum(ScalarExpr::col(1))],
                        parallelism,
                    });
                let mut stream = run_multiway_stream(&spec, data.clone(), &cfg).unwrap();
                let rows: Vec<Tuple> = stream.by_ref().collect();
                let report = stream.finish();
                assert!(report.error.is_none(), "{:?}", report.error);
                rows
            };
            let baseline = run(1);
            assert!(!baseline.is_empty());
            for p in [2usize, 8] {
                assert_eq!(run(p), baseline, "parallelism {p} vs 1, {wspec:?}");
            }
        }
    }

    #[test]
    fn idle_shards_never_strand_the_merge() {
        // One live group at parallelism 8: seven shards never receive a
        // data row. They must still close (nothing) on the broadcast join
        // watermarks, forward their boundaries, and receive the final
        // u64::MAX watermark at Eos — otherwise the merge sink would hold
        // every released window until end-of-stream or hang a window open.
        let spec = two_stream_spec();
        let wspec = WindowSpec::Tumbling { width: 4 };
        let data = event_streams(40, 1, 3, 35); // dom = 1: single group key
        let oracle = window_count_oracle(&data, wspec);
        assert!(!oracle.is_empty());
        let cfg = MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, 3)
            .with_window(WindowPlan { spec: wspec, ts_cols: vec![1, 1] })
            .with_agg(AggPlan {
                group_cols: vec![0],
                aggs: vec![AggSpec::count()],
                parallelism: 8,
            });
        let mut stream = run_multiway_stream(&spec, data, &cfg).unwrap();
        let streamed: Vec<Tuple> = stream.by_ref().collect();
        assert!(stream.report().unwrap().error.is_none());
        let starts: Vec<i64> = streamed.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted, "window order survives idle shards");
        assert_eq!(streamed, oracle, "single-group rows are already window-ordered");
    }

    #[test]
    fn memory_budget_aborts_with_overflow() {
        let spec = rst_spec(false);
        let data = rst_data(400, 4, 10);
        let cfg = MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, 2)
            .count_only()
            .with_budget(50);
        let report = run_multiway(&spec, data, &cfg).unwrap();
        assert!(matches!(report.error, Some(SquallError::MemoryOverflow { .. })));
        // Partial metrics still available for extrapolation (§7.3).
        assert!(report.input_count > 0);
    }

    #[test]
    fn skewed_data_hybrid_beats_hash_on_max_load() {
        // zipf-style: z concentrated on one value → Hash-Hypercube piles
        // one machine; Hybrid randomizes the skewed dimension.
        let spec = rst_spec(true);
        let mut rng = SplitMix64::new(11);
        let n = 600;
        let r: Vec<Tuple> =
            (0..n).map(|_| tuple![rng.next_range(0, 50), rng.next_range(0, 50)]).collect();
        // 80% of S.z and T.z are the hot key 7.
        let hot = |rng: &mut SplitMix64| {
            if rng.next_f64() < 0.8 {
                7i64
            } else {
                rng.next_range(0, 50)
            }
        };
        let s: Vec<Tuple> = (0..n).map(|_| tuple![rng.next_range(0, 50), hot(&mut rng)]).collect();
        let t: Vec<Tuple> = (0..n).map(|_| tuple![hot(&mut rng), rng.next_range(0, 50)]).collect();
        let data = vec![r, s, t];

        let hash = run_multiway(
            &rst_spec(false), // skew flags off → Hash == Hybrid dims; use Hash kind
            data.clone(),
            &MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, 8).count_only(),
        )
        .unwrap();
        let hybrid = run_multiway(
            &spec,
            data.clone(),
            &MultiwayConfig::new(SchemeKind::Hybrid, LocalJoinKind::DBToaster, 8).count_only(),
        )
        .unwrap();
        assert_eq!(hash.result_count, hybrid.result_count, "same join output");
        assert!(
            (hybrid.max_load() as f64) < hash.max_load() as f64 * 0.75,
            "hybrid max load {} should beat hash {} (hybrid scheme: {})",
            hybrid.max_load(),
            hash.max_load(),
            hybrid.scheme_description,
        );
        assert!(hybrid.skew_degree < hash.skew_degree);
    }

    #[test]
    fn replication_factor_reported() {
        let spec = rst_spec(false);
        let data = rst_data(100, 10, 12);
        let cfg = MultiwayConfig::new(SchemeKind::Random, LocalJoinKind::DBToaster, 8).count_only();
        let report = run_multiway(&spec, data, &cfg).unwrap();
        // Random-Hypercube replicates: factor > 1; and loads are balanced.
        assert!(report.replication_factor > 1.0);
        assert!(report.skew_degree < 1.5, "random scheme balances load");
        assert!(report.network_factor > 0.0);
    }

    #[test]
    fn full_history_window_plan_rejected() {
        let spec = two_stream_spec();
        let cfg = MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, 2)
            .with_window(WindowPlan { spec: WindowSpec::FullHistory, ts_cols: vec![1, 1] })
            .with_agg(AggPlan {
                group_cols: vec![0],
                aggs: vec![AggSpec::count()],
                parallelism: 1,
            });
        let err = run_multiway(&spec, event_streams(10, 3, 2, 1), &cfg).unwrap_err();
        assert!(matches!(err, SquallError::InvalidPlan(_)), "{err}");
    }

    #[test]
    fn mismatched_data_rejected() {
        let spec = rst_spec(false);
        let cfg = MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, 2);
        assert!(run_multiway(&spec, vec![vec![], vec![]], &cfg).is_err());
    }

    #[test]
    fn streaming_yields_same_results_as_collected_run() {
        let spec = rst_spec(false);
        let data = rst_data(100, 10, 13);
        let oracle = naive_join(&spec, &data);
        let cfg = MultiwayConfig::new(SchemeKind::Hybrid, LocalJoinKind::DBToaster, 4);
        let mut stream = run_multiway_stream(&spec, data, &cfg).unwrap();
        assert!(stream.report().is_none(), "report only after exhaustion");
        let streamed: Vec<Tuple> = stream.by_ref().collect();
        let report = stream.report().expect("exhausted");
        assert!(report.error.is_none());
        assert!(report.results.is_empty(), "rows were handed to the consumer");
        assert_eq!(report.result_count, oracle.len() as u64);
        assert!(same_multiset(&streamed, &oracle));
        assert!(report.loads.iter().sum::<u64>() > 0);
    }

    #[test]
    fn streaming_count_only_report_tallies_counters() {
        let spec = rst_spec(false);
        let data = rst_data(100, 10, 7);
        let oracle = naive_join(&spec, &data);
        let cfg = MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, 4).count_only();
        let stream = run_multiway_stream(&spec, data, &cfg).unwrap();
        let report = stream.finish();
        assert_eq!(report.result_count, oracle.len() as u64);
    }
}
