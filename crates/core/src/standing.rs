//! The view-maintenance subsystem: **resident** topologies behind
//! `CREATE MATERIALIZED VIEW`.
//!
//! A standing view reuses the whole distributed data plane — spouts,
//! partitioning-scheme groupings, the DBToaster delta join — but never
//! reaches end-of-stream: its spouts drain [`LiveQueue`]s that the
//! session's `append()`/`retract()` path keeps feeding after launch.
//!
//! ## The delta plane
//!
//! Every tuple in a standing topology carries two trailing Int columns,
//! `[cols…, multiplicity, epoch]`:
//!
//! * **multiplicity** — Z-set-style signed weight (+1 insert, −1
//!   retract, |m|>1 for collapsed duplicates). The join applies it with
//!   [`DBToasterJoin::delta`], whose output weights are the exact signed
//!   change of the join result multiset.
//! * **epoch** — which `append()`/`retract()` round produced the delta.
//!   The initial load is epoch 1; every later round bumps the counter,
//!   pushes its deltas to the owning relations' queues and an epoch
//!   watermark to *all* queues.
//!
//! Trailing columns are invisible to routing: the partitioning scheme's
//! groupings only read join-key columns, which sit below the original
//! arity. Join tasks strip the bookkeeping columns, apply the signed
//! delta, and re-emit each result as `[result…, weight, epoch]`.
//!
//! ## Quiesce / snapshot protocol
//!
//! Epoch watermarks flow spout → join → sink. A join task forwards the
//! *minimum* epoch across its source frontiers, so when the sink's
//! minimum over all join tasks reaches `n`, every delta of every epoch
//! ≤ `n` has arrived (per-sender FIFO ordering; results are flushed
//! before their watermark). The sink buffers deltas per epoch and
//! applies whole epochs in order — robust to cross-task skew, since a
//! fast task's epoch-`n+1` deltas never contaminate epoch `n`. Applying
//! an epoch nets the changes into the shared row multiset, publishes a
//! [`ChangeBatch`] to subscribers and advances the applied-epoch
//! counter; `snapshot()` blocks until the applied epoch catches up with
//! the last issued one — read-your-writes for every acked append.
//!
//! `DROP MATERIALIZED VIEW` closes the queues; the spouts report Eos on
//! their next poll and the ordinary flush/punctuate shutdown cascade
//! tears the topology down — locally and across cluster workers alike.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use squall_common::codec::{self, Reader};
use squall_common::{FxHashMap, FxHashSet, Result, SquallError, Tuple, Value};
use squall_expr::{AggFunc, MultiJoinSpec, ScalarExpr};
use squall_join::{
    AggSpec, DBToasterJoin, GroupByAggregator, LocalJoin, Snapshot, WindowJoin, WindowSpec,
};
use squall_partition::optimizer::build_scheme;
use squall_runtime::{
    Bolt, ClusterRun, Grouping, LiveItem, LiveQueue, LiveSpout, NodeId, OutputCollector, RunHandle,
    TaskWaker, Topology, TopologyBuilder,
};

use crate::checkpoint::{
    CheckpointStore, RestoreState, SnapshotBlobMsg, JOIN_BLOB_FULL, JOIN_BLOB_WINDOWED, ROLE_JOIN,
    ROLE_SINK,
};
use crate::cluster::{boot_coordinator, ClusterSpec};
use crate::driver::{JoinReport, MaintenanceStats, MultiwayConfig};

/// How long a synchronous checkpoint round waits for all blobs before
/// proceeding with a partial checkpoint (recovery then falls back to the
/// last complete one, or completes this one from peer replicas).
const CHECKPOINT_DEADLINE: Duration = Duration::from_secs(30);

// ---------------------------------------------------------------------
// Plan
// ---------------------------------------------------------------------

/// Windowed-aggregate shape of a standing view: the window spec plus the
/// constituent event-time columns in join-output coordinates (what the
/// sink reads to expand a join result into its windows).
#[derive(Debug, Clone)]
pub struct ViewWindow {
    pub spec: WindowSpec,
    pub ts_cols: Vec<usize>,
}

/// Everything the view sink needs to turn signed join deltas into
/// materialized view rows. Built by the planner
/// (`PhysicalQuery::prepare_standing` at the plan layer).
#[derive(Debug, Clone)]
pub struct ViewPlan {
    /// Aggregate mode: group-by columns over the sink's input rows
    /// (join-output coordinates; windowed mode prepends
    /// `window_start`/`window_end`, so these are `[0, 1, orig+2…]`).
    pub group_cols: Vec<usize>,
    /// Aggregate columns, input expressions in sink-input coordinates.
    pub aggs: Vec<AggSpec>,
    /// Aggregate view (`true`) or plain projected multiset (`false`).
    pub is_aggregate: bool,
    /// HAVING over the raw aggregate row (group keys ++ aggregates,
    /// hidden ones included).
    pub having: Option<ScalarExpr>,
    /// Output projection in SELECT order: over the raw aggregate row in
    /// aggregate mode, over the join-output row otherwise.
    pub finalize: Vec<ScalarExpr>,
    /// SQL semantics: a global aggregate over zero rows is one row.
    pub emit_empty_agg: bool,
    /// Per-window aggregation (`None` = full-history).
    pub windowed: Option<ViewWindow>,
}

/// One applied epoch's net effect on the view, as signed row changes.
#[derive(Debug, Clone)]
pub struct ChangeBatch {
    /// The epoch whose application produced these changes.
    pub epoch: u64,
    /// Net `(row, ±count)` changes (zero-weight entries elided).
    pub changes: Vec<(Tuple, i64)>,
}

// ---------------------------------------------------------------------
// Shared view state (session-facing)
// ---------------------------------------------------------------------

#[derive(Default)]
struct Counters {
    appends: AtomicU64,
    retractions: AtomicU64,
    deltas_in: AtomicU64,
    epochs_applied: AtomicU64,
    rows_changed: AtomicU64,
    snapshots: AtomicU64,
    checkpoints: AtomicU64,
    recoveries: AtomicU64,
    replayed_epochs: AtomicU64,
}

struct ViewState {
    /// Highest fully applied epoch.
    applied: u64,
    /// The materialized view content as a row multiset.
    rows: FxHashMap<Tuple, i64>,
    subscribers: Vec<Sender<ChangeBatch>>,
}

/// The coordinator-side face of one resident view: the sink bolt applies
/// epochs into it; the session reads snapshots and subscribes to the
/// change stream out of it.
pub struct ViewShared {
    state: Mutex<ViewState>,
    cv: Condvar,
    counters: Counters,
    /// Set while a recovery tears the old run down: the dying sink's
    /// `finish` must not flush partially-received epochs into the rows.
    recovering: AtomicBool,
}

impl Default for ViewShared {
    fn default() -> Self {
        ViewShared::new()
    }
}

impl ViewShared {
    pub fn new() -> ViewShared {
        ViewShared {
            state: Mutex::new(ViewState {
                applied: 0,
                rows: FxHashMap::default(),
                subscribers: Vec::new(),
            }),
            cv: Condvar::new(),
            counters: Counters::default(),
            recovering: AtomicBool::new(false),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ViewState> {
        self.state.lock().expect("view state poisoned")
    }

    /// Highest fully applied epoch (0 before the initial load lands).
    pub fn applied_epoch(&self) -> u64 {
        self.lock().applied
    }

    /// Subscribe to the view's change stream: one [`ChangeBatch`] per
    /// epoch that actually changed rows, in epoch order.
    pub fn subscribe(&self) -> Receiver<ChangeBatch> {
        let (tx, rx) = std::sync::mpsc::channel();
        self.lock().subscribers.push(tx);
        rx
    }

    /// Apply one epoch's net changes, publish to subscribers and advance
    /// the applied-epoch watermark. Called by the sink bolt only.
    ///
    /// Exactly-once: an epoch at or below the applied watermark is a
    /// post-recovery *replay* — already in the rows and already published —
    /// so it is dropped here (returns `false`). The shared state persists
    /// across recoveries, which makes this the natural dedup point.
    fn publish(&self, epoch: u64, changes: Vec<(Tuple, i64)>) -> bool {
        let mut st = self.lock();
        if epoch <= st.applied {
            drop(st);
            self.cv.notify_all();
            return false;
        }
        for (row, m) in &changes {
            use std::collections::hash_map::Entry;
            match st.rows.entry(row.clone()) {
                Entry::Occupied(mut o) => {
                    *o.get_mut() += m;
                    if *o.get() == 0 {
                        o.remove();
                    }
                }
                Entry::Vacant(v) => {
                    if *m != 0 {
                        v.insert(*m);
                    }
                }
            }
        }
        self.counters.rows_changed.fetch_add(changes.len() as u64, Ordering::Relaxed);
        if !changes.is_empty() {
            let batch = ChangeBatch { epoch, changes };
            st.subscribers.retain(|s| s.send(batch.clone()).is_ok());
        }
        st.applied = st.applied.max(epoch);
        drop(st);
        self.cv.notify_all();
        true
    }

    /// Block until `epoch` is fully applied, then return the view rows
    /// (multiplicities expanded, unsorted). `probe` is polled while
    /// waiting so a dead topology surfaces its error instead of a
    /// timeout.
    pub fn snapshot_rows(
        &self,
        epoch: u64,
        timeout: Duration,
        probe: impl Fn() -> Option<SquallError>,
    ) -> Result<Vec<Tuple>> {
        let deadline = Instant::now() + timeout;
        let mut st = self.lock();
        while st.applied < epoch {
            if let Some(e) = probe() {
                return Err(e);
            }
            if Instant::now() >= deadline {
                return Err(SquallError::Runtime(format!(
                    "view snapshot timed out waiting for epoch {epoch} (applied {})",
                    st.applied
                )));
            }
            let (guard, _) =
                self.cv.wait_timeout(st, Duration::from_millis(25)).expect("view state poisoned");
            st = guard;
        }
        self.counters.snapshots.fetch_add(1, Ordering::Relaxed);
        let mut out = Vec::new();
        for (row, &m) in &st.rows {
            for _ in 0..m.max(0) {
                out.push(row.clone());
            }
        }
        Ok(out)
    }

    /// Current maintenance counters.
    pub fn stats(&self) -> MaintenanceStats {
        MaintenanceStats {
            appends: self.counters.appends.load(Ordering::Relaxed),
            retractions: self.counters.retractions.load(Ordering::Relaxed),
            deltas_in: self.counters.deltas_in.load(Ordering::Relaxed),
            epochs_applied: self.counters.epochs_applied.load(Ordering::Relaxed),
            rows_changed: self.counters.rows_changed.load(Ordering::Relaxed),
            snapshots: self.counters.snapshots.load(Ordering::Relaxed),
            checkpoints: self.counters.checkpoints.load(Ordering::Relaxed),
            recoveries: self.counters.recoveries.load(Ordering::Relaxed),
            replayed_epochs: self.counters.replayed_epochs.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------
// The delta join bolt
// ---------------------------------------------------------------------

enum StandingJoin {
    /// Full-history: DBToaster's delta processing with signed weights.
    Full(DBToasterJoin),
    /// Windowed event-time join; insertions only (windowed standing
    /// views are append-only).
    Windowed { join: WindowJoin<DBToasterJoin>, ts_cols: Vec<usize> },
}

/// One join task of a resident topology: strips the trailing
/// `[multiplicity, epoch]` columns, applies the signed delta to its
/// local join state, re-emits each result with the triggering epoch, and
/// forwards the minimum source-epoch watermark downstream.
pub struct ViewJoinBolt {
    origin_to_rel: FxHashMap<NodeId, usize>,
    join: StandingJoin,
    /// Latest epoch watermark per source spout node.
    frontiers: FxHashMap<NodeId, u64>,
    n_sources: usize,
    /// Last minimum forwarded to the sink.
    forwarded: u64,
    machine: usize,
    budget: Option<usize>,
    wbuf: Vec<(Tuple, i64)>,
    /// Checkpoint blob channel (local on the coordinator; forwarded as
    /// `SnapshotBlob` frames by the worker). `None` = checkpoints off.
    blob_tx: Option<Sender<SnapshotBlobMsg>>,
}

impl ViewJoinBolt {
    fn new(
        machine: usize,
        origin_to_rel: FxHashMap<NodeId, usize>,
        join: StandingJoin,
        n_sources: usize,
        budget: Option<usize>,
        blob_tx: Option<Sender<SnapshotBlobMsg>>,
    ) -> ViewJoinBolt {
        ViewJoinBolt {
            origin_to_rel,
            join,
            frontiers: FxHashMap::default(),
            n_sources,
            forwarded: 0,
            machine,
            budget,
            wbuf: Vec::new(),
            blob_tx,
        }
    }

    /// Rebuild join state from a checkpoint blob (tag byte + the wrapped
    /// operator's [`Snapshot`] bytes).
    fn restore(&mut self, blob: &[u8]) -> Result<()> {
        let mut r = Reader::new(blob);
        let tag = r.u8()?;
        match (&mut self.join, tag) {
            (StandingJoin::Full(j), JOIN_BLOB_FULL) => j.restore_state(&mut r)?,
            (StandingJoin::Windowed { join, .. }, JOIN_BLOB_WINDOWED) => {
                join.restore_state(&mut r)?
            }
            _ => return Err(SquallError::Codec("join checkpoint blob tag mismatch".into())),
        }
        r.finish()
    }
}

/// Split a delta-plane tuple into `(payload, multiplicity, epoch)`.
fn split_delta(tuple: &Tuple) -> Result<(Tuple, i64, i64)> {
    let n = tuple.arity();
    if n < 2 {
        return Err(SquallError::Runtime(format!(
            "delta-plane tuple too narrow ({n} columns; needs payload + mult + epoch)"
        )));
    }
    let mult = tuple.get(n - 2).as_int()?;
    let epoch = tuple.get(n - 1).as_int()?;
    Ok((Tuple::new(tuple.values()[..n - 2].to_vec()), mult, epoch))
}

impl Bolt for ViewJoinBolt {
    fn execute(&mut self, origin: NodeId, tuple: Tuple, out: &mut OutputCollector) -> Result<()> {
        let rel = *self
            .origin_to_rel
            .get(&origin)
            .ok_or_else(|| SquallError::Runtime(format!("unknown origin node {origin}")))?;
        let (base, mult, epoch) = split_delta(&tuple)?;
        self.wbuf.clear();
        match &mut self.join {
            StandingJoin::Full(j) => j.delta(rel, &base, mult, &mut self.wbuf),
            StandingJoin::Windowed { join, ts_cols } => {
                if mult != 1 {
                    return Err(SquallError::Runtime(format!(
                        "windowed standing views are append-only (got a weight-{mult} delta)"
                    )));
                }
                let ts = base.get(ts_cols[rel]).as_int()?;
                if ts < 0 {
                    return Err(SquallError::Runtime(format!(
                        "negative event-time timestamp {ts} on a windowed standing view"
                    )));
                }
                join.insert_weighted(rel, ts as u64, &base, &mut self.wbuf);
            }
        }
        for (t, m) in self.wbuf.drain(..) {
            let mut v = t.values().to_vec();
            v.push(Value::Int(m));
            v.push(Value::Int(epoch));
            out.emit(Tuple::new(v));
        }
        if let Some(budget) = self.budget {
            let stored = match &self.join {
                StandingJoin::Full(j) => j.stored(),
                StandingJoin::Windowed { join, .. } => join.inner().stored(),
            };
            if stored > budget {
                return Err(SquallError::MemoryOverflow { machine: self.machine, stored, budget });
            }
        }
        Ok(())
    }

    fn watermark(
        &mut self,
        origin: NodeId,
        _from_task: usize,
        ts: u64,
        out: &mut OutputCollector,
    ) -> Result<()> {
        let slot = self.frontiers.entry(origin).or_insert(0);
        *slot = (*slot).max(ts);
        if self.frontiers.len() < self.n_sources {
            return Ok(());
        }
        let w = self.frontiers.values().copied().min().unwrap_or(0);
        if w > self.forwarded {
            self.forwarded = w;
            out.emit_watermark(w);
        }
        Ok(())
    }

    /// Barrier alignment: snapshot this task's join state, ship the blob
    /// toward the coordinator's checkpoint store, and forward the barrier
    /// downstream. Alignment guarantees the state covers exactly the
    /// epochs up to the barrier's (no later input exists during a
    /// synchronous checkpoint round).
    fn barrier(&mut self, epoch: u64, out: &mut OutputCollector) -> Result<()> {
        if let Some(tx) = &self.blob_tx {
            let mut buf = Vec::new();
            match &self.join {
                StandingJoin::Full(j) => {
                    buf.push(JOIN_BLOB_FULL);
                    j.snapshot_state(&mut buf);
                }
                StandingJoin::Windowed { join, .. } => {
                    buf.push(JOIN_BLOB_WINDOWED);
                    join.snapshot_state(&mut buf);
                }
            }
            let _ = tx.send((ROLE_JOIN, self.machine, epoch, buf));
        }
        out.emit_barrier(epoch);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The view sink bolt
// ---------------------------------------------------------------------

enum SinkState {
    /// Plain projected multiset: nothing to keep locally, changes are
    /// netted per epoch and applied straight into the shared rows.
    Plain,
    /// Aggregate view: group-by state plus the currently published
    /// finalized row per group key.
    Agg {
        agg: GroupByAggregator,
        published: FxHashMap<Vec<Value>, Tuple>,
        /// Epoch 1 must evaluate the global-aggregate empty row even if
        /// the initial load is empty.
        primed: bool,
    },
}

/// The single sink task of a resident topology: buffers signed join
/// deltas per epoch, applies whole epochs once the minimum join-task
/// watermark releases them, and publishes the netted changes into the
/// [`ViewShared`] state.
pub struct ViewSinkBolt {
    plan: Arc<ViewPlan>,
    shared: Arc<ViewShared>,
    /// Deltas awaiting their epoch's release, in epoch order.
    pending: BTreeMap<u64, Vec<(Tuple, i64)>>,
    /// Latest watermark per upstream join task.
    frontiers: FxHashMap<(NodeId, usize), u64>,
    n_upstream: usize,
    applied: u64,
    state: SinkState,
    blob_tx: Option<Sender<SnapshotBlobMsg>>,
}

impl ViewSinkBolt {
    fn new(
        plan: Arc<ViewPlan>,
        shared: Arc<ViewShared>,
        n_upstream: usize,
        blob_tx: Option<Sender<SnapshotBlobMsg>>,
    ) -> ViewSinkBolt {
        let state = if plan.is_aggregate {
            SinkState::Agg {
                agg: GroupByAggregator::new(plan.group_cols.clone(), plan.aggs.clone()),
                published: FxHashMap::default(),
                primed: false,
            }
        } else {
            SinkState::Plain
        };
        ViewSinkBolt {
            plan,
            shared,
            pending: BTreeMap::new(),
            frontiers: FxHashMap::default(),
            n_upstream,
            applied: 0,
            state,
            blob_tx,
        }
    }

    /// Rebuild sink state from a checkpoint blob and resume at the
    /// checkpoint's epoch: replayed epochs at or below it are rejected by
    /// the late-delta gate, and re-derived epochs above it are recomputed
    /// deterministically (then deduplicated in [`ViewShared::publish`]).
    fn restore(&mut self, epoch: u64, blob: &[u8]) -> Result<()> {
        let mut r = Reader::new(blob);
        let kind = r.u8()?;
        match (&mut self.state, kind) {
            (SinkState::Plain, 0) => {}
            (SinkState::Agg { agg, published, primed }, 1) => {
                agg.restore_state(&mut r)?;
                published.clear();
                let n = r.len()?;
                for _ in 0..n {
                    let key = codec::get_tuple(&mut r)?.values().to_vec();
                    let row = codec::get_tuple(&mut r)?;
                    published.insert(key, row);
                }
                *primed = r.bool()?;
            }
            _ => return Err(SquallError::Codec("sink checkpoint blob kind mismatch".into())),
        }
        r.finish()?;
        self.applied = epoch;
        Ok(())
    }

    /// HAVING-gate and project one raw aggregate row into its published
    /// form; `None` when HAVING filters it.
    fn finalize_agg_row(plan: &ViewPlan, raw: &Tuple, synthetic: bool) -> Result<Option<Tuple>> {
        if let Some(h) = &plan.having {
            let pass = match h.eval_bool(raw) {
                Ok(p) => p,
                // SQL's unknown-is-false over the synthetic NULL row; a
                // predicate error over a *real* row is a real error.
                Err(_) if synthetic => false,
                Err(e) => return Err(e),
            };
            if !pass {
                return Ok(None);
            }
        }
        let mut values = Vec::with_capacity(plan.finalize.len());
        for e in &plan.finalize {
            values.push(e.eval(raw)?);
        }
        Ok(Some(Tuple::new(values)))
    }

    /// The windows a join result belongs to, as `(start, end)` pairs
    /// (mirrors the per-window aggregation bolt).
    fn windows_of(w: &ViewWindow, row: &Tuple) -> Result<Vec<(u64, u64)>> {
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for &c in &w.ts_cols {
            let v = row.get(c).as_int()?;
            if v < 0 {
                return Err(SquallError::Runtime(format!(
                    "negative event-time timestamp {v} in view sink input"
                )));
            }
            lo = lo.min(v as u64);
            hi = hi.max(v as u64);
        }
        Ok(match w.spec {
            WindowSpec::Tumbling { width } => {
                let start = hi / width * width;
                vec![(start, start + width - 1)]
            }
            WindowSpec::Sliding { size } => {
                (hi.saturating_sub(size)..=lo).map(|s| (s, s + size)).collect()
            }
            WindowSpec::FullHistory => {
                return Err(SquallError::Runtime(
                    "full-history window on a windowed view sink".into(),
                ))
            }
        })
    }

    /// Apply one epoch's deltas, returning the net row changes.
    fn apply_epoch(&mut self, deltas: Vec<(Tuple, i64)>) -> Result<Vec<(Tuple, i64)>> {
        let plan = Arc::clone(&self.plan);
        let mut net: FxHashMap<Tuple, i64> = FxHashMap::default();
        match &mut self.state {
            SinkState::Plain => {
                for (base, m) in &deltas {
                    let mut values = Vec::with_capacity(plan.finalize.len());
                    for e in &plan.finalize {
                        values.push(e.eval(base)?);
                    }
                    *net.entry(Tuple::new(values)).or_insert(0) += m;
                }
            }
            SinkState::Agg { agg, published, primed } => {
                let mut touched: FxHashSet<Vec<Value>> = FxHashSet::default();
                if !*primed {
                    *primed = true;
                    if plan.emit_empty_agg {
                        touched.insert(Vec::new());
                    }
                }
                for (base, m) in &deltas {
                    let inputs: Vec<Tuple> = match &plan.windowed {
                        None => vec![base.clone()],
                        Some(w) => Self::windows_of(w, base)?
                            .into_iter()
                            .map(|(s, e)| {
                                let mut v = Vec::with_capacity(base.arity() + 2);
                                v.push(Value::Int(s as i64));
                                v.push(Value::Int(e as i64));
                                v.extend(base.values().iter().cloned());
                                Tuple::new(v)
                            })
                            .collect(),
                    };
                    for input in &inputs {
                        touched.insert(input.key(&plan.group_cols));
                        if *m >= 0 {
                            for _ in 0..*m {
                                agg.update(input)?;
                            }
                        } else {
                            for _ in 0..-*m {
                                agg.retract(input)?;
                            }
                        }
                    }
                }
                for key in touched {
                    let (new, synthetic) = match agg.group(&key) {
                        Some(raw) => (Self::finalize_agg_row(&plan, &raw, false)?, false),
                        None if plan.emit_empty_agg && key.is_empty() => {
                            // A global aggregate with no rows still shows
                            // one row: COUNT = 0, NULL sums/averages.
                            let raw = Tuple::new(
                                plan.aggs
                                    .iter()
                                    .map(|a| match a.func {
                                        AggFunc::Count => Value::Int(0),
                                        _ => Value::Null,
                                    })
                                    .collect(),
                            );
                            (Self::finalize_agg_row(&plan, &raw, true)?, true)
                        }
                        None => (None, false),
                    };
                    let _ = synthetic;
                    let old = published.get(&key).cloned();
                    if old == new {
                        continue;
                    }
                    if let Some(o) = old {
                        *net.entry(o).or_insert(0) -= 1;
                    }
                    match new {
                        Some(n) => {
                            *net.entry(n.clone()).or_insert(0) += 1;
                            published.insert(key, n);
                        }
                        None => {
                            published.remove(&key);
                        }
                    }
                }
            }
        }
        Ok(net.into_iter().filter(|(_, m)| *m != 0).collect())
    }

    /// Apply and publish every pending epoch ≤ `w`, then advance the
    /// applied watermark to `w` itself (epochs with no deltas still
    /// unblock snapshot waiters).
    fn apply_through(&mut self, w: u64) -> Result<()> {
        while let Some((&epoch, _)) = self.pending.first_key_value() {
            if epoch > w {
                break;
            }
            let deltas = self.pending.remove(&epoch).expect("first key present");
            let changes = self.apply_epoch(deltas)?;
            let counter = if self.shared.publish(epoch, changes) {
                &self.shared.counters.epochs_applied
            } else {
                &self.shared.counters.replayed_epochs
            };
            counter.fetch_add(1, Ordering::Relaxed);
            self.applied = epoch;
        }
        if self.applied < w {
            self.applied = w;
            self.shared.publish(w, Vec::new());
        }
        Ok(())
    }
}

impl Bolt for ViewSinkBolt {
    fn execute(&mut self, _origin: NodeId, tuple: Tuple, _out: &mut OutputCollector) -> Result<()> {
        let (base, mult, epoch) = split_delta(&tuple)?;
        let epoch = epoch as u64;
        if epoch <= self.applied {
            return Err(SquallError::Runtime(format!(
                "late delta for already-applied epoch {epoch} (applied {})",
                self.applied
            )));
        }
        self.shared.counters.deltas_in.fetch_add(1, Ordering::Relaxed);
        self.pending.entry(epoch).or_default().push((base, mult));
        Ok(())
    }

    fn watermark(
        &mut self,
        origin: NodeId,
        from_task: usize,
        ts: u64,
        _out: &mut OutputCollector,
    ) -> Result<()> {
        let slot = self.frontiers.entry((origin, from_task)).or_insert(0);
        *slot = (*slot).max(ts);
        if self.frontiers.len() < self.n_upstream {
            return Ok(());
        }
        let w = self.frontiers.values().copied().min().unwrap_or(0);
        self.apply_through(w)
    }

    fn finish(&mut self, _out: &mut OutputCollector) -> Result<()> {
        // During a recovery teardown the pending buffer may hold *partial*
        // epochs (the lost worker's deltas never arrived): flushing them
        // would corrupt the rows the restarted topology re-derives.
        if self.shared.recovering.load(Ordering::SeqCst) {
            return Ok(());
        }
        // DROP: every queue is closed and drained, so everything pending
        // is final; the u64::MAX advance unblocks any waiter racing the
        // shutdown.
        self.apply_through(u64::MAX)
    }

    /// Barrier alignment: per-sender FIFO means every delta and watermark
    /// of the barrier's epoch already arrived, so `applied` equals the
    /// barrier epoch and the state is exactly the view through it.
    fn barrier(&mut self, epoch: u64, _out: &mut OutputCollector) -> Result<()> {
        debug_assert_eq!(self.applied, epoch, "sink aligned before applying the epoch");
        if let Some(tx) = &self.blob_tx {
            let mut buf = Vec::new();
            match &self.state {
                SinkState::Plain => buf.push(0u8),
                SinkState::Agg { agg, published, primed } => {
                    buf.push(1u8);
                    agg.snapshot_state(&mut buf);
                    let mut keys: Vec<&Vec<Value>> = published.keys().collect();
                    keys.sort();
                    codec::put_u32(&mut buf, keys.len() as u32);
                    for key in keys {
                        codec::put_tuple(&mut buf, &Tuple::new(key.clone()));
                        codec::put_tuple(&mut buf, &published[key]);
                    }
                    codec::put_bool(&mut buf, *primed);
                }
            }
            let _ = tx.send((ROLE_SINK, 0, epoch, buf));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Assembly & launch
// ---------------------------------------------------------------------

/// Append the `[multiplicity, epoch]` bookkeeping columns to a payload
/// row.
fn tag_delta(row: &Tuple, mult: i64, epoch: u64) -> Tuple {
    let mut v = row.values().to_vec();
    v.push(Value::Int(mult));
    v.push(Value::Int(epoch as i64));
    Tuple::new(v)
}

/// Build the resident topology for one standing view: live-queue spouts
/// (preloaded with the initial data as epoch-1 deltas), the delta join,
/// and the single view sink. `coordinator` carries the view plan and
/// shared state on the coordinator; workers pass `None` — their spout
/// and sink factories are never invoked (spouts and parallelism-1 bolts
/// are pinned to peer 0 by `plan_placement`).
///
/// `restore` rebuilds every operator from a checkpoint instead of
/// starting empty (the epoch-1 preload is then suppressed — recovery
/// replays buffered rounds with their original epochs). `blob_tx` is
/// where operators ship their checkpoint blobs at barrier alignment.
pub fn assemble_standing(
    spec: &MultiJoinSpec,
    data: Vec<Vec<Tuple>>,
    cfg: &MultiwayConfig,
    coordinator: Option<(Arc<ViewPlan>, Arc<ViewShared>)>,
    restore: Option<Arc<RestoreState>>,
    blob_tx: Option<Sender<SnapshotBlobMsg>>,
) -> Result<(Topology, Vec<Arc<LiveQueue>>, StandingLayout)> {
    if data.len() != spec.n_relations() {
        return Err(SquallError::InvalidPlan(format!(
            "{} relations but {} data streams",
            spec.n_relations(),
            data.len()
        )));
    }
    if let Some(w) = &cfg.window {
        if matches!(w.spec, WindowSpec::FullHistory) {
            return Err(SquallError::InvalidPlan(
                "a window plan must be tumbling or sliding (FullHistory = no window)".into(),
            ));
        }
        if w.ts_cols.len() != spec.n_relations() {
            return Err(SquallError::InvalidPlan(format!(
                "window plan names {} ts columns for {} relations",
                w.ts_cols.len(),
                spec.n_relations()
            )));
        }
    }
    let mut b = TopologyBuilder::new().batch_size(cfg.batch_size.max(1));
    if let Some(workers) = cfg.worker_threads {
        b = b.worker_threads(workers);
    }

    // One live queue + one spout task per relation, preloaded with the
    // initial load as epoch-1 deltas and the epoch-1 watermark.
    let mut queues = Vec::with_capacity(spec.n_relations());
    let mut source_nodes = Vec::with_capacity(spec.n_relations());
    for (rel, tuples) in data.into_iter().enumerate() {
        let queue = Arc::new(LiveQueue::new());
        if restore.is_none() {
            for t in &tuples {
                queue.push(LiveItem::Delta(tag_delta(t, 1, 1)));
            }
            queue.push(LiveItem::Watermark(1));
        }
        let q = Arc::clone(&queue);
        let node = b.add_spout(format!("src-{}", spec.relations[rel].name), 1, move |_task| {
            Box::new(LiveSpout::new(Arc::clone(&q)))
        });
        queues.push(queue);
        source_nodes.push(node);
    }

    // The delta join. A single relation needs no partitioning scheme:
    // DBToaster's n=1 delta emission is the identity, so one task with a
    // global grouping suffices.
    let n_rel = spec.n_relations();
    let machines = if n_rel == 1 { 1 } else { cfg.machines.max(1) };
    let origin_map: FxHashMap<usize, usize> =
        source_nodes.iter().enumerate().map(|(rel, &node)| (node, rel)).collect();
    let origin_map = Arc::new(origin_map);
    let spec_arc = Arc::new(spec.clone());
    let window = cfg.window.clone();
    let budget = cfg.budget;
    let (scheme, scheme_description) = if n_rel == 1 {
        (None, "single-relation identity".to_string())
    } else {
        let s = Arc::new(build_scheme(cfg.scheme, spec, machines, cfg.seed)?);
        let d = s.describe();
        (Some(s), d)
    };
    let join_restore = restore.clone();
    let join_blob_tx = blob_tx.clone();
    let join_node = b.add_bolt("join", machines, move |task| {
        let origin_to_rel: FxHashMap<usize, usize> =
            origin_map.iter().map(|(&k, &v)| (k, v)).collect();
        let inner = DBToasterJoin::new(&spec_arc);
        let join = match &window {
            Some(w) => {
                let arities: Vec<usize> =
                    spec_arc.relations.iter().map(|r| r.schema.arity()).collect();
                StandingJoin::Windowed {
                    join: WindowJoin::event_time(inner, w.spec, &arities, &w.ts_cols),
                    ts_cols: w.ts_cols.clone(),
                }
            }
            None => StandingJoin::Full(inner),
        };
        let mut bolt =
            ViewJoinBolt::new(task, origin_to_rel, join, n_rel, budget, join_blob_tx.clone());
        if let Some(rs) = &join_restore {
            if let Some(blob) = rs.join.get(&task) {
                // Blobs are self-produced (and byte-checked by recovery):
                // failing to parse one is a bug, not an input error.
                bolt.restore(blob).expect("restore self-produced join checkpoint blob");
            }
        }
        Box::new(bolt)
    });
    for (rel, &src) in source_nodes.iter().enumerate() {
        let grouping = match &scheme {
            Some(s) => Grouping::Custom(Arc::new(s.grouping_for(rel))),
            None => Grouping::Global,
        };
        b.connect(src, join_node, grouping);
    }

    // The view sink: one task, pinned to the coordinator.
    let sink_restore = restore;
    let sink_node = b.add_bolt("view", 1, move |_task| match &coordinator {
        Some((plan, shared)) => {
            let mut bolt =
                ViewSinkBolt::new(Arc::clone(plan), Arc::clone(shared), machines, blob_tx.clone());
            if let Some(rs) = &sink_restore {
                if let Some(blob) = &rs.sink {
                    bolt.restore(rs.epoch, blob)
                        .expect("restore self-produced sink checkpoint blob");
                }
            }
            Box::new(bolt)
        }
        None => unreachable!(
            "view sink runs at parallelism 1, which plan_placement pins to the coordinator"
        ),
    });
    b.connect(join_node, sink_node, Grouping::Global);

    Ok((
        b.build()?,
        queues,
        StandingLayout { source_nodes, join_node, join_tasks: machines, scheme_description },
    ))
}

/// Node ids (and the chosen scheme) of an assembled standing topology —
/// what the shutdown report is computed over.
pub struct StandingLayout {
    pub source_nodes: Vec<NodeId>,
    pub join_node: NodeId,
    /// Join-task (machine) count — how many join blobs a checkpoint needs.
    pub join_tasks: usize,
    pub scheme_description: String,
}

/// Launch a resident topology for one standing view, locally or across
/// the session's cluster. The returned handle feeds deltas, serves
/// snapshots and tears the view down on drop of the view (via
/// [`StandingHandle::shutdown`]).
pub fn launch_standing(
    spec: &MultiJoinSpec,
    data: Vec<Vec<Tuple>>,
    cfg: &MultiwayConfig,
    plan: ViewPlan,
    shared: Arc<ViewShared>,
) -> Result<StandingHandle> {
    debug_assert!(cfg.standing, "launch_standing needs cfg.standing");
    let input_count: u64 = data.iter().map(|d| d.len() as u64).sum();
    let plan = Arc::new(plan);
    // Recovery replays the initial load from scratch when no checkpoint
    // completed yet, so clustered runs keep a copy.
    let initial_data = if cfg.cluster.is_some() { data.clone() } else { Vec::new() };
    let (blob_tx, blob_rx) = std::sync::mpsc::channel();
    let blob_tx = (cfg.checkpoint_interval > 0).then_some(blob_tx);
    let (topology, queues, layout) = assemble_standing(
        spec,
        data,
        cfg,
        Some((Arc::clone(&plan), Arc::clone(&shared))),
        None,
        blob_tx.clone(),
    )?;
    let (handle, cluster) = match &cfg.cluster {
        None => (topology.launch(), None),
        Some(cluster_spec) => {
            let (placement, mut links) =
                boot_coordinator(topology.layout(), spec, cfg, cluster_spec, None, None)?;
            links.blob_tx = blob_tx.clone();
            if cfg.heartbeat_timeout_ms > 0 {
                links.heartbeat = Some(Duration::from_millis(cfg.heartbeat_timeout_ms));
            }
            let (handle, run) = topology.launch_cluster(placement, links);
            (handle, Some(run))
        }
    };
    let waker = handle.waker();
    let store = CheckpointStore::new(layout.join_tasks);
    Ok(StandingHandle {
        queues,
        shared,
        waker,
        handle: Some(handle),
        cluster,
        layout,
        input_count,
        issued: 1,
        start: Instant::now(),
        spec: spec.clone(),
        cfg: cfg.clone(),
        plan,
        initial_data,
        replay: Vec::new(),
        store,
        blob_rx: blob_tx.is_some().then_some(blob_rx),
    })
}

/// One signed delta round for [`StandingHandle::apply`]: the relation
/// index, the (already source-transformed) payload rows, and the weight
/// (+1 append, −1 retract).
pub type DeltaRound = (usize, Vec<Tuple>, i64);

/// The coordinator-side handle of one resident view topology.
pub struct StandingHandle {
    queues: Vec<Arc<LiveQueue>>,
    shared: Arc<ViewShared>,
    waker: TaskWaker,
    /// `None` only transiently, inside [`StandingHandle::recover`].
    handle: Option<RunHandle>,
    cluster: Option<ClusterRun>,
    layout: StandingLayout,
    input_count: u64,
    /// Latest issued epoch (initial load = 1).
    issued: u64,
    start: Instant,
    /// What recovery needs to re-assemble the topology.
    spec: MultiJoinSpec,
    cfg: MultiwayConfig,
    plan: Arc<ViewPlan>,
    /// Clustered runs only: the initial load, replayed when no checkpoint
    /// completed before a failure.
    initial_data: Vec<Vec<Tuple>>,
    /// Rounds issued since the last complete checkpoint, with their
    /// epochs — the replay log of recovery.
    replay: Vec<(u64, Vec<DeltaRound>)>,
    store: CheckpointStore,
    blob_rx: Option<Receiver<SnapshotBlobMsg>>,
}

impl StandingHandle {
    /// The view's shared state (snapshots, subscriptions, counters).
    pub fn shared(&self) -> &Arc<ViewShared> {
        &self.shared
    }

    /// Latest issued epoch.
    pub fn issued_epoch(&self) -> u64 {
        self.issued
    }

    /// Number of source relations.
    pub fn n_relations(&self) -> usize {
        self.queues.len()
    }

    /// The partitioning scheme the resident join runs under.
    pub fn scheme_description(&self) -> &str {
        &self.layout.scheme_description
    }

    /// Feed one round of signed deltas as a new epoch: payload rows go
    /// to their relations' queues, the epoch watermark to *every* queue,
    /// and the (parked) spout tasks are woken. Returns the issued epoch;
    /// a subsequent [`StandingHandle::snapshot`] observes it.
    pub fn apply(&mut self, rounds: Vec<DeltaRound>) -> Result<u64> {
        let epoch = self.issued + 1;
        // Clustered runs log every round until a checkpoint covers it —
        // the replay input of recovery.
        if self.cluster.is_some() && self.cfg.checkpoint_interval > 0 {
            self.replay.push((epoch, rounds.clone()));
        }
        let mut retracts = false;
        for (rel, rows, mult) in rounds {
            if rel >= self.queues.len() {
                return Err(SquallError::Runtime(format!("relation {rel} out of range")));
            }
            if mult < 0 {
                retracts = true;
            }
            for row in rows {
                self.queues[rel].push(LiveItem::Delta(tag_delta(&row, mult, epoch)));
            }
        }
        for q in &self.queues {
            q.push(LiveItem::Watermark(epoch));
        }
        self.issued = epoch;
        if retracts {
            self.shared.counters.retractions.fetch_add(1, Ordering::Relaxed);
        } else {
            self.shared.counters.appends.fetch_add(1, Ordering::Relaxed);
        }
        // Spouts are the first nodes added: their task ids are 0..n.
        for t in 0..self.queues.len() {
            self.waker.wake(t);
        }
        if self.cfg.checkpoint_interval > 0 && epoch.is_multiple_of(self.cfg.checkpoint_interval) {
            self.checkpoint(epoch);
        }
        Ok(epoch)
    }

    /// One synchronous checkpoint round: inject an aligned barrier behind
    /// epoch `epoch`'s watermark and block until every operator's blob
    /// lands (or a generous deadline passes — the checkpoint then stays
    /// partial and recovery falls back, possibly via §5 peer
    /// reconstruction). Blocking keeps barriers trivially aligned: no
    /// epoch-`e+1` delta exists anywhere while the epoch-`e` snapshot is
    /// taken, so operator state is exactly the view through `e`.
    fn checkpoint(&mut self, epoch: u64) {
        let Some(rx) = self.blob_rx.as_ref() else { return };
        for q in &self.queues {
            q.push(LiveItem::Barrier(epoch));
        }
        for t in 0..self.queues.len() {
            self.waker.wake(t);
        }
        let deadline = Instant::now() + CHECKPOINT_DEADLINE;
        while !self.store.is_complete(epoch) {
            if Instant::now() >= deadline {
                break;
            }
            if self.handle.as_ref().and_then(|h| h.error()).is_some() {
                break; // dead topology: the error surfaces via error()
            }
            match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(msg) => self.store.insert(msg),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        if self.store.is_complete(epoch) {
            self.shared.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
            self.store.trim_below(epoch);
            self.replay.retain(|(e, _)| *e > epoch);
        }
    }

    /// A consistent snapshot of the view rows (multiplicities expanded,
    /// unsorted): waits until every issued epoch is applied —
    /// read-your-writes for every acked append/retract.
    pub fn snapshot(&self, timeout: Duration) -> Result<Vec<Tuple>> {
        self.shared.snapshot_rows(self.issued, timeout, || self.error())
    }

    /// Subscribe to the change stream.
    pub fn subscribe(&self) -> Receiver<ChangeBatch> {
        self.shared.subscribe()
    }

    /// The error that aborted the resident run, if any — a lost cluster
    /// peer surfaces here as [`SquallError::WorkerLost`].
    pub fn error(&self) -> Option<SquallError> {
        self.handle.as_ref().and_then(|h| h.error())
    }

    /// Restart the view on `cluster` after a failure (typically a
    /// [`SquallError::WorkerLost`] from [`StandingHandle::error`]): tear
    /// the dead run down, restore every operator from the freshest usable
    /// checkpoint — completing a partial one from §5 peer replicas when
    /// the scheme replicates — and replay the rounds issued since, with
    /// their original epochs. The shared view state (rows, subscribers,
    /// applied watermark) persists across the restart, and replayed
    /// epochs dedup against it: subscribers see every change exactly
    /// once.
    pub fn recover(&mut self, cluster: ClusterSpec) -> Result<()> {
        if self.cfg.cluster.is_none() {
            return Err(SquallError::Runtime(
                "recover() applies to clustered standing views".into(),
            ));
        }
        // Tear the dead run down. The sink must not flush partial epochs
        // into the shared rows while the cascade drains.
        self.shared.recovering.store(true, Ordering::SeqCst);
        for q in &self.queues {
            q.close();
        }
        for t in 0..self.queues.len() {
            self.waker.wake(t);
        }
        if let Some(mut handle) = self.handle.take() {
            while handle.recv().is_some() {}
            let _ = handle.finish();
        }
        if let Some(run) = self.cluster.take() {
            let _ = run.finish(None);
        }
        if let Some(rx) = self.blob_rx.as_ref() {
            // Blobs that arrived after the last checkpoint wait (e.g. a
            // straggler completing a previously-partial epoch).
            while let Ok(msg) = rx.try_recv() {
                self.store.insert(msg);
            }
        }
        self.shared.recovering.store(false, Ordering::SeqCst);

        // Prefer the newest checkpoint, completing a partial one from the
        // surviving replicas when the partitioning makes that sound (§5).
        let n_rel = self.spec.n_relations();
        if n_rel > 1 {
            if let Ok(scheme) =
                build_scheme(self.cfg.scheme, &self.spec, self.layout.join_tasks, self.cfg.seed)
            {
                self.store.reconstruct_newest(&scheme, n_rel);
            }
        }
        let restore =
            self.store.latest_complete().and_then(|e| self.store.restore_state(e)).map(Arc::new);
        let resume = restore.as_ref().map(|r| r.epoch).unwrap_or(0);

        // Relaunch on the new cluster, restored; no checkpoint yet means
        // replaying everything from the initial load.
        self.cfg.cluster = Some(cluster);
        let data =
            if restore.is_some() { vec![Vec::new(); n_rel] } else { self.initial_data.clone() };
        let (tx, rx) = std::sync::mpsc::channel();
        let blob_tx = (self.cfg.checkpoint_interval > 0).then_some(tx);
        let (topology, queues, layout) = assemble_standing(
            &self.spec,
            data,
            &self.cfg,
            Some((Arc::clone(&self.plan), Arc::clone(&self.shared))),
            restore.clone(),
            blob_tx.clone(),
        )?;
        let cluster_spec = self.cfg.cluster.clone().expect("cluster just set");
        let (placement, mut links) = boot_coordinator(
            topology.layout(),
            &self.spec,
            &self.cfg,
            &cluster_spec,
            restore.as_deref(),
            Some(resume),
        )?;
        links.blob_tx = blob_tx.clone();
        if self.cfg.heartbeat_timeout_ms > 0 {
            links.heartbeat = Some(Duration::from_millis(self.cfg.heartbeat_timeout_ms));
        }
        let (handle, run) = topology.launch_cluster(placement, links);
        self.waker = handle.waker();
        self.handle = Some(handle);
        self.cluster = Some(run);
        self.queues = queues;
        self.layout = layout;
        self.blob_rx = blob_tx.is_some().then_some(rx);
        self.shared.counters.recoveries.fetch_add(1, Ordering::Relaxed);

        // Replay every round after the restored checkpoint with its
        // original epoch and watermark; no barriers — the rounds stay in
        // the log until a fresh checkpoint covers them.
        self.replay.retain(|(e, _)| *e > resume);
        for (epoch, rounds) in &self.replay {
            for (rel, rows, mult) in rounds {
                for row in rows {
                    self.queues[*rel].push(LiveItem::Delta(tag_delta(row, *mult, *epoch)));
                }
            }
            for q in &self.queues {
                q.push(LiveItem::Watermark(*epoch));
            }
        }
        for t in 0..self.queues.len() {
            self.waker.wake(t);
        }
        Ok(())
    }

    /// Close every source queue and drain the shutdown cascade,
    /// returning the view's final lifetime report (loads, maintenance
    /// counters, wire traffic under a cluster).
    pub fn shutdown(self) -> JoinReport {
        let StandingHandle {
            queues,
            shared,
            waker,
            handle,
            cluster,
            layout,
            input_count,
            start,
            ..
        } = self;
        let mut handle = handle.expect("handle present outside recover()");
        for q in &queues {
            q.close();
        }
        for t in 0..queues.len() {
            waker.wake(t);
        }
        while handle.recv().is_some() {}
        let mut outcome = handle.finish();
        let mut transport = None;
        if let Some(cluster) = cluster {
            let summary = cluster.finish(None);
            for remote in &summary.remote_metrics {
                outcome.metrics.merge(remote);
            }
            if outcome.error.is_none() {
                outcome.error = summary.remote_error;
            }
            transport = Some(summary.transport);
        }
        let metrics = &outcome.metrics;
        let join_metrics = metrics.node(layout.join_node);
        let loads = join_metrics.received.clone();
        JoinReport {
            results: Vec::new(),
            result_count: join_metrics.total_emitted(),
            input_count,
            input_counts: Vec::new(),
            loads,
            replication_factor: metrics.replication_factor(layout.join_node, &layout.source_nodes),
            skew_degree: metrics.node(layout.join_node).skew_degree(),
            network_factor: 0.0,
            elapsed: start.elapsed(),
            scheme_description: layout.scheme_description,
            scheduler: outcome.metrics.scheduler.clone(),
            error: outcome.error,
            transport,
            maintenance: Some(shared.stats()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::{tuple, DataType, Schema};
    use squall_expr::{JoinAtom, RelationDef};
    use squall_partition::optimizer::SchemeKind;

    use crate::driver::LocalJoinKind;

    fn pair_spec() -> MultiJoinSpec {
        let s = Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]);
        MultiJoinSpec::new(
            vec![RelationDef::new("R", s.clone(), 10), RelationDef::new("S", s, 10)],
            vec![JoinAtom::eq(0, 0, 1, 0)],
        )
        .unwrap()
    }

    fn plain_plan(arity: usize) -> ViewPlan {
        ViewPlan {
            group_cols: vec![],
            aggs: vec![],
            is_aggregate: false,
            having: None,
            finalize: (0..arity).map(ScalarExpr::col).collect(),
            emit_empty_agg: false,
            windowed: None,
        }
    }

    fn standing_cfg() -> MultiwayConfig {
        let mut cfg = MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, 2);
        cfg.standing = true;
        cfg
    }

    #[test]
    fn resident_join_view_applies_appends_and_retractions() {
        let spec = pair_spec();
        let data = vec![vec![tuple![1, 10]], vec![tuple![1, 100]]];
        let shared = Arc::new(ViewShared::new());
        let mut h =
            launch_standing(&spec, data, &standing_cfg(), plain_plan(4), Arc::clone(&shared))
                .unwrap();
        let mut rows = h.snapshot(Duration::from_secs(5)).unwrap();
        rows.sort();
        assert_eq!(rows, vec![tuple![1, 10, 1, 100]]);

        // Append a matching S row: one new join result.
        h.apply(vec![(1, vec![tuple![1, 200]], 1)]).unwrap();
        let mut rows = h.snapshot(Duration::from_secs(5)).unwrap();
        rows.sort();
        assert_eq!(rows, vec![tuple![1, 10, 1, 100], tuple![1, 10, 1, 200]]);

        // Retract the original R row: both results vanish.
        h.apply(vec![(0, vec![tuple![1, 10]], -1)]).unwrap();
        assert!(h.snapshot(Duration::from_secs(5)).unwrap().is_empty());

        let report = h.shutdown();
        assert!(report.error.is_none(), "{:?}", report.error);
        let m = report.maintenance.expect("standing run reports maintenance");
        assert_eq!(m.appends, 1);
        assert_eq!(m.retractions, 1);
        assert_eq!(m.epochs_applied, 3);
        assert!(m.snapshots >= 3);
    }

    #[test]
    fn aggregate_view_diffs_published_groups() {
        let spec = pair_spec();
        // COUNT(*) GROUP BY R.a over the join; finalize = (key, count).
        let plan = ViewPlan {
            group_cols: vec![0],
            aggs: vec![AggSpec::count()],
            is_aggregate: true,
            having: None,
            finalize: vec![ScalarExpr::col(0), ScalarExpr::col(1)],
            emit_empty_agg: false,
            windowed: None,
        };
        let data = vec![vec![tuple![1, 10], tuple![2, 20]], vec![tuple![1, 100]]];
        let shared = Arc::new(ViewShared::new());
        // Subscribe before launch so the epoch-1 batch is observed too.
        let rx = shared.subscribe();
        let mut h =
            launch_standing(&spec, data, &standing_cfg(), plan, Arc::clone(&shared)).unwrap();
        assert_eq!(h.snapshot(Duration::from_secs(5)).unwrap(), vec![tuple![1, 1]]);

        h.apply(vec![(1, vec![tuple![2, 200], tuple![1, 101]], 1)]).unwrap();
        let mut rows = h.snapshot(Duration::from_secs(5)).unwrap();
        rows.sort();
        assert_eq!(rows, vec![tuple![1, 2], tuple![2, 1]]);

        // Change stream: epoch 1 (+[1,1]) then epoch 2 (−[1,1] +[1,2] +[2,1]).
        let b1 = rx.recv().unwrap();
        assert_eq!(b1.epoch, 1);
        assert_eq!(b1.changes, vec![(tuple![1, 1], 1)]);
        let b2 = rx.recv().unwrap();
        assert_eq!(b2.epoch, 2);
        let mut ch = b2.changes.clone();
        ch.sort();
        assert_eq!(ch, vec![(tuple![1, 1], -1), (tuple![1, 2], 1), (tuple![2, 1], 1)]);

        let report = h.shutdown();
        assert!(report.error.is_none(), "{:?}", report.error);
    }

    #[test]
    fn resident_view_survives_appends_over_loopback_tcp() {
        use crate::cluster::{serve_job, ClusterSpec};
        use std::net::TcpListener;

        let mut addrs = Vec::new();
        let mut workers = Vec::new();
        for _ in 0..2 {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            addrs.push(listener.local_addr().unwrap().to_string());
            workers.push(std::thread::spawn(move || serve_job(&listener).unwrap()));
        }

        let spec = pair_spec();
        let data = vec![vec![tuple![1, 10]], vec![tuple![1, 100]]];
        let mut cfg = standing_cfg();
        cfg.cluster = Some(ClusterSpec::new(addrs));
        let shared = Arc::new(ViewShared::new());
        let mut h = launch_standing(&spec, data, &cfg, plain_plan(4), Arc::clone(&shared)).unwrap();
        assert_eq!(h.snapshot(Duration::from_secs(10)).unwrap(), vec![tuple![1, 10, 1, 100]]);
        h.apply(vec![(1, vec![tuple![1, 200]], 1)]).unwrap();
        h.apply(vec![(0, vec![tuple![1, 10]], -1)]).unwrap();
        h.apply(vec![(0, vec![tuple![2, 20]], 1), (1, vec![tuple![2, 300]], 1)]).unwrap();
        let mut rows = h.snapshot(Duration::from_secs(10)).unwrap();
        rows.sort();
        assert_eq!(rows, vec![tuple![2, 20, 2, 300]]);
        let report = h.shutdown();
        assert!(report.error.is_none(), "{:?}", report.error);
        assert!(report.transport.is_some(), "ran over the wire");
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn single_relation_view_is_supported() {
        let s = Schema::of(&[("a", DataType::Int)]);
        let spec = MultiJoinSpec::new(vec![RelationDef::new("R", s, 4)], vec![]).unwrap();
        let shared = Arc::new(ViewShared::new());
        let mut h = launch_standing(
            &spec,
            vec![vec![tuple![1], tuple![2]]],
            &standing_cfg(),
            plain_plan(1),
            Arc::clone(&shared),
        )
        .unwrap();
        h.apply(vec![(0, vec![tuple![3]], 1)]).unwrap();
        h.apply(vec![(0, vec![tuple![2]], -1)]).unwrap();
        let mut rows = h.snapshot(Duration::from_secs(5)).unwrap();
        rows.sort();
        assert_eq!(rows, vec![tuple![1], tuple![3]]);
        assert!(h.shutdown().error.is_none());
    }
}
