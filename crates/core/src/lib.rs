//! # squall-core
//!
//! The paper's system assembled: physical operators (join bolts, aggregate
//! bolts, select/project bolts), the **HyLD** operator (any hypercube
//! partitioning scheme × the local DBToaster join, §3.4), the execution
//! driver that maps a multi-way join query onto a
//! [`squall_runtime::Topology`], the pipeline-of-2-way-joins comparator
//! (§7.2), replication-aware peer recovery (§5 "Fault tolerance") and the
//! Adaptive 1-Bucket simulation (\[32\]).
//!
//! The central design point is *separation of concerns* (§3.4): "Squall
//! requires no changes in the partitioning scheme and local join when
//! putting them together in a parallel join operator" — the hypercube
//! schemes guarantee each machine executes an independent portion of the
//! join, so each machine simply runs its own [`squall_join::LocalJoin`]
//! instance. [`driver::run_multiway`] is exactly that composition.

pub mod adaptive_sim;
pub mod checkpoint;
pub mod cluster;
pub mod driver;
pub mod operators;
pub mod pipeline;
pub mod recovery;
pub mod standing;

pub use checkpoint::{CheckpointStore, RestoreState};
pub use cluster::{run_worker, serve_job, ClusterSpec, JobSpec};
pub use driver::MaintenanceStats;
pub use driver::{
    run_multiway, run_multiway_stream, AggPlan, JoinReport, LocalJoinKind, MultiwayConfig,
    MultiwayStream,
};
pub use operators::{AggBolt, JoinBolt, SelectProjectBolt, WindowMergeBolt, WindowedAggBolt};
pub use pipeline::run_pipeline;
pub use standing::{
    assemble_standing, launch_standing, ChangeBatch, DeltaRound, StandingHandle, StandingLayout,
    ViewPlan, ViewShared, ViewWindow,
};
