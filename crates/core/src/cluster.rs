//! Distributed topology launch: the coordinator/worker protocol.
//!
//! A **coordinator** (the process driving a query) and N **worker**
//! processes split one topology's tasks between them over loopback or LAN
//! TCP:
//!
//! ```text
//!  coordinator                               worker 1..N
//!  ───────────                               ───────────
//!  bind ephemeral listener                   bind --listen addr
//!  dial each worker, send Job ───────────▶   accept, decode JobSpec
//!  (that stream stays as the                 rebuild the same topology
//!   coordinator→worker data link)            from the plan (no data —
//!  accept one Hello link per worker  ◀────── spouts live here), dial
//!                                            every peer with Hello
//!  launch_cluster(slice 0)                   launch_cluster(slice i)
//!  … Data/Eos/Abort frames flow both ways, SinkRow/Done flow to the
//!    coordinator; see squall_runtime::transport for the data plane …
//! ```
//!
//! The worker never sees relation data: the [`JobSpec`] ships the *plan*
//! (relations, atoms, scheme kind, seed, knobs) and both sides rebuild
//! the identical topology and the identical deterministic partitioning
//! scheme, so routing decisions agree byte-for-byte with a single-process
//! run. Spout tasks are pinned to the coordinator (where the catalog
//! lives); join/aggregation task ranges are split across all peers by
//! [`squall_runtime::plan_placement`].

use std::net::{TcpListener, TcpStream};

use squall_common::codec::{self, Reader};
use squall_common::{DataType, Field, Result, Schema, SquallError};
use squall_expr::join_cond::CmpOp;
use squall_expr::{AggFunc, BinOp, JoinAtom, MultiJoinSpec, RelationDef, ScalarExpr};
use squall_join::{AggSpec, WindowSpec};
use squall_partition::optimizer::SchemeKind;
use squall_runtime::{plan_placement, ClusterLinks, Frame, Placement};

use crate::driver::{assemble, AggPlan, LocalJoinKind, MultiwayConfig, WindowPlan};

/// Cluster membership for a session: the worker processes (listen
/// addresses) that distributed runs split their topologies across. The
/// driving process is always peer 0, the coordinator.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterSpec {
    pub workers: Vec<String>,
    /// Address the coordinator binds its per-run listener on (default
    /// `127.0.0.1:0` — right for loopback clusters). For LAN workers,
    /// bind a reachable interface, e.g. `0.0.0.0:7400`.
    pub coordinator_bind: Option<String>,
    /// Address workers dial the coordinator at (default: the bound
    /// listener's own address — right for loopback). Set it (host:port,
    /// used verbatim) when binding a wildcard address, which is not
    /// dialable as-is.
    pub coordinator_advertise: Option<String>,
}

impl ClusterSpec {
    pub fn new(workers: impl IntoIterator<Item = impl Into<String>>) -> ClusterSpec {
        ClusterSpec {
            workers: workers.into_iter().map(Into::into).collect(),
            coordinator_bind: None,
            coordinator_advertise: None,
        }
    }

    /// Bind the coordinator's listener on this address (see
    /// [`ClusterSpec::coordinator_bind`]).
    pub fn bind(mut self, addr: impl Into<String>) -> ClusterSpec {
        self.coordinator_bind = Some(addr.into());
        self
    }

    /// Tell workers to dial the coordinator at this address (see
    /// [`ClusterSpec::coordinator_advertise`]).
    pub fn advertise(mut self, addr: impl Into<String>) -> ClusterSpec {
        self.coordinator_advertise = Some(addr.into());
        self
    }

    /// Peer labels for placement display: coordinator + worker addresses.
    pub fn peer_labels(&self) -> Vec<String> {
        let mut labels = vec!["coordinator".to_string()];
        labels.extend(self.workers.iter().cloned());
        labels
    }
}

/// Everything a worker needs to rebuild and run its slice of one query.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// This worker's peer index (1-based; 0 is the coordinator).
    pub me: usize,
    /// Listen addresses by peer index; `peers[0]` is the coordinator's
    /// ephemeral listener.
    pub peers: Vec<String>,
    pub spec: MultiJoinSpec,
    pub cfg: MultiwayConfig,
    /// Recovery relaunch: rebuild operators holding state through this
    /// epoch (`0` = a fresh run).
    pub resume_epoch: u64,
    /// Recovery relaunch: every join task's checkpoint blob (the worker
    /// restores the tasks placed on it and ignores the rest).
    pub restore_join: Vec<(u32, Vec<u8>)>,
}

// ---------------------------------------------------------------------
// Plan codec (hand-rolled, mirroring squall_common::codec's style)
// ---------------------------------------------------------------------

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => codec::put_u8(buf, 0),
        Some(x) => {
            codec::put_u8(buf, 1);
            codec::put_u64(buf, x);
        }
    }
}

fn get_opt_u64(r: &mut Reader<'_>) -> Result<Option<u64>> {
    Ok(match r.u8()? {
        0 => None,
        _ => Some(r.u64()?),
    })
}

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Date => 3,
    }
}

fn dtype_from(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Date,
        t => return Err(SquallError::Codec(format!("unknown data type tag {t}"))),
    })
}

fn put_schema(buf: &mut Vec<u8>, s: &Schema) {
    codec::put_u32(buf, s.arity() as u32);
    for f in s.fields() {
        codec::put_str(buf, &f.name);
        codec::put_u8(buf, dtype_tag(f.data_type));
        codec::put_bool(buf, f.skew_free);
    }
}

fn get_schema(r: &mut Reader<'_>) -> Result<Schema> {
    let n = r.len()?;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let data_type = dtype_from(r.u8()?)?;
        let skew_free = r.bool()?;
        let mut f = Field::new(name, data_type);
        if !skew_free {
            f = f.skewed();
        }
        fields.push(f);
    }
    Ok(Schema::new(fields))
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Mod => 4,
        BinOp::Eq => 5,
        BinOp::Ne => 6,
        BinOp::Lt => 7,
        BinOp::Le => 8,
        BinOp::Gt => 9,
        BinOp::Ge => 10,
        BinOp::And => 11,
        BinOp::Or => 12,
    }
}

fn binop_from(tag: u8) -> Result<BinOp> {
    Ok(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        5 => BinOp::Eq,
        6 => BinOp::Ne,
        7 => BinOp::Lt,
        8 => BinOp::Le,
        9 => BinOp::Gt,
        10 => BinOp::Ge,
        11 => BinOp::And,
        12 => BinOp::Or,
        t => return Err(SquallError::Codec(format!("unknown binop tag {t}"))),
    })
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn cmp_from(tag: u8) -> Result<CmpOp> {
    Ok(match tag {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        t => return Err(SquallError::Codec(format!("unknown cmp tag {t}"))),
    })
}

fn put_scalar(buf: &mut Vec<u8>, e: &ScalarExpr) {
    match e {
        ScalarExpr::Column(i) => {
            codec::put_u8(buf, 0);
            codec::put_u64(buf, *i as u64);
        }
        ScalarExpr::Literal(v) => {
            codec::put_u8(buf, 1);
            codec::put_value(buf, v);
        }
        ScalarExpr::Bin { op, lhs, rhs } => {
            codec::put_u8(buf, 2);
            codec::put_u8(buf, binop_tag(*op));
            put_scalar(buf, lhs);
            put_scalar(buf, rhs);
        }
        ScalarExpr::Not(x) => {
            codec::put_u8(buf, 3);
            put_scalar(buf, x);
        }
        ScalarExpr::Cast { expr, to } => {
            codec::put_u8(buf, 4);
            put_scalar(buf, expr);
            codec::put_u8(buf, dtype_tag(*to));
        }
    }
}

fn get_scalar(r: &mut Reader<'_>) -> Result<ScalarExpr> {
    Ok(match r.u8()? {
        0 => ScalarExpr::Column(r.u64()? as usize),
        1 => ScalarExpr::Literal(codec::get_value(r)?),
        2 => {
            let op = binop_from(r.u8()?)?;
            let lhs = get_scalar(r)?;
            let rhs = get_scalar(r)?;
            ScalarExpr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
        }
        3 => ScalarExpr::Not(Box::new(get_scalar(r)?)),
        4 => {
            let expr = get_scalar(r)?;
            let to = dtype_from(r.u8()?)?;
            ScalarExpr::Cast { expr: Box::new(expr), to }
        }
        t => return Err(SquallError::Codec(format!("unknown scalar tag {t}"))),
    })
}

fn put_agg_spec(buf: &mut Vec<u8>, a: &AggSpec) {
    codec::put_u8(
        buf,
        match a.func {
            AggFunc::Count => 0,
            AggFunc::Sum => 1,
            AggFunc::Avg => 2,
        },
    );
    match &a.input {
        None => codec::put_u8(buf, 0),
        Some(e) => {
            codec::put_u8(buf, 1);
            put_scalar(buf, e);
        }
    }
}

fn get_agg_spec(r: &mut Reader<'_>) -> Result<AggSpec> {
    let func = match r.u8()? {
        0 => AggFunc::Count,
        1 => AggFunc::Sum,
        2 => AggFunc::Avg,
        t => return Err(SquallError::Codec(format!("unknown agg tag {t}"))),
    };
    let input = match r.u8()? {
        0 => None,
        _ => Some(get_scalar(r)?),
    };
    Ok(AggSpec { func, input })
}

impl JobSpec {
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        codec::put_u32(&mut buf, self.me as u32);
        codec::put_u32(&mut buf, self.peers.len() as u32);
        for p in &self.peers {
            codec::put_str(&mut buf, p);
        }
        // MultiJoinSpec.
        codec::put_u32(&mut buf, self.spec.relations.len() as u32);
        for rel in &self.spec.relations {
            codec::put_str(&mut buf, &rel.name);
            put_schema(&mut buf, &rel.schema);
            codec::put_u64(&mut buf, rel.est_size);
        }
        codec::put_u32(&mut buf, self.spec.atoms.len() as u32);
        for a in &self.spec.atoms {
            codec::put_u32(&mut buf, a.left_rel as u32);
            codec::put_u32(&mut buf, a.left_col as u32);
            codec::put_u8(&mut buf, cmp_tag(a.op));
            codec::put_u32(&mut buf, a.right_rel as u32);
            codec::put_u32(&mut buf, a.right_col as u32);
        }
        // MultiwayConfig (cluster membership itself is not shipped — a
        // worker never re-distributes).
        let cfg = &self.cfg;
        codec::put_u8(
            &mut buf,
            match cfg.scheme {
                SchemeKind::Hash => 0,
                SchemeKind::Random => 1,
                SchemeKind::Hybrid => 2,
            },
        );
        codec::put_u8(
            &mut buf,
            match cfg.local {
                LocalJoinKind::Traditional => 0,
                LocalJoinKind::DBToaster => 1,
            },
        );
        codec::put_u64(&mut buf, cfg.machines as u64);
        codec::put_u64(&mut buf, cfg.seed);
        put_opt_u64(&mut buf, cfg.budget.map(|b| b as u64));
        codec::put_u64(&mut buf, cfg.source_parallelism as u64);
        match &cfg.agg {
            None => codec::put_u8(&mut buf, 0),
            Some(agg) => {
                codec::put_u8(&mut buf, 1);
                codec::put_u32(&mut buf, agg.group_cols.len() as u32);
                for &c in &agg.group_cols {
                    codec::put_u64(&mut buf, c as u64);
                }
                codec::put_u32(&mut buf, agg.aggs.len() as u32);
                for a in &agg.aggs {
                    put_agg_spec(&mut buf, a);
                }
                codec::put_u64(&mut buf, agg.parallelism as u64);
            }
        }
        match &cfg.window {
            None => codec::put_u8(&mut buf, 0),
            Some(w) => {
                codec::put_u8(&mut buf, 1);
                match w.spec {
                    WindowSpec::FullHistory => codec::put_u8(&mut buf, 0),
                    WindowSpec::Tumbling { width } => {
                        codec::put_u8(&mut buf, 1);
                        codec::put_u64(&mut buf, width);
                    }
                    WindowSpec::Sliding { size } => {
                        codec::put_u8(&mut buf, 2);
                        codec::put_u64(&mut buf, size);
                    }
                }
                codec::put_u32(&mut buf, w.ts_cols.len() as u32);
                for &c in &w.ts_cols {
                    codec::put_u64(&mut buf, c as u64);
                }
            }
        }
        codec::put_bool(&mut buf, cfg.collect_results);
        put_opt_u64(&mut buf, cfg.worker_threads.map(|w| w as u64));
        codec::put_u64(&mut buf, cfg.batch_size as u64);
        codec::put_bool(&mut buf, cfg.standing);
        codec::put_u64(&mut buf, cfg.checkpoint_interval);
        codec::put_u64(&mut buf, cfg.heartbeat_timeout_ms);
        codec::put_u64(&mut buf, self.resume_epoch);
        codec::put_u32(&mut buf, self.restore_join.len() as u32);
        for (task, blob) in &self.restore_join {
            codec::put_u32(&mut buf, *task);
            codec::put_bytes(&mut buf, blob);
        }
        buf
    }

    pub fn decode(payload: &[u8]) -> Result<JobSpec> {
        let mut r = Reader::new(payload);
        let me = r.u32()? as usize;
        let n_peers = r.len()?;
        let mut peers = Vec::with_capacity(n_peers);
        for _ in 0..n_peers {
            peers.push(r.str()?);
        }
        let n_rels = r.len()?;
        let mut relations = Vec::with_capacity(n_rels);
        for _ in 0..n_rels {
            let name = r.str()?;
            let schema = get_schema(&mut r)?;
            let est_size = r.u64()?;
            relations.push(RelationDef::new(name, schema, est_size));
        }
        let n_atoms = r.len()?;
        let mut atoms = Vec::with_capacity(n_atoms);
        for _ in 0..n_atoms {
            atoms.push(JoinAtom {
                left_rel: r.u32()? as usize,
                left_col: r.u32()? as usize,
                op: cmp_from(r.u8()?)?,
                right_rel: r.u32()? as usize,
                right_col: r.u32()? as usize,
            });
        }
        let spec = MultiJoinSpec::new(relations, atoms)?;
        let scheme = match r.u8()? {
            0 => SchemeKind::Hash,
            1 => SchemeKind::Random,
            2 => SchemeKind::Hybrid,
            t => return Err(SquallError::Codec(format!("unknown scheme tag {t}"))),
        };
        let local = match r.u8()? {
            0 => LocalJoinKind::Traditional,
            1 => LocalJoinKind::DBToaster,
            t => return Err(SquallError::Codec(format!("unknown local join tag {t}"))),
        };
        let mut cfg = MultiwayConfig::new(scheme, local, r.u64()? as usize);
        cfg.seed = r.u64()?;
        cfg.budget = get_opt_u64(&mut r)?.map(|b| b as usize);
        cfg.source_parallelism = r.u64()? as usize;
        cfg.agg = match r.u8()? {
            0 => None,
            _ => {
                let n = r.len()?;
                let mut group_cols = Vec::with_capacity(n);
                for _ in 0..n {
                    group_cols.push(r.u64()? as usize);
                }
                let n = r.len()?;
                let mut aggs = Vec::with_capacity(n);
                for _ in 0..n {
                    aggs.push(get_agg_spec(&mut r)?);
                }
                let parallelism = r.u64()? as usize;
                Some(AggPlan { group_cols, aggs, parallelism })
            }
        };
        cfg.window = match r.u8()? {
            0 => None,
            _ => {
                let spec = match r.u8()? {
                    0 => WindowSpec::FullHistory,
                    1 => WindowSpec::Tumbling { width: r.u64()? },
                    2 => WindowSpec::Sliding { size: r.u64()? },
                    t => return Err(SquallError::Codec(format!("unknown window tag {t}"))),
                };
                let n = r.len()?;
                let mut ts_cols = Vec::with_capacity(n);
                for _ in 0..n {
                    ts_cols.push(r.u64()? as usize);
                }
                Some(WindowPlan { spec, ts_cols })
            }
        };
        cfg.collect_results = r.bool()?;
        cfg.worker_threads = get_opt_u64(&mut r)?.map(|w| w as usize);
        cfg.batch_size = r.u64()? as usize;
        cfg.standing = r.bool()?;
        cfg.checkpoint_interval = r.u64()?;
        cfg.heartbeat_timeout_ms = r.u64()?;
        let resume_epoch = r.u64()?;
        let n_blobs = r.len()?;
        let mut restore_join = Vec::with_capacity(n_blobs);
        for _ in 0..n_blobs {
            let task = r.u32()?;
            let blob = r.bytes()?;
            restore_join.push((task, blob));
        }
        r.finish()?;
        Ok(JobSpec { me, peers, spec, cfg, resume_epoch, restore_join })
    }
}

// ---------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------

/// Bind the coordinator's ephemeral listener, ship a [`JobSpec`] to every
/// worker and complete the link handshake. The returned placement is the
/// same one every worker computes for itself.
///
/// On a recovery relaunch, `restore` ships the checkpoint's join blobs in
/// every job (each worker restores its placed tasks) and `readmit`
/// prefaces each job with a `Readmit` frame carrying the resume epoch, so
/// workers log the re-admission distinctly from a fresh job.
pub(crate) fn boot_coordinator(
    layout: (Vec<String>, Vec<usize>, Vec<bool>),
    spec: &MultiJoinSpec,
    cfg: &MultiwayConfig,
    cluster: &ClusterSpec,
    restore: Option<&crate::checkpoint::RestoreState>,
    readmit: Option<u64>,
) -> Result<(Placement, ClusterLinks)> {
    if cluster.workers.is_empty() {
        return Err(SquallError::InvalidPlan("cluster with no workers".into()));
    }
    let bind = cluster.coordinator_bind.as_deref().unwrap_or("127.0.0.1:0");
    let listener = TcpListener::bind(bind)?;
    let coordinator_addr = match &cluster.coordinator_advertise {
        Some(addr) => addr.clone(),
        None => listener.local_addr()?.to_string(),
    };
    let mut peers = vec![coordinator_addr];
    peers.extend(cluster.workers.iter().cloned());

    let (_, parallelism, is_spout) = layout;
    let placement = plan_placement(&parallelism, &is_spout, peers.len());

    let mut shipped_cfg = cfg.clone();
    shipped_cfg.cluster = None; // a worker never re-distributes its slice
    let (resume_epoch, restore_join) = match restore {
        None => (0, Vec::new()),
        Some(rs) => {
            let mut blobs: Vec<(u32, Vec<u8>)> =
                rs.join.iter().map(|(&t, b)| (t as u32, b.clone())).collect();
            blobs.sort_by_key(|(t, _)| *t);
            (rs.epoch, blobs)
        }
    };
    let jobs: Vec<Vec<u8>> = (1..peers.len())
        .map(|me| {
            JobSpec {
                me,
                peers: peers.clone(),
                spec: spec.clone(),
                cfg: shipped_cfg.clone(),
                resume_epoch,
                restore_join: restore_join.clone(),
            }
            .encode()
        })
        .collect();
    let links = ClusterLinks::coordinator(&listener, &cluster.workers, jobs, readmit)?;
    Ok((placement, links))
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

/// Serve exactly one job on an already-bound listener: accept the
/// coordinator's `Job` (plus any worker `Hello`s that race ahead of it),
/// rebuild the topology slice, run it, and report `Done`. Returns once
/// the job's run has fully drained.
pub fn serve_job(listener: &TcpListener) -> Result<()> {
    let mut hellos: Vec<(usize, TcpStream)> = Vec::new();
    let mut readmitted: Option<u64> = None;
    let (job_payload, job_conn) = loop {
        let (stream, _) = listener.accept().map_err(SquallError::from)?;
        stream.set_nodelay(true).ok();
        // First frame with a deadline (a connection that sends nothing
        // must not wedge the worker), exact reads straight off the
        // stream: a frame racing in behind the handshake must stay in
        // the socket for the recv pump.
        let deadline = std::time::Instant::now() + squall_runtime::transport::HANDSHAKE_TIMEOUT;
        match squall_runtime::transport::read_frame_deadline(&stream, deadline)? {
            Some((Frame::Job { payload }, _)) => break (payload, stream),
            Some((Frame::Hello { peer }, _)) => hellos.push((peer, stream)),
            Some((Frame::Readmit { peer, epoch }, _)) => {
                // A recovering coordinator re-admits this worker: the Job
                // frame follows on the same stream.
                eprintln!("squall-worker: re-admitted as peer {peer} at epoch {epoch}");
                readmitted = Some(epoch);
                match squall_runtime::transport::read_frame_deadline(&stream, deadline)? {
                    Some((Frame::Job { payload }, _)) => break (payload, stream),
                    other => {
                        return Err(SquallError::Runtime(format!(
                            "expected Job after Readmit, got {other:?}"
                        )))
                    }
                }
            }
            other => {
                return Err(SquallError::Runtime(format!(
                    "expected Job or Hello from a cluster peer, got {other:?}"
                )))
            }
        }
    };
    let job = JobSpec::decode(&job_payload)?;
    eprintln!(
        "squall-worker: accepted job as peer {} of {} ({}, checkpoint-interval {})",
        job.me,
        job.peers.len(),
        if job.cfg.standing { "standing" } else { "batch" },
        job.cfg.checkpoint_interval,
    );

    // Rebuild the identical topology — without data: every spout task is
    // placed on the coordinator, so the factories are never invoked here.
    let empty_data: Vec<Vec<squall_common::Tuple>> = vec![Vec::new(); job.spec.n_relations()];
    // Checkpoint plumbing: join bolts on this worker hand snapshot blobs
    // to a local channel; a detached forwarder ships them to the
    // coordinator as `SnapshotBlob` frames once the links are up.
    let mut blob_rx = None;
    let (topology, restored) = if job.cfg.standing {
        let blob_tx = (job.cfg.checkpoint_interval > 0).then(|| {
            let (tx, rx) = std::sync::mpsc::channel();
            blob_rx = Some(rx);
            tx
        });
        let restore = (job.resume_epoch > 0).then(|| {
            std::sync::Arc::new(crate::checkpoint::RestoreState {
                epoch: job.resume_epoch,
                join: job.restore_join.iter().map(|(t, b)| (*t as usize, b.clone())).collect(),
                sink: None,
            })
        });
        let restored = restore.is_some();
        // Standing views rebuild the resident topology shape; the live
        // queues and the view sink live on the coordinator only.
        let topology = crate::standing::assemble_standing(
            &job.spec, empty_data, &job.cfg, None, restore, blob_tx,
        )?
        .0;
        (topology, restored)
    } else {
        (assemble(&job.spec, empty_data, &job.cfg)?.topology, false)
    };
    if restored {
        eprintln!(
            "squall-worker: restoring join state from checkpoint epoch {} ({} blobs shipped)",
            job.resume_epoch,
            job.restore_join.len()
        );
    }
    let (_, parallelism, is_spout) = topology.layout();
    let placement = plan_placement(&parallelism, &is_spout, job.peers.len());

    let mut links = ClusterLinks::worker(listener, job.me, &job.peers, job_conn, hellos)?;
    if job.cfg.standing && job.cfg.heartbeat_timeout_ms > 0 {
        links.heartbeat = Some(std::time::Duration::from_millis(job.cfg.heartbeat_timeout_ms));
    }
    let (mut handle, cluster) = topology.launch_cluster(placement, links);

    // Forward checkpoint blobs to the coordinator in the background; the
    // thread dies with the channel when the topology is torn down.
    if let (Some(rx), Some(sender)) = (blob_rx.take(), cluster.frame_sender()) {
        std::thread::spawn(move || {
            while let Ok((role, task, epoch, payload)) = rx.recv() {
                sender.send(Frame::SnapshotBlob { role, task, epoch, payload });
            }
        });
    }
    let _ = readmitted; // logged above; the run itself is epoch-agnostic

    // Local sink emissions stream to the coordinator as they happen.
    while let Some((node, tuple)) = handle.recv() {
        cluster.forward_sink(node, tuple);
    }
    let outcome = handle.finish();
    let error = outcome.error;
    cluster.finish(Some((outcome.metrics, error)));
    Ok(())
}

/// Run a worker: serve jobs until `once` (then return after the first) or
/// forever. `on_ready` receives the bound address before serving — the
/// `squall-worker` binary prints it so spawners can discover ephemeral
/// ports.
///
/// A long-lived worker is resilient: a failed job (handshake garbage
/// from a port scanner, a coordinator that died mid-run, a malformed
/// frame) is logged and the worker goes back to accepting — one bad
/// connection must not take a cluster node down. With `once`, the error
/// propagates so spawners (tests, CI) see the failure.
pub fn run_worker(
    listen: &str,
    once: bool,
    on_ready: impl FnOnce(std::net::SocketAddr),
) -> Result<()> {
    let listener = TcpListener::bind(listen)?;
    let addr = listener.local_addr()?;
    eprintln!("squall-worker: listening on {addr}");
    on_ready(addr);
    loop {
        match serve_job(&listener) {
            Ok(()) => {}
            Err(e) if once => return Err(e),
            Err(SquallError::WorkerLost { addr, last_epoch }) => eprintln!(
                "squall-worker: heartbeat miss — peer {addr} lost after epoch {last_epoch}; awaiting re-admission"
            ),
            Err(e) => eprintln!("squall-worker: job failed: {e}; serving the next one"),
        }
        if once {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::{DataType, Schema};

    fn rst_spec() -> MultiJoinSpec {
        let mut s = Schema::of(&[("y", DataType::Int), ("z", DataType::Int)]);
        s.set_skewed("z").unwrap();
        MultiJoinSpec::new(
            vec![
                RelationDef::new(
                    "R",
                    Schema::of(&[("x", DataType::Int), ("y", DataType::Int)]),
                    100,
                ),
                RelationDef::new("S", s, 200),
                RelationDef::new(
                    "T",
                    Schema::of(&[("z", DataType::Int), ("t", DataType::Int)]),
                    300,
                ),
            ],
            vec![JoinAtom::eq(0, 1, 1, 0), JoinAtom::eq(1, 1, 2, 0)],
        )
        .unwrap()
    }

    #[test]
    fn job_spec_roundtrips_plan_and_config() {
        let mut cfg = MultiwayConfig::new(SchemeKind::Hybrid, LocalJoinKind::DBToaster, 8);
        cfg.seed = 77;
        cfg.budget = Some(1234);
        cfg.source_parallelism = 2;
        cfg.batch_size = 17;
        cfg.worker_threads = Some(3);
        cfg.collect_results = false;
        cfg.standing = true;
        cfg.agg = Some(AggPlan {
            group_cols: vec![0, 3],
            aggs: vec![AggSpec::count(), AggSpec::sum(ScalarExpr::col(5))],
            parallelism: 4,
        });
        cfg.window =
            Some(WindowPlan { spec: WindowSpec::Sliding { size: 30 }, ts_cols: vec![1, 1, 0] });
        cfg.checkpoint_interval = 5;
        cfg.heartbeat_timeout_ms = 750;
        let job = JobSpec {
            me: 2,
            peers: vec!["127.0.0.1:1".into(), "127.0.0.1:2".into(), "127.0.0.1:3".into()],
            spec: rst_spec(),
            cfg,
            resume_epoch: 9,
            restore_join: vec![(0, vec![1, 2, 3]), (3, Vec::new())],
        };
        let decoded = JobSpec::decode(&job.encode()).unwrap();
        assert_eq!(decoded.me, 2);
        assert_eq!(decoded.peers, job.peers);
        assert_eq!(decoded.spec.relations.len(), 3);
        assert_eq!(decoded.spec.relations[1].name, "S");
        assert!(!decoded.spec.relations[1].schema.field(1).skew_free, "skew hint survives");
        assert_eq!(decoded.spec.atoms, job.spec.atoms);
        assert_eq!(decoded.cfg.scheme, SchemeKind::Hybrid);
        assert_eq!(decoded.cfg.machines, 8);
        assert_eq!(decoded.cfg.seed, 77);
        assert_eq!(decoded.cfg.budget, Some(1234));
        assert_eq!(decoded.cfg.source_parallelism, 2);
        assert_eq!(decoded.cfg.batch_size, 17);
        assert_eq!(decoded.cfg.worker_threads, Some(3));
        assert!(!decoded.cfg.collect_results);
        assert!(decoded.cfg.standing);
        let agg = decoded.cfg.agg.unwrap();
        assert_eq!(agg.group_cols, vec![0, 3]);
        assert_eq!(agg.aggs.len(), 2);
        assert_eq!(agg.parallelism, 4);
        let w = decoded.cfg.window.unwrap();
        assert_eq!(w.spec, WindowSpec::Sliding { size: 30 });
        assert_eq!(w.ts_cols, vec![1, 1, 0]);
        assert_eq!(decoded.cfg.checkpoint_interval, 5);
        assert_eq!(decoded.cfg.heartbeat_timeout_ms, 750);
        assert_eq!(decoded.resume_epoch, 9);
        assert_eq!(decoded.restore_join, vec![(0, vec![1, 2, 3]), (3, Vec::new())]);
    }

    /// Spawn in-process worker threads, each serving one job over real
    /// loopback TCP — the transport neither knows nor cares that the
    /// "processes" share an address space (the e2e suite runs genuinely
    /// separate OS processes).
    fn spawn_workers(n: usize) -> (Vec<String>, Vec<std::thread::JoinHandle<()>>) {
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            addrs.push(listener.local_addr().unwrap().to_string());
            handles.push(std::thread::spawn(move || serve_job(&listener).unwrap()));
        }
        (addrs, handles)
    }

    fn rst_data(n: usize, dom: i64, seed: u64) -> Vec<Vec<squall_common::Tuple>> {
        use squall_common::{tuple, SplitMix64};
        let mut rng = SplitMix64::new(seed);
        (0..3)
            .map(|_| {
                (0..n).map(|_| tuple![rng.next_range(0, dom), rng.next_range(0, dom)]).collect()
            })
            .collect()
    }

    #[test]
    fn loopback_cluster_matches_local_run() {
        let spec = rst_spec();
        let data = rst_data(150, 12, 9);
        let cfg = MultiwayConfig::new(SchemeKind::Hybrid, LocalJoinKind::DBToaster, 8);
        let local = crate::driver::run_multiway(&spec, data.clone(), &cfg).unwrap();
        assert!(local.error.is_none());

        let (addrs, handles) = spawn_workers(2);
        let mut dist_cfg = cfg.clone();
        dist_cfg.cluster = Some(ClusterSpec::new(addrs));
        let dist = crate::driver::run_multiway(&spec, data, &dist_cfg).unwrap();
        for h in handles {
            h.join().unwrap();
        }
        assert!(dist.error.is_none(), "{:?}", dist.error);

        let mut a = local.results.clone();
        let mut b = dist.results.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "row-identical results across the wire");
        assert_eq!(local.loads, dist.loads, "per-machine loads are placement-independent");
        assert_eq!(local.result_count, dist.result_count);
        assert_eq!(local.input_count, dist.input_count);
        assert_eq!(local.scheme_description, dist.scheme_description);
        let transport = dist.transport.expect("distributed run reports wire traffic");
        assert!(transport.total_batches_sent() > 0, "{transport}");
        assert!(transport.total_bytes_received() > 0, "{transport}");
        assert!(local.transport.is_none());
    }

    #[test]
    fn loopback_cluster_aggregate_and_count_only_modes() {
        let spec = rst_spec();
        let data = rst_data(100, 8, 4);
        // Aggregate: SELECT col0, COUNT(*) GROUP BY col0 over the join.
        let mut agg_cfg = MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, 6)
            .with_agg(AggPlan {
                group_cols: vec![0],
                aggs: vec![AggSpec::count()],
                parallelism: 3,
            });
        let local = crate::driver::run_multiway(&spec, data.clone(), &agg_cfg).unwrap();
        let (addrs, handles) = spawn_workers(2);
        // Exercise the explicit bind knob alongside the default.
        agg_cfg.cluster = Some(ClusterSpec::new(addrs).bind("127.0.0.1:0"));
        let dist = crate::driver::run_multiway(&spec, data.clone(), &agg_cfg).unwrap();
        for h in handles {
            h.join().unwrap();
        }
        let mut a = local.results.clone();
        let mut b = dist.results.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "aggregate rows identical across the wire");
        assert_eq!(local.loads, dist.loads);

        // Count-only: remote per-task counters ride SinkRow frames.
        let mut count_cfg =
            MultiwayConfig::new(SchemeKind::Random, LocalJoinKind::DBToaster, 6).count_only();
        let local = crate::driver::run_multiway(&spec, data.clone(), &count_cfg).unwrap();
        let (addrs, handles) = spawn_workers(1);
        count_cfg.cluster = Some(ClusterSpec::new(addrs));
        let dist = crate::driver::run_multiway(&spec, data, &count_cfg).unwrap();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(local.result_count, dist.result_count);
        assert!(dist.results.is_empty());
    }

    #[test]
    fn loopback_cluster_abort_drains_with_typed_error() {
        let spec = rst_spec();
        let data = rst_data(400, 4, 10);
        let mut cfg = MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, 2)
            .count_only()
            .with_budget(50);
        let local = crate::driver::run_multiway(&spec, data.clone(), &cfg).unwrap();
        assert!(matches!(local.error, Some(SquallError::MemoryOverflow { .. })));

        let (addrs, handles) = spawn_workers(2);
        cfg.cluster = Some(ClusterSpec::new(addrs));
        let dist = crate::driver::run_multiway(&spec, data, &cfg).unwrap();
        for h in handles {
            h.join().unwrap();
        }
        // The overflow happened on a worker-hosted machine; the typed
        // error (with its budget) crossed the wire intact and every
        // process drained to termination.
        match dist.error {
            Some(SquallError::MemoryOverflow { budget, .. }) => assert_eq!(budget, 50),
            other => panic!("expected MemoryOverflow over the wire, got {other:?}"),
        }
        assert!(dist.input_count > 0, "partial metrics for extrapolation");
    }

    #[test]
    fn persistent_worker_survives_garbage_connections() {
        // A long-lived worker must shrug off a port-scan-style connection
        // (connect + disconnect without a frame) and still serve the next
        // real job.
        let (addr_tx, addr_rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            // Runs forever; the thread is abandoned when the test binary
            // exits.
            let _ = run_worker("127.0.0.1:0", false, move |addr| {
                addr_tx.send(addr.to_string()).unwrap();
            });
        });
        let addr = addr_rx.recv().unwrap();
        // Garbage: connect and hang up without sending anything.
        drop(TcpStream::connect(&addr).unwrap());
        // The worker logs the failed handshake and keeps serving.
        let spec = rst_spec();
        let data = rst_data(60, 8, 3);
        let mut cfg = MultiwayConfig::new(SchemeKind::Hybrid, LocalJoinKind::DBToaster, 4);
        let local = crate::driver::run_multiway(&spec, data.clone(), &cfg).unwrap();
        cfg.cluster = Some(ClusterSpec::new([addr]));
        let dist = crate::driver::run_multiway(&spec, data, &cfg).unwrap();
        assert!(dist.error.is_none(), "{:?}", dist.error);
        assert_eq!(local.loads, dist.loads);
    }

    #[test]
    fn empty_cluster_is_a_typed_error() {
        let spec = rst_spec();
        let mut cfg = MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, 2);
        cfg.cluster = Some(ClusterSpec::new(Vec::<String>::new()));
        let err = crate::driver::run_multiway(&spec, rst_data(10, 4, 1), &cfg).unwrap_err();
        assert!(matches!(err, SquallError::InvalidPlan(_)), "{err}");
    }

    #[test]
    fn corrupt_job_is_a_typed_error() {
        let job = JobSpec {
            me: 1,
            peers: vec!["a".into(), "b".into()],
            spec: rst_spec(),
            cfg: MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::Traditional, 2),
            resume_epoch: 0,
            restore_join: Vec::new(),
        };
        let mut bytes = job.encode();
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(JobSpec::decode(&bytes), Err(SquallError::Codec(_))));
    }
}
