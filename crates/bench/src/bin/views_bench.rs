//! `views_bench` — incremental view maintenance vs per-batch recompute.
//!
//! The standing-query value proposition in one number: keep a 3-way
//! join-plus-GROUP-BY resident and feed it appends (`CREATE MATERIALIZED
//! VIEW` once, then `append` + `snapshot` per batch), against re-running
//! the full SELECT from scratch after every batch. Both modes produce
//! byte-identical rows after every batch — asserted — so the benchmark
//! doubles as a correctness smoke test. Writes `BENCH_views.json`.
//!
//! ```text
//! cargo run --release -p squall-bench --bin views_bench            # full
//! cargo run --release -p squall-bench --bin views_bench -- --smoke # CI
//! ```

use std::time::{Duration, Instant};

use squall::Session;
use squall_common::{tuple, DataType, Schema, SplitMix64, Tuple};

const VIEW_SQL: &str = "SELECT R.a, COUNT(*) FROM R, S, T \
                        WHERE R.b = S.b AND S.c = T.c GROUP BY R.a";

fn gen_rows(rng: &mut SplitMix64, n: usize, dom: i64) -> Vec<Tuple> {
    (0..n).map(|_| tuple![rng.next_range(0, dom), rng.next_range(0, dom)]).collect()
}

/// A fresh session with the initial R(a,b), S(b,c), T(c,d) contents.
fn base_session(machines: usize, init: usize, dom: i64, seed: u64) -> Session {
    let mut rng = SplitMix64::new(seed);
    let mut s = Session::builder().machines(machines).seed(seed).build();
    s.register(
        "R",
        Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
        gen_rows(&mut rng, init, dom),
    )
    .expect("register R");
    s.register(
        "S",
        Schema::of(&[("b", DataType::Int), ("c", DataType::Int)]),
        gen_rows(&mut rng, init, dom),
    )
    .expect("register S");
    s.register(
        "T",
        Schema::of(&[("c", DataType::Int), ("d", DataType::Int)]),
        gen_rows(&mut rng, init, dom),
    )
    .expect("register T");
    s
}

/// The append batches, identical for both modes: each batch touches every
/// relation so every delta path stays hot.
fn batches(n_batches: usize, batch: usize, dom: i64, seed: u64) -> Vec<[Vec<Tuple>; 3]> {
    let mut rng = SplitMix64::new(seed ^ 0xfeed);
    (0..n_batches)
        .map(|_| {
            [
                gen_rows(&mut rng, batch, dom),
                gen_rows(&mut rng, batch, dom),
                gen_rows(&mut rng, batch, dom),
            ]
        })
        .collect()
}

struct Mode {
    label: &'static str,
    total: Duration,
    per_batch_ms: Vec<f64>,
    final_rows: Vec<Tuple>,
}

/// Incremental: one resident view; per batch, append to all three sources
/// and take a consistent snapshot.
fn run_incremental(
    machines: usize,
    init: usize,
    dom: i64,
    seed: u64,
    work: &[[Vec<Tuple>; 3]],
) -> Mode {
    let mut s = base_session(machines, init, dom, seed);
    let view = s
        .sql(&format!("CREATE MATERIALIZED VIEW v AS {VIEW_SQL}"))
        .map(|_| s.view("v").expect("just created"))
        .expect("create view");
    let mut per_batch_ms = Vec::with_capacity(work.len());
    let mut final_rows = Vec::new();
    let start = Instant::now();
    for batch in work {
        let t0 = Instant::now();
        for (name, rows) in ["R", "S", "T"].iter().zip(batch) {
            s.append(name, rows.clone()).expect("append batch");
        }
        final_rows = view.snapshot().expect("consistent snapshot");
        per_batch_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let total = start.elapsed();
    let report = s.drop_view("v").expect("drop view");
    let stats = report.maintenance.expect("standing report");
    eprintln!("incremental maintenance counters: {stats}");
    Mode { label: "incremental", total, per_batch_ms, final_rows }
}

/// Recompute: no view; per batch, append to the catalog and re-run the
/// full SELECT from scratch.
fn run_recompute(
    machines: usize,
    init: usize,
    dom: i64,
    seed: u64,
    work: &[[Vec<Tuple>; 3]],
) -> Mode {
    let mut s = base_session(machines, init, dom, seed);
    let mut per_batch_ms = Vec::with_capacity(work.len());
    let mut final_rows = Vec::new();
    let start = Instant::now();
    for batch in work {
        let t0 = Instant::now();
        for (name, rows) in ["R", "S", "T"].iter().zip(batch) {
            s.append(name, rows.clone()).expect("append batch");
        }
        final_rows = s.sql(VIEW_SQL).expect("full recompute").rows().to_vec();
        per_batch_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let total = start.elapsed();
    Mode { label: "recompute", total, per_batch_ms, final_rows }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (machines, init, dom, n_batches, batch) =
        if smoke { (4, 4_000, 2_000, 8, 50) } else { (4, 40_000, 20_000, 40, 200) };
    let work = batches(n_batches, batch, dom, 7);

    let inc = run_incremental(machines, init, dom, 7, &work);
    let rec = run_recompute(machines, init, dom, 7, &work);
    assert_eq!(
        inc.final_rows, rec.final_rows,
        "incremental maintenance must equal the full recompute byte-for-byte"
    );
    assert!(!inc.final_rows.is_empty(), "degenerate benchmark: empty view");

    let speedup = rec.total.as_secs_f64() / inc.total.as_secs_f64().max(1e-9);
    let mut json = String::from("{\n");
    json.push_str(
        "  \"benchmark\": \"standing view (3-way join + GROUP BY): incremental \
         maintenance per append batch vs full SELECT recompute per batch\",\n",
    );
    json.push_str(&format!("  \"mode\": \"{}\",\n", if smoke { "smoke" } else { "full" }));
    json.push_str(&format!("  \"machines\": {machines},\n"));
    json.push_str(&format!("  \"initial_rows_per_relation\": {init},\n"));
    json.push_str(&format!("  \"batches\": {n_batches},\n"));
    json.push_str(&format!("  \"appends_per_batch\": {},\n", 3 * batch));
    json.push_str(&format!("  \"view_rows\": {},\n", inc.final_rows.len()));
    json.push_str(&format!("  \"incremental_over_recompute_speedup\": {speedup:.2},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, m) in [&inc, &rec].iter().enumerate() {
        let mean = m.per_batch_ms.iter().sum::<f64>() / m.per_batch_ms.len() as f64;
        let worst = m.per_batch_ms.iter().cloned().fold(0.0f64, f64::max);
        json.push_str(&format!(
            "    {{\"config\": \"{}\", \"total_ms\": {:.3}, \"mean_batch_ms\": {:.3}, \
             \"worst_batch_ms\": {:.3}}}{}\n",
            m.label,
            m.total.as_secs_f64() * 1e3,
            mean,
            worst,
            if i == 0 { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_views.json", &json).expect("write BENCH_views.json");
    println!("{json}");
    eprintln!(
        "incremental {:.1} ms vs recompute {:.1} ms over {} batches → {speedup:.2}x",
        inc.total.as_secs_f64() * 1e3,
        rec.total.as_secs_f64() * 1e3,
        n_batches,
    );
    assert!(
        speedup > 1.0,
        "incremental maintenance should beat per-batch recompute (got {speedup:.2}x)"
    );
}
