//! `runtime_bench` — measure data-plane batching on the pooled executor.
//!
//! Runs the 3-way hypercube join R(x,y) ⋈ S(y,z) ⋈ T(z,t) (the §3.1
//! worked-example shape) at `batch_size ∈ {1, 64, 1024}` and writes
//! `BENCH_runtime.json` with tuples/s for each configuration plus the
//! batched-vs-per-tuple speedups. `batch_size = 1` reproduces the old
//! per-tuple messaging; the batched configurations must beat it.
//!
//! ```text
//! cargo run --release -p squall-bench --bin runtime_bench            # full
//! cargo run --release -p squall-bench --bin runtime_bench -- --smoke # CI
//! ```

use std::time::Duration;

use squall_common::{tuple, DataType, Schema, SplitMix64, Tuple};
use squall_core::driver::{run_multiway, LocalJoinKind, MultiwayConfig};
use squall_expr::{JoinAtom, MultiJoinSpec, RelationDef};
use squall_partition::optimizer::SchemeKind;

const MACHINES: usize = 16;
const BATCH_SIZES: [usize; 3] = [1, 64, 1024];

fn rst_spec(n: u64) -> MultiJoinSpec {
    MultiJoinSpec::new(
        vec![
            RelationDef::new("R", Schema::of(&[("x", DataType::Int), ("y", DataType::Int)]), n),
            RelationDef::new("S", Schema::of(&[("y", DataType::Int), ("z", DataType::Int)]), n),
            RelationDef::new("T", Schema::of(&[("z", DataType::Int), ("t", DataType::Int)]), n),
        ],
        vec![JoinAtom::eq(0, 1, 1, 0), JoinAtom::eq(1, 1, 2, 0)],
    )
    .expect("static spec")
}

fn rst_data(n: usize, dom: i64, seed: u64) -> Vec<Vec<Tuple>> {
    let mut rng = SplitMix64::new(seed);
    (0..3)
        .map(|_| (0..n).map(|_| tuple![rng.next_range(0, dom), rng.next_range(0, dom)]).collect())
        .collect()
}

struct Run {
    batch_size: usize,
    elapsed: Duration,
    results: u64,
    tuples_per_sec: f64,
}

fn measure(spec: &MultiJoinSpec, data: &[Vec<Tuple>], batch_size: usize, reps: usize) -> Run {
    let mut best: Option<Run> = None;
    for _ in 0..reps {
        let mut cfg = MultiwayConfig::new(SchemeKind::Hybrid, LocalJoinKind::DBToaster, MACHINES)
            .count_only();
        cfg.batch_size = batch_size;
        let report = run_multiway(spec, data.to_vec(), &cfg).expect("bench join");
        assert!(report.error.is_none(), "bench run failed: {:?}", report.error);
        let secs = report.elapsed.as_secs_f64().max(1e-9);
        let run = Run {
            batch_size,
            elapsed: report.elapsed,
            results: report.result_count,
            tuples_per_sec: report.input_count as f64 / secs,
        };
        best = match best {
            Some(b) if b.tuples_per_sec >= run.tuples_per_sec => Some(b),
            _ => Some(run),
        };
    }
    best.expect("reps > 0")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Sparse join keys (dom ≫ n): the run is dominated by the data plane
    // (routing, queues, scheduling) rather than by join products, which is
    // exactly what the batching knob optimizes.
    let (n, dom, reps) = if smoke { (20_000, 400_000, 1) } else { (50_000, 1_000_000, 3) };
    let spec = rst_spec(n as u64);
    let data = rst_data(n, dom, 42);
    let input_tuples = 3 * n;

    // Warm caches / allocator before timing.
    let _ = measure(&spec, &data, 64, 1);

    let runs: Vec<Run> = BATCH_SIZES.iter().map(|&b| measure(&spec, &data, b, reps)).collect();
    let counts: Vec<u64> = runs.iter().map(|r| r.results).collect();
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "batch size changed the join result: {counts:?}"
    );

    let base = runs[0].tuples_per_sec;
    let mut json = String::from("{\n");
    json.push_str(
        "  \"benchmark\": \"3-way hypercube join R(x,y) \\u22c8 S(y,z) \\u22c8 T(z,t), \
         Hybrid-Hypercube, DBToaster locals, count-only\",\n",
    );
    json.push_str(&format!("  \"mode\": \"{}\",\n", if smoke { "smoke" } else { "full" }));
    json.push_str(&format!("  \"machines\": {MACHINES},\n"));
    json.push_str(&format!("  \"input_tuples\": {input_tuples},\n"));
    json.push_str(&format!("  \"join_results\": {},\n", counts[0]));
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"batch_size\": {}, \"elapsed_ms\": {:.3}, \"tuples_per_sec\": {:.0}}}{}\n",
            r.batch_size,
            r.elapsed.as_secs_f64() * 1e3,
            r.tuples_per_sec,
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"speedup_batch64_vs_1\": {:.2},\n", runs[1].tuples_per_sec / base));
    json.push_str(&format!("  \"speedup_batch1024_vs_1\": {:.2}\n", runs[2].tuples_per_sec / base));
    json.push_str("}\n");

    std::fs::write("BENCH_runtime.json", &json).expect("write BENCH_runtime.json");
    println!("{json}");
    for r in &runs {
        eprintln!(
            "batch {:>5}: {:>10.0} tuples/s ({:.1} ms)",
            r.batch_size,
            r.tuples_per_sec,
            r.elapsed.as_secs_f64() * 1e3
        );
    }
    let speedup = runs[1].tuples_per_sec / base;
    if !smoke && speedup < 2.0 {
        eprintln!("WARNING: batch=64 speedup {speedup:.2}x is below the 2x target");
    }
}
