//! `runtime_bench` — measure data-plane batching on the pooled executor.
//!
//! Runs the 3-way hypercube join R(x,y) ⋈ S(y,z) ⋈ T(z,t) (the §3.1
//! worked-example shape) at `batch_size ∈ {1, 64, 1024}` and writes
//! `BENCH_runtime.json` with tuples/s for each configuration plus the
//! batched-vs-per-tuple speedups. `batch_size = 1` reproduces the old
//! per-tuple messaging; the batched configurations must beat it.
//!
//! The report also carries per-stage microbenchmarks isolating the three
//! data-plane stages — wire encode/decode (row codec vs columnar chunk
//! codec), routing (per-row `Value` hashing vs columnar key hashing) and
//! the local join operator — so a regression shows *where* it happened,
//! not just that end-to-end throughput moved.
//!
//! ```text
//! cargo run --release -p squall-bench --bin runtime_bench            # full
//! cargo run --release -p squall-bench --bin runtime_bench -- --smoke # CI
//! ```

use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

use squall_common::codec::{self, Reader};
use squall_common::hash::{partition_of, FxHasher};
use squall_common::{tuple, Chunk, DataType, Schema, SplitMix64, Tuple};
use squall_core::driver::{run_multiway, LocalJoinKind, MultiwayConfig};
use squall_core::{WindowMergeBolt, WindowedAggBolt};
use squall_expr::{JoinAtom, MultiJoinSpec, RelationDef};
use squall_join::{AggSpec, DBToasterJoin, LocalJoin, WindowSpec};
use squall_partition::optimizer::SchemeKind;

const MACHINES: usize = 16;
const BATCH_SIZES: [usize; 3] = [1, 64, 1024];

fn rst_spec(n: u64) -> MultiJoinSpec {
    MultiJoinSpec::new(
        vec![
            RelationDef::new("R", Schema::of(&[("x", DataType::Int), ("y", DataType::Int)]), n),
            RelationDef::new("S", Schema::of(&[("y", DataType::Int), ("z", DataType::Int)]), n),
            RelationDef::new("T", Schema::of(&[("z", DataType::Int), ("t", DataType::Int)]), n),
        ],
        vec![JoinAtom::eq(0, 1, 1, 0), JoinAtom::eq(1, 1, 2, 0)],
    )
    .expect("static spec")
}

fn rst_data(n: usize, dom: i64, seed: u64) -> Vec<Vec<Tuple>> {
    let mut rng = SplitMix64::new(seed);
    (0..3)
        .map(|_| (0..n).map(|_| tuple![rng.next_range(0, dom), rng.next_range(0, dom)]).collect())
        .collect()
}

struct Run {
    batch_size: usize,
    elapsed: Duration,
    results: u64,
    tuples_per_sec: f64,
}

fn measure(spec: &MultiJoinSpec, data: &[Vec<Tuple>], batch_size: usize, reps: usize) -> Run {
    let mut best: Option<Run> = None;
    for _ in 0..reps {
        let mut cfg = MultiwayConfig::new(SchemeKind::Hybrid, LocalJoinKind::DBToaster, MACHINES)
            .count_only();
        cfg.batch_size = batch_size;
        let report = run_multiway(spec, data.to_vec(), &cfg).expect("bench join");
        assert!(report.error.is_none(), "bench run failed: {:?}", report.error);
        let secs = report.elapsed.as_secs_f64().max(1e-9);
        let run = Run {
            batch_size,
            elapsed: report.elapsed,
            results: report.result_count,
            tuples_per_sec: report.input_count as f64 / secs,
        };
        best = match best {
            Some(b) if b.tuples_per_sec >= run.tuples_per_sec => Some(b),
            _ => Some(run),
        };
    }
    best.expect("reps > 0")
}

/// Best-of-`reps` throughput (tuples/s) of `work` over `n` tuples.
fn best_rate(n: usize, reps: usize, mut work: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        work();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    n as f64 / best.max(1e-9)
}

/// Isolated per-stage throughputs over the bench data: wire encode+decode
/// (row codec vs columnar chunk codec at batch 64), routing hash
/// (per-row `Value` hashing vs columnar key hashing, both reduced with
/// the same Lemire partition map) and the bare local-join operator.
struct StageRates {
    encode_rows: f64,
    encode_chunks: f64,
    route_rows: f64,
    route_chunks: f64,
    operator: f64,
}

fn stage_rates(data: &[Vec<Tuple>], spec: &MultiJoinSpec, reps: usize) -> StageRates {
    let tuples: Vec<Tuple> = data.iter().flatten().cloned().collect();
    let n = tuples.len();
    let batches: Vec<&[Tuple]> = tuples.chunks(64).collect();
    let chunks: Vec<Chunk> = batches.iter().map(|b| Chunk::from_tuples(b)).collect();

    let encode_rows = best_rate(n, reps, || {
        let mut buf = Vec::new();
        for b in &batches {
            buf.clear();
            codec::put_u32(&mut buf, b.len() as u32);
            for t in *b {
                codec::put_tuple(&mut buf, t);
            }
            let mut r = Reader::new(&buf);
            let k = r.len().expect("len");
            for _ in 0..k {
                std::hint::black_box(codec::get_tuple(&mut r).expect("tuple"));
            }
        }
    });
    let encode_chunks = best_rate(n, reps, || {
        let mut buf = Vec::new();
        for c in &chunks {
            buf.clear();
            codec::put_chunk(&mut buf, c);
            let mut r = Reader::new(&buf);
            std::hint::black_box(codec::get_chunk(&mut r).expect("chunk"));
        }
    });
    // Routing hash on the join-key column (col 1), reduced to a machine
    // index exactly like `Grouping::Fields` does.
    let route_rows = best_rate(n, reps, || {
        let mut acc = 0usize;
        for t in &tuples {
            let mut h = FxHasher::default();
            t.get(1).hash(&mut h);
            acc ^= partition_of(h.finish(), MACHINES);
        }
        std::hint::black_box(acc);
    });
    let route_chunks = best_rate(n, reps, || {
        let mut acc = 0usize;
        for c in &chunks {
            for h in c.key_hashes(&[1]) {
                acc ^= partition_of(h, MACHINES);
            }
        }
        std::hint::black_box(acc);
    });
    // The bare operator: DBToaster inserts with no runtime around them.
    let operator = best_rate(n, reps, || {
        let mut join = DBToasterJoin::new(spec);
        let mut out = Vec::new();
        for (rel, rel_data) in data.iter().enumerate() {
            for t in rel_data {
                join.insert(rel, t, &mut out);
                out.clear();
            }
        }
        std::hint::black_box(join.stored());
    });
    StageRates { encode_rows, encode_chunks, route_rows, route_chunks, operator }
}

const WINDOWED_SHARDS: [usize; 3] = [1, 2, 4];
const WINDOWED_GROUPS: i64 = 64;
const WINDOWED_WIDTH: u64 = 1024;

/// Critical-path throughput of the sharded windowed aggregation at each
/// shard count, plus the merged outputs for the byte-identity check.
///
/// This host may expose a single core, so wall-clock threading would
/// measure the scheduler, not the sharding. Instead we measure what the
/// sharding actually changes — the **per-shard critical path**: rows are
/// partitioned by group hash exactly like `Grouping::Fields`, each
/// shard's columnar insert + close kernel is timed serially, and the
/// modeled wall-clock is `max(shard elapsed) + merge elapsed` (the merge
/// is the sequential tail a real cluster also pays).
struct WindowedRun {
    shards: usize,
    critical_path_tuples_per_sec: f64,
    merged: Vec<Tuple>,
}

fn windowed_scaling(n: usize, reps: usize) -> Vec<WindowedRun> {
    let mut rng = SplitMix64::new(7);
    let mut ts = 0u64;
    let rows: Vec<Tuple> = (0..n)
        .map(|_| {
            ts += rng.next_range(0, 2) as u64;
            tuple![rng.next_range(0, WINDOWED_GROUPS), ts as i64]
        })
        .collect();
    let bolt = || {
        WindowedAggBolt::new(
            WindowSpec::Tumbling { width: WINDOWED_WIDTH },
            vec![1],
            vec![0],
            vec![AggSpec::count(), AggSpec::sum_col(1)],
            1,
        )
    };

    WINDOWED_SHARDS
        .iter()
        .map(|&s| {
            // Route by group hash, exactly like `Grouping::Fields([0])`.
            let mut parts: Vec<Vec<Tuple>> = vec![Vec::new(); s];
            for t in &rows {
                let mut h = FxHasher::default();
                t.get(0).hash(&mut h);
                parts[partition_of(h.finish(), s)].push(t.clone());
            }
            let chunks: Vec<Vec<Chunk>> = parts
                .iter()
                .map(|p| p.chunks(1024).map(Chunk::from_tuples).collect())
                .collect();

            let mut best = f64::INFINITY;
            let mut merged = Vec::new();
            for _ in 0..reps.max(2) {
                let mut slowest = 0f64;
                let mut shard_rows: Vec<Vec<Tuple>> = Vec::with_capacity(s);
                for shard_chunks in &chunks {
                    let t0 = Instant::now();
                    let mut agg = bolt();
                    for c in shard_chunks {
                        agg.insert_chunk(c).expect("windowed insert");
                    }
                    let mut out = Vec::new();
                    agg.close_into(u64::MAX, &mut out);
                    slowest = slowest.max(t0.elapsed().as_secs_f64());
                    shard_rows.push(out);
                }
                let t0 = Instant::now();
                let mut merge = WindowMergeBolt::new(s);
                for out in shard_rows {
                    for row in out {
                        merge.push(row).expect("merge push");
                    }
                }
                merged.clear();
                merge.release_below(u64::MAX, &mut merged);
                best = best.min(slowest + t0.elapsed().as_secs_f64());
            }
            WindowedRun {
                shards: s,
                critical_path_tuples_per_sec: n as f64 / best.max(1e-9),
                merged,
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let min_windowed_speedup: Option<f64> = args
        .iter()
        .position(|a| a == "--min-windowed-speedup")
        .map(|i| args[i + 1].parse().expect("--min-windowed-speedup takes a float"));
    // Sparse join keys (dom ≫ n): the run is dominated by the data plane
    // (routing, queues, scheduling) rather than by join products, which is
    // exactly what the batching knob optimizes.
    let (n, dom, reps) = if smoke { (20_000, 400_000, 1) } else { (50_000, 1_000_000, 3) };
    let spec = rst_spec(n as u64);
    let data = rst_data(n, dom, 42);
    let input_tuples = 3 * n;

    // Warm caches / allocator before timing.
    let _ = measure(&spec, &data, 64, 1);

    let runs: Vec<Run> = BATCH_SIZES.iter().map(|&b| measure(&spec, &data, b, reps)).collect();
    let counts: Vec<u64> = runs.iter().map(|r| r.results).collect();
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "batch size changed the join result: {counts:?}"
    );

    let base = runs[0].tuples_per_sec;
    let mut json = String::from("{\n");
    json.push_str(
        "  \"benchmark\": \"3-way hypercube join R(x,y) \\u22c8 S(y,z) \\u22c8 T(z,t), \
         Hybrid-Hypercube, DBToaster locals, count-only\",\n",
    );
    json.push_str(&format!("  \"mode\": \"{}\",\n", if smoke { "smoke" } else { "full" }));
    json.push_str(&format!("  \"machines\": {MACHINES},\n"));
    json.push_str(&format!("  \"input_tuples\": {input_tuples},\n"));
    json.push_str(&format!("  \"join_results\": {},\n", counts[0]));
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"batch_size\": {}, \"elapsed_ms\": {:.3}, \"tuples_per_sec\": {:.0}}}{}\n",
            r.batch_size,
            r.elapsed.as_secs_f64() * 1e3,
            r.tuples_per_sec,
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"speedup_batch64_vs_1\": {:.2},\n", runs[1].tuples_per_sec / base));
    json.push_str(&format!(
        "  \"speedup_batch1024_vs_1\": {:.2},\n",
        runs[2].tuples_per_sec / base
    ));

    let st = stage_rates(&data, &spec, reps.max(2));
    json.push_str("  \"stages\": {\n");
    json.push_str(&format!("    \"encode_row_codec_tuples_per_sec\": {:.0},\n", st.encode_rows));
    json.push_str(&format!(
        "    \"encode_chunk_codec_tuples_per_sec\": {:.0},\n",
        st.encode_chunks
    ));
    json.push_str(&format!("    \"route_hash_row_tuples_per_sec\": {:.0},\n", st.route_rows));
    json.push_str(&format!("    \"route_hash_chunk_tuples_per_sec\": {:.0},\n", st.route_chunks));
    json.push_str(&format!(
        "    \"operator_dbtoaster_insert_tuples_per_sec\": {:.0}\n",
        st.operator
    ));
    json.push_str("  },\n");

    // Sharded windowed aggregation: group-hash shards + ordered merge.
    let wn = if smoke { 200_000 } else { 1_000_000 };
    let wruns = windowed_scaling(wn, reps);
    for r in &wruns {
        assert_eq!(
            r.merged, wruns[0].merged,
            "{}-shard merged output diverged from 1 shard",
            r.shards
        );
    }
    let wspeedup = wruns[2].critical_path_tuples_per_sec / wruns[0].critical_path_tuples_per_sec;
    json.push_str("  \"windowed_scaling\": {\n");
    json.push_str(&format!(
        "    \"workload\": \"tumbling {WINDOWED_WIDTH} on ts, {WINDOWED_GROUPS} groups, \
         COUNT + SUM, {wn} rows\",\n"
    ));
    json.push_str(
        "    \"metric\": \"critical path: max per-shard columnar insert+close time plus the \
         k-way merge (single-core host, so per-shard work, not wall-clock threading)\",\n",
    );
    json.push_str("    \"shards\": [\n");
    for (i, r) in wruns.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"shards\": {}, \"critical_path_tuples_per_sec\": {:.0}}}{}\n",
            r.shards,
            r.critical_path_tuples_per_sec,
            if i + 1 < wruns.len() { "," } else { "" },
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!("    \"speedup_4_shards_vs_1\": {wspeedup:.2}\n"));
    json.push_str("  }\n}\n");

    std::fs::write("BENCH_runtime.json", &json).expect("write BENCH_runtime.json");
    println!("{json}");
    for r in &runs {
        eprintln!(
            "batch {:>5}: {:>10.0} tuples/s ({:.1} ms)",
            r.batch_size,
            r.tuples_per_sec,
            r.elapsed.as_secs_f64() * 1e3
        );
    }
    eprintln!(
        "stages: encode row {:.2} M/s vs chunk {:.2} M/s; route row {:.2} M/s vs chunk \
         {:.2} M/s; operator {:.2} M/s",
        st.encode_rows / 1e6,
        st.encode_chunks / 1e6,
        st.route_rows / 1e6,
        st.route_chunks / 1e6,
        st.operator / 1e6,
    );
    let speedup = runs[1].tuples_per_sec / base;
    if !smoke && speedup < 2.0 {
        eprintln!("WARNING: batch=64 speedup {speedup:.2}x is below the 2x target");
    }
    eprintln!(
        "windowed scaling: {} → {wspeedup:.2}x critical-path speedup at 4 shards vs 1",
        wruns
            .iter()
            .map(|r| format!("{} shard(s) {:.2} M/s", r.shards, r.critical_path_tuples_per_sec / 1e6))
            .collect::<Vec<_>>()
            .join(", "),
    );
    if let Some(min) = min_windowed_speedup {
        if wspeedup < min {
            eprintln!("FAIL: windowed 4-shard speedup {wspeedup:.2}x < required {min:.2}x");
            std::process::exit(1);
        }
    }
}
