//! `runtime_bench` — measure data-plane batching on the pooled executor.
//!
//! Runs the 3-way hypercube join R(x,y) ⋈ S(y,z) ⋈ T(z,t) (the §3.1
//! worked-example shape) at `batch_size ∈ {1, 64, 1024}` and writes
//! `BENCH_runtime.json` with tuples/s for each configuration plus the
//! batched-vs-per-tuple speedups. `batch_size = 1` reproduces the old
//! per-tuple messaging; the batched configurations must beat it.
//!
//! The report also carries per-stage microbenchmarks isolating the three
//! data-plane stages — wire encode/decode (row codec vs columnar chunk
//! codec), routing (per-row `Value` hashing vs columnar key hashing) and
//! the local join operator — so a regression shows *where* it happened,
//! not just that end-to-end throughput moved.
//!
//! The `optimizer` stage runs a skewed 4-way join whose written FROM
//! order is pessimal (the two big zipf-keyed relations join first, the
//! selective guards last) under `optimizer(off)` and under the cost-based
//! search, and reports the wall-clock ratio. `--min-optimizer-speedup X`
//! turns the ratio into a CI gate.
//!
//! ```text
//! cargo run --release -p squall-bench --bin runtime_bench            # full
//! cargo run --release -p squall-bench --bin runtime_bench -- --smoke # CI
//! ```

use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

use squall::plan::optimizer::OptimizerMode;
use squall::plan::physical::{execute_query, ExecConfig};
use squall::plan::{optimize, Catalog, PhysicalQuery, Query};
use squall::session::{col, count};
use squall_common::codec::{self, Reader};
use squall_common::hash::{partition_of, FxHasher};
use squall_common::{tuple, Chunk, DataType, Schema, SplitMix64, Tuple, Zipf};
use squall_core::driver::{run_multiway, LocalJoinKind, MultiwayConfig};
use squall_core::{WindowMergeBolt, WindowedAggBolt};
use squall_expr::{JoinAtom, MultiJoinSpec, RelationDef};
use squall_join::{AggSpec, DBToasterJoin, LocalJoin, WindowSpec};
use squall_partition::optimizer::SchemeKind;

const MACHINES: usize = 16;
const BATCH_SIZES: [usize; 3] = [1, 64, 1024];

fn rst_spec(n: u64) -> MultiJoinSpec {
    MultiJoinSpec::new(
        vec![
            RelationDef::new("R", Schema::of(&[("x", DataType::Int), ("y", DataType::Int)]), n),
            RelationDef::new("S", Schema::of(&[("y", DataType::Int), ("z", DataType::Int)]), n),
            RelationDef::new("T", Schema::of(&[("z", DataType::Int), ("t", DataType::Int)]), n),
        ],
        vec![JoinAtom::eq(0, 1, 1, 0), JoinAtom::eq(1, 1, 2, 0)],
    )
    .expect("static spec")
}

fn rst_data(n: usize, dom: i64, seed: u64) -> Vec<Vec<Tuple>> {
    let mut rng = SplitMix64::new(seed);
    (0..3)
        .map(|_| (0..n).map(|_| tuple![rng.next_range(0, dom), rng.next_range(0, dom)]).collect())
        .collect()
}

struct Run {
    batch_size: usize,
    elapsed: Duration,
    results: u64,
    tuples_per_sec: f64,
}

fn measure(spec: &MultiJoinSpec, data: &[Vec<Tuple>], batch_size: usize, reps: usize) -> Run {
    let mut best: Option<Run> = None;
    for _ in 0..reps {
        let mut cfg = MultiwayConfig::new(SchemeKind::Hybrid, LocalJoinKind::DBToaster, MACHINES)
            .count_only();
        cfg.batch_size = batch_size;
        let report = run_multiway(spec, data.to_vec(), &cfg).expect("bench join");
        assert!(report.error.is_none(), "bench run failed: {:?}", report.error);
        let secs = report.elapsed.as_secs_f64().max(1e-9);
        let run = Run {
            batch_size,
            elapsed: report.elapsed,
            results: report.result_count,
            tuples_per_sec: report.input_count as f64 / secs,
        };
        best = match best {
            Some(b) if b.tuples_per_sec >= run.tuples_per_sec => Some(b),
            _ => Some(run),
        };
    }
    best.expect("reps > 0")
}

/// Best-of-`reps` throughput (tuples/s) of `work` over `n` tuples.
fn best_rate(n: usize, reps: usize, mut work: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        work();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    n as f64 / best.max(1e-9)
}

/// Isolated per-stage throughputs over the bench data: wire encode+decode
/// (row codec vs columnar chunk codec at batch 64), routing hash
/// (per-row `Value` hashing vs columnar key hashing, both reduced with
/// the same Lemire partition map) and the bare local-join operator.
struct StageRates {
    encode_rows: f64,
    encode_chunks: f64,
    route_rows: f64,
    route_chunks: f64,
    operator: f64,
}

fn stage_rates(data: &[Vec<Tuple>], spec: &MultiJoinSpec, reps: usize) -> StageRates {
    let tuples: Vec<Tuple> = data.iter().flatten().cloned().collect();
    let n = tuples.len();
    let batches: Vec<&[Tuple]> = tuples.chunks(64).collect();
    let chunks: Vec<Chunk> = batches.iter().map(|b| Chunk::from_tuples(b)).collect();

    let encode_rows = best_rate(n, reps, || {
        let mut buf = Vec::new();
        for b in &batches {
            buf.clear();
            codec::put_u32(&mut buf, b.len() as u32);
            for t in *b {
                codec::put_tuple(&mut buf, t);
            }
            let mut r = Reader::new(&buf);
            let k = r.len().expect("len");
            for _ in 0..k {
                std::hint::black_box(codec::get_tuple(&mut r).expect("tuple"));
            }
        }
    });
    let encode_chunks = best_rate(n, reps, || {
        let mut buf = Vec::new();
        for c in &chunks {
            buf.clear();
            codec::put_chunk(&mut buf, c);
            let mut r = Reader::new(&buf);
            std::hint::black_box(codec::get_chunk(&mut r).expect("chunk"));
        }
    });
    // Routing hash on the join-key column (col 1), reduced to a machine
    // index exactly like `Grouping::Fields` does.
    let route_rows = best_rate(n, reps, || {
        let mut acc = 0usize;
        for t in &tuples {
            let mut h = FxHasher::default();
            t.get(1).hash(&mut h);
            acc ^= partition_of(h.finish(), MACHINES);
        }
        std::hint::black_box(acc);
    });
    let route_chunks = best_rate(n, reps, || {
        let mut acc = 0usize;
        for c in &chunks {
            for h in c.key_hashes(&[1]) {
                acc ^= partition_of(h, MACHINES);
            }
        }
        std::hint::black_box(acc);
    });
    // The bare operator: DBToaster inserts with no runtime around them.
    let operator = best_rate(n, reps, || {
        let mut join = DBToasterJoin::new(spec);
        let mut out = Vec::new();
        for (rel, rel_data) in data.iter().enumerate() {
            for t in rel_data {
                join.insert(rel, t, &mut out);
                out.clear();
            }
        }
        std::hint::black_box(join.stored());
    });
    StageRates { encode_rows, encode_chunks, route_rows, route_chunks, operator }
}

const WINDOWED_SHARDS: [usize; 3] = [1, 2, 4];
const WINDOWED_GROUPS: i64 = 64;
const WINDOWED_WIDTH: u64 = 1024;

/// Critical-path throughput of the sharded windowed aggregation at each
/// shard count, plus the merged outputs for the byte-identity check.
///
/// This host may expose a single core, so wall-clock threading would
/// measure the scheduler, not the sharding. Instead we measure what the
/// sharding actually changes — the **per-shard critical path**: rows are
/// partitioned by group hash exactly like `Grouping::Fields`, each
/// shard's columnar insert + close kernel is timed serially, and the
/// modeled wall-clock is `max(shard elapsed) + merge elapsed` (the merge
/// is the sequential tail a real cluster also pays).
struct WindowedRun {
    shards: usize,
    critical_path_tuples_per_sec: f64,
    merged: Vec<Tuple>,
}

fn windowed_scaling(n: usize, reps: usize) -> Vec<WindowedRun> {
    let mut rng = SplitMix64::new(7);
    let mut ts = 0u64;
    let rows: Vec<Tuple> = (0..n)
        .map(|_| {
            ts += rng.next_range(0, 2) as u64;
            tuple![rng.next_range(0, WINDOWED_GROUPS), ts as i64]
        })
        .collect();
    let bolt = || {
        WindowedAggBolt::new(
            WindowSpec::Tumbling { width: WINDOWED_WIDTH },
            vec![1],
            vec![0],
            vec![AggSpec::count(), AggSpec::sum_col(1)],
            1,
        )
    };

    WINDOWED_SHARDS
        .iter()
        .map(|&s| {
            // Route by group hash, exactly like `Grouping::Fields([0])`.
            let mut parts: Vec<Vec<Tuple>> = vec![Vec::new(); s];
            for t in &rows {
                let mut h = FxHasher::default();
                t.get(0).hash(&mut h);
                parts[partition_of(h.finish(), s)].push(t.clone());
            }
            let chunks: Vec<Vec<Chunk>> =
                parts.iter().map(|p| p.chunks(1024).map(Chunk::from_tuples).collect()).collect();

            let mut best = f64::INFINITY;
            let mut merged = Vec::new();
            for _ in 0..reps.max(2) {
                let mut slowest = 0f64;
                let mut shard_rows: Vec<Vec<Tuple>> = Vec::with_capacity(s);
                for shard_chunks in &chunks {
                    let t0 = Instant::now();
                    let mut agg = bolt();
                    for c in shard_chunks {
                        agg.insert_chunk(c).expect("windowed insert");
                    }
                    let mut out = Vec::new();
                    agg.close_into(u64::MAX, &mut out);
                    slowest = slowest.max(t0.elapsed().as_secs_f64());
                    shard_rows.push(out);
                }
                let t0 = Instant::now();
                let mut merge = WindowMergeBolt::new(s);
                for out in shard_rows {
                    for row in out {
                        merge.push(row).expect("merge push");
                    }
                }
                merged.clear();
                merge.release_below(u64::MAX, &mut merged);
                best = best.min(slowest + t0.elapsed().as_secs_f64());
            }
            WindowedRun {
                shards: s,
                critical_path_tuples_per_sec: n as f64 / best.max(1e-9),
                merged,
            }
        })
        .collect()
}

/// Optimizer-stage verdict: wall-clock for the written order vs the
/// cost-chosen plan on a skewed 4-way join.
struct OptStage {
    written_ms: f64,
    best_ms: f64,
    speedup: f64,
    results: u64,
    chosen_order: Vec<String>,
    est_cost_written: f64,
    est_cost_best: f64,
    n_big: usize,
}

/// Skewed 4-way join written in the pessimal FROM order `big1, big2,
/// guard1, guard2`: the arrival-driven traditional join then expands the
/// zipf-skewed `big1.j = big2.j` edge first, enumerating every skew pair
/// before the guards can reject it. Each guard references *both* big
/// relations (`big1.s = guard1.a`, `big2.t = guard1.b`), so once the
/// cost-based search moves a guard to the front of the probe cascade,
/// tuples from either big relation die in one selective lookup before
/// the explosive edge is touched.
fn optimizer_stage(n_big: usize, reps: usize) -> OptStage {
    const DOM_J: usize = 512; // zipf domain of the explosive join key
    const DOM_S: i64 = 100_000; // sparse guard-key domain
    const N_GUARD: usize = 512;
    const PLANTED: usize = 16; // hand-planted full matches so COUNT(*) > 0
    let mut rng = SplitMix64::new(7);
    let zipf = Zipf::new(DOM_J, 1.0);
    let big = |rng: &mut SplitMix64, zipf: &Zipf| -> Vec<Tuple> {
        (0..n_big)
            .map(|_| {
                tuple![zipf.sample(rng) as i64, rng.next_range(0, DOM_S), rng.next_range(0, DOM_S)]
            })
            .collect()
    };
    let mut b1 = big(&mut rng, &zipf);
    let mut b2 = big(&mut rng, &zipf);
    let guard = |rng: &mut SplitMix64| -> Vec<Tuple> {
        (0..N_GUARD).map(|_| tuple![rng.next_range(0, DOM_S), rng.next_range(0, DOM_S)]).collect()
    };
    let mut g1 = guard(&mut rng);
    let mut g2 = guard(&mut rng);
    for _ in 0..PLANTED {
        let j = zipf.sample(&mut rng) as i64;
        let (s, u) = (rng.next_range(0, DOM_S), rng.next_range(0, DOM_S));
        let (t, w) = (rng.next_range(0, DOM_S), rng.next_range(0, DOM_S));
        b1.push(tuple![j, s, u]);
        b2.push(tuple![j, t, w]);
        g1.push(tuple![s, t]);
        g2.push(tuple![u, w]);
    }

    let b1_schema = Schema::of(&[("j", DataType::Int), ("s", DataType::Int), ("u", DataType::Int)]);
    let b2_schema = Schema::of(&[("j", DataType::Int), ("t", DataType::Int), ("w", DataType::Int)]);
    let guard_schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]);
    let mut catalog = Catalog::new();
    catalog.register("big1", b1_schema, b1).expect("register big1");
    catalog.register("big2", b2_schema, b2).expect("register big2");
    catalog.register("guard1", guard_schema.clone(), g1).expect("register guard1");
    catalog.register("guard2", guard_schema, g2).expect("register guard2");
    for t in ["big1", "big2", "guard1", "guard2"] {
        catalog.analyze(t, 10_000, 7).expect("analyze");
    }

    let q = Query::from_tables([
        ("big1", "big1"),
        ("big2", "big2"),
        ("guard1", "guard1"),
        ("guard2", "guard2"),
    ])
    .filter(col("big1.j").eq(col("big2.j")))
    .filter(col("big1.s").eq(col("guard1.a")))
    .filter(col("big2.t").eq(col("guard1.b")))
    .filter(col("big1.u").eq(col("guard2.a")))
    .filter(col("big2.w").eq(col("guard2.b")))
    .select([count()]);

    let cfg_for = |mode: OptimizerMode| -> ExecConfig {
        ExecConfig {
            machines: MACHINES,
            local: LocalJoinKind::Traditional,
            optimizer: mode,
            ..ExecConfig::default()
        }
    };

    // The decision itself (for the report): order names + estimated costs.
    let mut plan = PhysicalQuery::plan(&q, &catalog).expect("plan");
    optimize(&mut plan, &catalog, &cfg_for(OptimizerMode::On)).expect("optimize");
    let decision = plan.decision().expect("optimizer on records a decision");
    let chosen_order: Vec<String> = decision.steps.iter().map(|s| s.relation.clone()).collect();
    let (est_cost_best, est_cost_written) = (decision.est_cost, decision.written_cost);

    let time_mode = |mode: OptimizerMode| -> (f64, u64) {
        let mut best = f64::MAX;
        let mut results = 0u64;
        for _ in 0..reps {
            let t0 = Instant::now();
            let mut rs = execute_query(&q, &catalog, &cfg_for(mode)).expect("run");
            let rows = rs.rows().to_vec();
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            results = match rows[0].values()[0] {
                squall_common::Value::Int(c) => c as u64,
                ref v => panic!("COUNT(*) returned {v:?}"),
            };
        }
        (best, results)
    };
    let (written_ms, written_results) = time_mode(OptimizerMode::Off);
    let (best_ms, best_results) = time_mode(OptimizerMode::On);
    assert_eq!(
        written_results, best_results,
        "optimizer changed the answer: written {written_results} vs best {best_results}"
    );

    OptStage {
        written_ms,
        best_ms,
        speedup: written_ms / best_ms,
        results: best_results,
        chosen_order,
        est_cost_written,
        est_cost_best,
        n_big,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let min_windowed_speedup: Option<f64> = args
        .iter()
        .position(|a| a == "--min-windowed-speedup")
        .map(|i| args[i + 1].parse().expect("--min-windowed-speedup takes a float"));
    let min_optimizer_speedup: Option<f64> = args
        .iter()
        .position(|a| a == "--min-optimizer-speedup")
        .map(|i| args[i + 1].parse().expect("--min-optimizer-speedup takes a float"));
    // Sparse join keys (dom ≫ n): the run is dominated by the data plane
    // (routing, queues, scheduling) rather than by join products, which is
    // exactly what the batching knob optimizes.
    let (n, dom, reps) = if smoke { (20_000, 400_000, 1) } else { (50_000, 1_000_000, 3) };
    let spec = rst_spec(n as u64);
    let data = rst_data(n, dom, 42);
    let input_tuples = 3 * n;

    // Warm caches / allocator before timing.
    let _ = measure(&spec, &data, 64, 1);

    let runs: Vec<Run> = BATCH_SIZES.iter().map(|&b| measure(&spec, &data, b, reps)).collect();
    let counts: Vec<u64> = runs.iter().map(|r| r.results).collect();
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "batch size changed the join result: {counts:?}"
    );

    let base = runs[0].tuples_per_sec;
    let mut json = String::from("{\n");
    json.push_str(
        "  \"benchmark\": \"3-way hypercube join R(x,y) \\u22c8 S(y,z) \\u22c8 T(z,t), \
         Hybrid-Hypercube, DBToaster locals, count-only\",\n",
    );
    json.push_str(&format!("  \"mode\": \"{}\",\n", if smoke { "smoke" } else { "full" }));
    json.push_str(&format!("  \"machines\": {MACHINES},\n"));
    json.push_str(&format!("  \"input_tuples\": {input_tuples},\n"));
    json.push_str(&format!("  \"join_results\": {},\n", counts[0]));
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"batch_size\": {}, \"elapsed_ms\": {:.3}, \"tuples_per_sec\": {:.0}}}{}\n",
            r.batch_size,
            r.elapsed.as_secs_f64() * 1e3,
            r.tuples_per_sec,
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"speedup_batch64_vs_1\": {:.2},\n", runs[1].tuples_per_sec / base));
    json.push_str(&format!(
        "  \"speedup_batch1024_vs_1\": {:.2},\n",
        runs[2].tuples_per_sec / base
    ));

    let st = stage_rates(&data, &spec, reps.max(2));
    json.push_str("  \"stages\": {\n");
    json.push_str(&format!("    \"encode_row_codec_tuples_per_sec\": {:.0},\n", st.encode_rows));
    json.push_str(&format!(
        "    \"encode_chunk_codec_tuples_per_sec\": {:.0},\n",
        st.encode_chunks
    ));
    json.push_str(&format!("    \"route_hash_row_tuples_per_sec\": {:.0},\n", st.route_rows));
    json.push_str(&format!("    \"route_hash_chunk_tuples_per_sec\": {:.0},\n", st.route_chunks));
    json.push_str(&format!(
        "    \"operator_dbtoaster_insert_tuples_per_sec\": {:.0}\n",
        st.operator
    ));
    json.push_str("  },\n");

    // Cost-based plan search: written (pessimal) order vs the best-found
    // plan on the skewed 4-way chain.
    let opt = optimizer_stage(if smoke { 6_000 } else { 16_000 }, reps);
    json.push_str("  \"optimizer\": {\n");
    json.push_str(&format!(
        "    \"workload\": \"skewed 4-way join big1 \\u22c8 big2 on a zipf(1.0) key with two \
         selective guards referencing both big relations, {} rows per big relation, \
         traditional locals, COUNT(*)\",\n",
        opt.n_big
    ));
    json.push_str(&format!("    \"join_results\": {},\n", opt.results));
    json.push_str(&format!("    \"written_order_ms\": {:.3},\n", opt.written_ms));
    json.push_str(&format!("    \"best_found_ms\": {:.3},\n", opt.best_ms));
    json.push_str(&format!(
        "    \"chosen_order\": [{}],\n",
        opt.chosen_order.iter().map(|r| format!("\"{r}\"")).collect::<Vec<_>>().join(", ")
    ));
    json.push_str(&format!("    \"est_cost_written\": {:.0},\n", opt.est_cost_written));
    json.push_str(&format!("    \"est_cost_best\": {:.0},\n", opt.est_cost_best));
    json.push_str(&format!("    \"speedup_best_vs_written\": {:.2}\n", opt.speedup));
    json.push_str("  },\n");

    // Sharded windowed aggregation: group-hash shards + ordered merge.
    let wn = if smoke { 200_000 } else { 1_000_000 };
    let wruns = windowed_scaling(wn, reps);
    for r in &wruns {
        assert_eq!(
            r.merged, wruns[0].merged,
            "{}-shard merged output diverged from 1 shard",
            r.shards
        );
    }
    let wspeedup = wruns[2].critical_path_tuples_per_sec / wruns[0].critical_path_tuples_per_sec;
    json.push_str("  \"windowed_scaling\": {\n");
    json.push_str(&format!(
        "    \"workload\": \"tumbling {WINDOWED_WIDTH} on ts, {WINDOWED_GROUPS} groups, \
         COUNT + SUM, {wn} rows\",\n"
    ));
    json.push_str(
        "    \"metric\": \"critical path: max per-shard columnar insert+close time plus the \
         k-way merge (single-core host, so per-shard work, not wall-clock threading)\",\n",
    );
    json.push_str("    \"shards\": [\n");
    for (i, r) in wruns.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"shards\": {}, \"critical_path_tuples_per_sec\": {:.0}}}{}\n",
            r.shards,
            r.critical_path_tuples_per_sec,
            if i + 1 < wruns.len() { "," } else { "" },
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!("    \"speedup_4_shards_vs_1\": {wspeedup:.2}\n"));
    json.push_str("  }\n}\n");

    std::fs::write("BENCH_runtime.json", &json).expect("write BENCH_runtime.json");
    println!("{json}");
    for r in &runs {
        eprintln!(
            "batch {:>5}: {:>10.0} tuples/s ({:.1} ms)",
            r.batch_size,
            r.tuples_per_sec,
            r.elapsed.as_secs_f64() * 1e3
        );
    }
    eprintln!(
        "stages: encode row {:.2} M/s vs chunk {:.2} M/s; route row {:.2} M/s vs chunk \
         {:.2} M/s; operator {:.2} M/s",
        st.encode_rows / 1e6,
        st.encode_chunks / 1e6,
        st.route_rows / 1e6,
        st.route_chunks / 1e6,
        st.operator / 1e6,
    );
    let speedup = runs[1].tuples_per_sec / base;
    if !smoke && speedup < 2.0 {
        eprintln!("WARNING: batch=64 speedup {speedup:.2}x is below the 2x target");
    }
    eprintln!(
        "windowed scaling: {} → {wspeedup:.2}x critical-path speedup at 4 shards vs 1",
        wruns
            .iter()
            .map(|r| format!(
                "{} shard(s) {:.2} M/s",
                r.shards,
                r.critical_path_tuples_per_sec / 1e6
            ))
            .collect::<Vec<_>>()
            .join(", "),
    );
    eprintln!(
        "optimizer: written order {:.1} ms vs best-found ({}) {:.1} ms — {:.2}x \
         (est cost {:.0} vs {:.0})",
        opt.written_ms,
        opt.chosen_order.join(" ⋈ "),
        opt.best_ms,
        opt.speedup,
        opt.est_cost_written,
        opt.est_cost_best,
    );
    if let Some(min) = min_windowed_speedup {
        if wspeedup < min {
            eprintln!("FAIL: windowed 4-shard speedup {wspeedup:.2}x < required {min:.2}x");
            std::process::exit(1);
        }
    }
    if let Some(min) = min_optimizer_speedup {
        if opt.speedup < min {
            eprintln!("FAIL: optimizer speedup {:.2}x < required {min:.2}x", opt.speedup);
            std::process::exit(1);
        }
    }
}
