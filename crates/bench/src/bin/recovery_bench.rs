//! `recovery_bench` — what fault tolerance costs and what recovery takes.
//!
//! Two numbers, written to `BENCH_recovery.json`:
//!
//! 1. **Checkpoint overhead**: the same standing-view append workload
//!    (3-way join + GROUP BY, snapshot per batch) with checkpointing
//!    off, at the default interval (16 epochs) and at an aggressive one
//!    (4 epochs); min-of-reps wall time each, overhead relative to off.
//!    The smoke run asserts the default interval stays within 15%.
//! 2. **Recovery time**: a clustered view over loopback workers is torn
//!    down and re-admitted onto a fresh worker set via
//!    [`squall::ViewHandle::recover`] — checkpoint restore plus replay —
//!    and the first post-recovery snapshot must equal the no-failure
//!    recompute, so the benchmark doubles as a correctness smoke test.
//!
//! ```text
//! cargo run --release -p squall-bench --bin recovery_bench            # full
//! cargo run --release -p squall-bench --bin recovery_bench -- --smoke # CI
//! ```

use std::time::{Duration, Instant};

use squall::engine::cluster::serve_job;
use squall::Session;
use squall_common::{tuple, DataType, Schema, SplitMix64, Tuple};

const VIEW_SQL: &str = "SELECT R.a, COUNT(*) FROM R, S, T \
                        WHERE R.b = S.b AND S.c = T.c GROUP BY R.a";

fn gen_rows(rng: &mut SplitMix64, n: usize, dom: i64) -> Vec<Tuple> {
    (0..n).map(|_| tuple![rng.next_range(0, dom), rng.next_range(0, dom)]).collect()
}

fn register_base(s: &mut Session, init: usize, dom: i64, seed: u64) {
    let mut rng = SplitMix64::new(seed);
    for (name, cols) in [("R", ("a", "b")), ("S", ("b", "c")), ("T", ("c", "d"))] {
        s.register(
            name,
            Schema::of(&[(cols.0, DataType::Int), (cols.1, DataType::Int)]),
            gen_rows(&mut rng, init, dom),
        )
        .expect("register relation");
    }
}

/// Per-batch appends, identical across every config under comparison.
fn batches(n_batches: usize, batch: usize, dom: i64, seed: u64) -> Vec<[Vec<Tuple>; 3]> {
    let mut rng = SplitMix64::new(seed ^ 0xfeed);
    (0..n_batches)
        .map(|_| {
            [
                gen_rows(&mut rng, batch, dom),
                gen_rows(&mut rng, batch, dom),
                gen_rows(&mut rng, batch, dom),
            ]
        })
        .collect()
}

/// One workload run at a given checkpoint interval: resident view, all
/// batches applied with a consistent snapshot each, total wall time.
/// Returns (elapsed, completed checkpoints, final rows).
fn run_workload(
    machines: usize,
    init: usize,
    dom: i64,
    seed: u64,
    interval: u64,
    work: &[[Vec<Tuple>; 3]],
) -> (Duration, u64, Vec<Tuple>) {
    let mut s =
        Session::builder().machines(machines).seed(seed).checkpoint_interval(interval).build();
    register_base(&mut s, init, dom, seed);
    let view = s
        .sql(&format!("CREATE MATERIALIZED VIEW v AS {VIEW_SQL}"))
        .map(|_| s.view("v").expect("just created"))
        .expect("create view");
    let start = Instant::now();
    let mut final_rows = Vec::new();
    for batch in work {
        for (name, rows) in ["R", "S", "T"].iter().zip(batch) {
            s.append(name, rows.clone()).expect("append batch");
        }
        final_rows = view.snapshot().expect("consistent snapshot");
    }
    let elapsed = start.elapsed();
    let report = s.drop_view("v").expect("drop view");
    let checkpoints = report.maintenance.expect("standing report").checkpoints;
    (elapsed, checkpoints, final_rows)
}

/// In-process loopback workers: each thread serves jobs until its
/// listener's current job ends (errors included — a torn-down run is
/// normal here).
fn loopback_workers(n: usize) -> Vec<String> {
    (0..n)
        .map(|_| {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            let addr = listener.local_addr().expect("local addr").to_string();
            std::thread::spawn(move || {
                let _ = serve_job(&listener);
            });
            addr
        })
        .collect()
}

/// Clustered view → mutate → recover onto a fresh worker set → first
/// snapshot. Returns (recover call ms, first snapshot ms).
fn run_recovery(machines: usize, init: usize, dom: i64, seed: u64, batch: usize) -> (f64, f64) {
    let addrs = loopback_workers(2);
    let mut s = Session::builder()
        .machines(machines)
        .seed(seed)
        .cluster(addrs)
        .checkpoint_interval(2)
        .build();
    register_base(&mut s, init, dom, seed);
    let view = s
        .sql(&format!("CREATE MATERIALIZED VIEW v AS {VIEW_SQL}"))
        .map(|_| s.view("v").expect("just created"))
        .expect("create view");
    let mut rng = SplitMix64::new(seed ^ 0xdead);
    for _ in 0..3 {
        for name in ["R", "S", "T"] {
            s.append(name, gen_rows(&mut rng, batch, dom)).expect("append");
        }
    }
    let before = view.snapshot().expect("pre-recovery snapshot");

    let t0 = Instant::now();
    view.recover(loopback_workers(2)).expect("recover onto fresh workers");
    let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let after = view.snapshot().expect("post-recovery snapshot");
    let snapshot_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert_eq!(before, after, "recovery must reproduce the exact pre-failure view");
    s.drop_view("v").expect("drop view");
    (recover_ms, snapshot_ms)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (machines, init, dom, n_batches, batch, reps) =
        if smoke { (4, 2_000, 1_000, 12, 100, 3) } else { (4, 10_000, 5_000, 32, 200, 5) };
    let work = batches(n_batches, batch, dom, 7);

    // --- Section 1: checkpoint overhead ------------------------------
    let intervals: [u64; 3] = [0, 16, 4];
    let mut best: Vec<(u64, f64, u64)> = Vec::new(); // (interval, best ms, checkpoints)
    let mut oracle: Option<Vec<Tuple>> = None;
    for &interval in &intervals {
        let mut best_ms = f64::INFINITY;
        let mut checkpoints = 0;
        for _ in 0..reps {
            let (elapsed, cps, rows) = run_workload(machines, init, dom, 7, interval, &work);
            best_ms = best_ms.min(elapsed.as_secs_f64() * 1e3);
            checkpoints = cps;
            match &oracle {
                None => oracle = Some(rows),
                Some(o) => assert_eq!(o, &rows, "interval {interval} changed the view contents"),
            }
        }
        eprintln!("interval {interval}: best {best_ms:.1} ms, {checkpoints} checkpoints");
        best.push((interval, best_ms, checkpoints));
    }
    let baseline = best[0].1;
    let overhead = |ms: f64| -> f64 {
        if baseline > 0.0 {
            (ms / baseline - 1.0) * 100.0
        } else {
            0.0
        }
    };

    // --- Section 2: recovery time ------------------------------------
    let (recover_ms, post_snapshot_ms) = run_recovery(machines, init / 4, dom, 7, batch);
    eprintln!(
        "recover(): {recover_ms:.1} ms, first post-recovery snapshot {post_snapshot_ms:.1} ms"
    );

    let mut json = String::from("{\n");
    json.push_str(
        "  \"benchmark\": \"checkpoint overhead (standing 3-way join + GROUP BY workload \
         at checkpoint intervals 0/16/4) and recovery time (restore + replay onto a fresh \
         loopback worker set)\",\n",
    );
    json.push_str(&format!("  \"mode\": \"{}\",\n", if smoke { "smoke" } else { "full" }));
    json.push_str(&format!("  \"machines\": {machines},\n"));
    json.push_str(&format!("  \"initial_rows_per_relation\": {init},\n"));
    json.push_str(&format!("  \"batches\": {n_batches},\n"));
    json.push_str(&format!("  \"appends_per_batch\": {},\n", 3 * batch));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, (interval, ms, cps)) in best.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"config\": \"interval-{interval}\", \"best_total_ms\": {ms:.3}, \
             \"checkpoints\": {cps}, \"overhead_pct\": {:.2}}}{}\n",
            overhead(*ms),
            if i + 1 < best.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"recover_ms\": {recover_ms:.3},\n"));
    json.push_str(&format!("  \"post_recovery_snapshot_ms\": {post_snapshot_ms:.3}\n"));
    json.push_str("}\n");

    std::fs::write("BENCH_recovery.json", &json).expect("write BENCH_recovery.json");
    println!("{json}");

    let default_overhead = overhead(best[1].1);
    assert!(best[1].2 >= 1, "default interval never checkpointed — degenerate benchmark");
    if smoke {
        assert!(
            default_overhead <= 15.0,
            "default checkpoint interval costs {default_overhead:.1}% (budget: 15%)"
        );
    }
}
