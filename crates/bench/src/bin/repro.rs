//! `repro` — regenerate every table and figure of the paper at laptop
//! scale and print them as markdown.
//!
//! ```text
//! cargo run --release -p squall-bench --bin repro            # everything
//! cargo run --release -p squall-bench --bin repro -- f7      # one artifact
//! ```
//!
//! Artifacts: e0, f5, f6, f7 (includes t1/t2 columns), f8, a1–a4.

use squall_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |k: &str| args.is_empty() || args.iter().any(|a| a == k);
    let mut out = String::new();

    if want("e0") {
        out.push_str(&render(
            "E0 — §3.1 worked example: R ⋈ S ⋈ T, 64 machines (paper: 0.26H/0.75H/0.69H/0.36H; totals 17H/48H/23H)",
            &e0_worked_example(),
        ));
    }
    if want("f5") {
        out.push_str(&render(
            "Figure 5 — bottleneck decomposition, CUSTOMER ⋈ ORDERS (paper: sel(int) 1.6%, sel(date) ~16%, network ~60%, join ~14%)",
            &fig5_bottleneck(40.0, 8),
        ));
    }
    if want("f6") {
        out.push_str(&render(
            "Figure 6 — 3-Reachability: multi-way vs pipeline of 2-way joins (paper: multi-way 1.43x faster, 132.6M vs 160.6M tuples)",
            &fig6_reachability(1500, 10_000, 9),
        ));
    }
    if want("f7") || want("t1") || want("t2") {
        for (title, rows) in fig7_all(0.5, 1.5) {
            out.push_str(&render(
                &format!("Figure 7 / Tables 1–2 — {title} (paper: Hybrid wins 1.6–11.6x; Hash OOMs on the big skewed config)"),
                &rows,
            ));
        }
    }
    if want("f8") {
        for (title, rows) in fig8_all(2.0) {
            out.push_str(&render(
                &format!("{title} (paper: DBToaster ~10x on TPC-H, 3–4x on TaskCount)"),
                &rows,
            ));
        }
    }
    if want("a1") {
        out.push_str(&render(
            "Ablation A1 — §5 hash-imperfection skew (d ≈ p)",
            &abl_hash_imperfection(),
        ));
    }
    if want("a2") {
        out.push_str(&render(
            "Ablation A2 — §5 temporal skew (sorted arrival)",
            &abl_temporal_skew(),
        ));
    }
    if want("a3") {
        out.push_str(&render("Ablation A3 — Adaptive 1-Bucket under drift [32]", &abl_adaptive()));
    }
    if want("a4") {
        out.push_str(&render(
            "Ablation A4 — band-join schemes under join product skew (§3.1)",
            &abl_band_schemes(),
        ));
    }
    println!("{out}");
}
