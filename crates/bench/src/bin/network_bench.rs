//! `network_bench` — measure the TCP transport against the in-process
//! data plane on the 3-way hypercube join.
//!
//! Runs R(x,y) ⋈ S(y,z) ⋈ T(z,t) (the §3.1 worked-example shape,
//! count-only, Hybrid-Hypercube, DBToaster locals) three ways — all-local,
//! split across 1 worker, split across 2 workers over loopback TCP — and
//! writes `BENCH_network.json` with tuples/s, the relative throughput and
//! the wire traffic. Results and per-machine loads are asserted identical
//! across all three, so the benchmark doubles as a cluster smoke test.
//!
//! Each TCP run also reports `wire_bytes_per_input_tuple` — the columnar
//! frame encoding's footprint per tuple shipped — and `--min-rel2 <f>`
//! turns the 2-worker relative throughput into a CI gate: the process
//! exits non-zero if `tcp-2-workers` falls below `f × local`.
//!
//! ```text
//! cargo run --release -p squall-bench --bin network_bench            # full
//! cargo run --release -p squall-bench --bin network_bench -- --smoke # CI
//! cargo run --release -p squall-bench --bin network_bench -- --smoke --min-rel2 0.70
//! ```

use std::net::TcpListener;
use std::time::Duration;

use squall_common::{tuple, DataType, Schema, SplitMix64, Tuple};
use squall_core::cluster::{serve_job, ClusterSpec};
use squall_core::driver::{run_multiway, JoinReport, LocalJoinKind, MultiwayConfig};
use squall_expr::{JoinAtom, MultiJoinSpec, RelationDef};
use squall_partition::optimizer::SchemeKind;

const MACHINES: usize = 16;

fn rst_spec(n: u64) -> MultiJoinSpec {
    MultiJoinSpec::new(
        vec![
            RelationDef::new("R", Schema::of(&[("x", DataType::Int), ("y", DataType::Int)]), n),
            RelationDef::new("S", Schema::of(&[("y", DataType::Int), ("z", DataType::Int)]), n),
            RelationDef::new("T", Schema::of(&[("z", DataType::Int), ("t", DataType::Int)]), n),
        ],
        vec![JoinAtom::eq(0, 1, 1, 0), JoinAtom::eq(1, 1, 2, 0)],
    )
    .expect("static spec")
}

fn rst_data(n: usize, dom: i64, seed: u64) -> Vec<Vec<Tuple>> {
    let mut rng = SplitMix64::new(seed);
    (0..3)
        .map(|_| (0..n).map(|_| tuple![rng.next_range(0, dom), rng.next_range(0, dom)]).collect())
        .collect()
}

fn spawn_workers(n: usize) -> (ClusterSpec, Vec<std::thread::JoinHandle<()>>) {
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for _ in 0..n {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind worker");
        addrs.push(listener.local_addr().expect("addr").to_string());
        handles.push(std::thread::spawn(move || serve_job(&listener).expect("worker job")));
    }
    (ClusterSpec::new(addrs), handles)
}

struct Run {
    label: &'static str,
    workers: usize,
    elapsed: Duration,
    report: JoinReport,
    tuples_per_sec: f64,
}

fn measure(
    spec: &MultiJoinSpec,
    data: &[Vec<Tuple>],
    label: &'static str,
    workers: usize,
    reps: usize,
) -> Run {
    let mut best: Option<Run> = None;
    for _ in 0..reps {
        let mut cfg = MultiwayConfig::new(SchemeKind::Hybrid, LocalJoinKind::DBToaster, MACHINES)
            .count_only();
        let handles = if workers > 0 {
            let (cluster, handles) = spawn_workers(workers);
            cfg.cluster = Some(cluster);
            handles
        } else {
            Vec::new()
        };
        let report = run_multiway(spec, data.to_vec(), &cfg).expect("bench join");
        for h in handles {
            h.join().expect("worker thread");
        }
        assert!(report.error.is_none(), "bench run failed: {:?}", report.error);
        let secs = report.elapsed.as_secs_f64().max(1e-9);
        let run = Run {
            label,
            workers,
            elapsed: report.elapsed,
            tuples_per_sec: report.input_count as f64 / secs,
            report,
        };
        best = match best {
            Some(b) if b.tuples_per_sec >= run.tuples_per_sec => Some(b),
            _ => Some(run),
        };
    }
    best.expect("reps > 0")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let min_rel2: Option<f64> = args
        .iter()
        .position(|a| a == "--min-rel2")
        .map(|i| args.get(i + 1).expect("--min-rel2 needs a value").parse().expect("float"));
    let (n, dom, reps) = if smoke { (15_000, 300_000, 1) } else { (50_000, 1_000_000, 3) };
    let spec = rst_spec(n as u64);
    let data = rst_data(n, dom, 42);

    // Warm caches / allocator before timing.
    let _ = measure(&spec, &data, "warmup", 0, 1);

    let runs = vec![
        measure(&spec, &data, "local", 0, reps),
        measure(&spec, &data, "tcp-1-worker", 1, reps),
        measure(&spec, &data, "tcp-2-workers", 2, reps),
    ];

    // Correctness gate: the wire must not change the join.
    for r in &runs[1..] {
        assert_eq!(r.report.result_count, runs[0].report.result_count, "{}", r.label);
        assert_eq!(r.report.loads, runs[0].report.loads, "{}: loads differ", r.label);
    }

    let base = runs[0].tuples_per_sec;
    let mut json = String::from("{\n");
    json.push_str(
        "  \"benchmark\": \"3-way hypercube join, Hybrid-Hypercube, DBToaster locals, \
         count-only: in-process data plane vs TCP transport over loopback\",\n",
    );
    json.push_str(&format!("  \"mode\": \"{}\",\n", if smoke { "smoke" } else { "full" }));
    json.push_str(&format!("  \"machines\": {MACHINES},\n"));
    json.push_str(&format!("  \"input_tuples\": {},\n", 3 * n));
    json.push_str(&format!("  \"join_results\": {},\n", runs[0].report.result_count));
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let (bytes, batches) = match &r.report.transport {
            Some(t) => (t.total_bytes_sent() + t.total_bytes_received(), t.total_batches_sent()),
            None => (0, 0),
        };
        json.push_str(&format!(
            "    {{\"config\": \"{}\", \"processes\": {}, \"elapsed_ms\": {:.3}, \
             \"tuples_per_sec\": {:.0}, \"relative_throughput\": {:.3}, \
             \"wire_bytes\": {bytes}, \"wire_batches\": {batches}, \
             \"wire_bytes_per_input_tuple\": {:.1}}}{}\n",
            r.label,
            r.workers + 1,
            r.elapsed.as_secs_f64() * 1e3,
            r.tuples_per_sec,
            r.tuples_per_sec / base,
            bytes as f64 / (3 * n) as f64,
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_network.json", &json).expect("write BENCH_network.json");
    println!("{json}");
    for r in &runs {
        eprintln!(
            "{:>14}: {:>10.0} tuples/s ({:.1} ms){}",
            r.label,
            r.tuples_per_sec,
            r.elapsed.as_secs_f64() * 1e3,
            match &r.report.transport {
                Some(t) => format!(
                    ", {:.1} MiB on the wire ({:.1} B/tuple)",
                    (t.total_bytes_sent() + t.total_bytes_received()) as f64 / (1 << 20) as f64,
                    (t.total_bytes_sent() + t.total_bytes_received()) as f64 / (3 * n) as f64
                ),
                None => String::new(),
            }
        );
    }
    if let Some(floor) = min_rel2 {
        let rel2 = runs[2].tuples_per_sec / base;
        if rel2 < floor {
            eprintln!("FAIL: tcp-2-workers relative throughput {rel2:.3} < floor {floor:.3}");
            std::process::exit(1);
        }
        eprintln!("gate: tcp-2-workers relative throughput {rel2:.3} >= floor {floor:.3}");
    }
}
