//! The experiments, one function per paper artifact.

use std::time::{Duration, Instant};

use squall_common::{Tuple, Value};
use squall_core::adaptive_sim;
use squall_core::driver::{run_multiway, LocalJoinKind, MultiwayConfig};
use squall_core::pipeline::run_pipeline;
use squall_data::queries::{self, QueryInstance};
use squall_data::tpch::TpchGen;
use squall_data::webgraph::WebGraphGen;
use squall_data::{crawlcontent, google_cluster, streams};
use squall_partition::ewh::{output_per_machine, EwhScheme};
use squall_partition::grid::RangeCond;
use squall_partition::hypercube::{Dimension, HypercubeScheme, PartitionKind};
use squall_partition::keymap::{hash_assignment_max_keys, KeyMapGrouping};
use squall_partition::mbucket::MBucketScheme;
use squall_partition::onebucket::one_bucket;
use squall_partition::optimizer::SchemeKind;
use squall_partition::temporal::mean_active_machines;
use squall_runtime::{Grouping, TopologyBuilder};

/// One printable result row.
#[derive(Debug, Clone)]
pub struct Row {
    pub label: String,
    pub values: Vec<(String, String)>,
}

impl Row {
    pub fn new(label: impl Into<String>) -> Row {
        Row { label: label.into(), values: Vec::new() }
    }

    pub fn add(mut self, key: &str, value: impl std::fmt::Display) -> Row {
        self.values.push((key.to_string(), value.to_string()));
        self
    }
}

/// Render rows as a markdown table.
pub fn render(title: &str, rows: &[Row]) -> String {
    let mut s = format!("\n## {title}\n\n");
    if rows.is_empty() {
        return s;
    }
    let cols: Vec<&str> = rows[0].values.iter().map(|(k, _)| k.as_str()).collect();
    s.push_str(&format!("| | {} |\n", cols.join(" | ")));
    s.push_str(&format!("|---|{}\n", "---|".repeat(cols.len())));
    for r in rows {
        let vals: Vec<&str> = r.values.iter().map(|(_, v)| v.as_str()).collect();
        s.push_str(&format!("| {} | {} |\n", r.label, vals.join(" | ")));
    }
    s
}

fn ms(d: Duration) -> String {
    format!("{:.1}ms", d.as_secs_f64() * 1e3)
}

// ---------------------------------------------------------------------------
// E0 — §3.1 worked example (analytic).
// ---------------------------------------------------------------------------

/// The §3.1 R(x,y) ⋈ S(y,z) ⋈ T(z,t) example on 64 machines: analytic
/// maximum and total load per scheme, uniform and skewed (z zipf(2),
/// top-key share 1/2 as the paper assumes).
pub fn e0_worked_example() -> Vec<Row> {
    let hash = HypercubeScheme::new(
        3,
        vec![
            Dimension {
                name: "y".into(),
                size: 8,
                kind: PartitionKind::Hash,
                members: vec![(0, 1), (1, 0)],
            },
            Dimension {
                name: "z".into(),
                size: 8,
                kind: PartitionKind::Hash,
                members: vec![(1, 1), (2, 0)],
            },
        ],
        7,
    );
    let random = HypercubeScheme::new(
        3,
        vec![
            Dimension {
                name: "~R".into(),
                size: 4,
                kind: PartitionKind::Random,
                members: vec![(0, 0)],
            },
            Dimension {
                name: "~S".into(),
                size: 4,
                kind: PartitionKind::Random,
                members: vec![(1, 0)],
            },
            Dimension {
                name: "~T".into(),
                size: 4,
                kind: PartitionKind::Random,
                members: vec![(2, 0)],
            },
        ],
        7,
    );
    let hybrid = HypercubeScheme::new(
        3,
        vec![
            Dimension {
                name: "y".into(),
                size: 9,
                kind: PartitionKind::Hash,
                members: vec![(0, 1), (1, 0)],
            },
            Dimension {
                name: "z''".into(),
                size: 7,
                kind: PartitionKind::Random,
                members: vec![(2, 0)],
            },
        ],
        7,
    );
    let sizes = [1.0, 1.0, 1.0];
    let uniform = |_: usize, _: usize| 0.0;
    let skewed = |rel: usize, col: usize| {
        if (rel, col) == (1, 1) || (rel, col) == (2, 0) {
            0.5
        } else {
            0.0
        }
    };
    [
        ("Hash-Hypercube 8x8", &hash),
        ("Random-Hypercube 4x4x4", &random),
        ("Hybrid-Hypercube 9x7", &hybrid),
    ]
    .into_iter()
    .map(|(name, s)| {
        Row::new(name)
            .add("L uniform (H)", format!("{:.3}", s.max_load(&sizes, &uniform)))
            .add("L skewed (H)", format!("{:.3}", s.max_load(&sizes, &skewed)))
            .add("total load (H)", format!("{:.0}", s.total_load(&sizes)))
    })
    .collect()
}

// ---------------------------------------------------------------------------
// Figure 5 — bottleneck decomposition over CUSTOMER ⋈ ORDERS.
// ---------------------------------------------------------------------------

/// Figure 5: run CUSTOMER ⋈ ORDERS in stages, adding one element at a time
/// (read / +sel(int) / +sel(date) / +network / full join). `scale_units`
/// sizes the TPC-H generator (1.0 = 6000 lineitems).
pub fn fig5_bottleneck(scale_units: f64, join_tasks: usize) -> Vec<Row> {
    use squall_common::DataType;
    use squall_expr::{BinOp, ScalarExpr};

    let data = TpchGen::new(scale_units, 0.0, 42).generate();
    let customers = std::sync::Arc::new(data.customer.clone());
    let orders = std::sync::Arc::new(data.orders.clone());

    // A counting sink bolt.
    fn sink() -> Box<dyn squall_runtime::Bolt> {
        Box::new(squall_runtime::FnBolt(
            |_o, _t: Tuple, _out: &mut squall_runtime::OutputCollector| Ok(()),
        ))
    }
    let spouts = |b: &mut TopologyBuilder,
                  customers: &std::sync::Arc<Vec<Tuple>>,
                  orders: &std::sync::Arc<Vec<Tuple>>| {
        let c = {
            let d = std::sync::Arc::clone(customers);
            b.add_spout("customer", 1, move |t| {
                Box::new(squall_runtime::IterSpoutVec::strided(std::sync::Arc::clone(&d), t, 1))
            })
        };
        let o = {
            let d = std::sync::Arc::clone(orders);
            b.add_spout("orders", 1, move |t| {
                Box::new(squall_runtime::IterSpoutVec::strided(std::sync::Arc::clone(&d), t, 1))
            })
        };
        (c, o)
    };

    // Best-of-3 to suppress thread-startup noise.
    let time = |f: &dyn Fn()| -> Duration {
        (0..3)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed()
            })
            .min()
            .expect("three runs")
    };

    let mut rows = Vec::new();

    // 1. ReadFile: sources into a local no-op sink (no repartitioning).
    let rf = time(&|| {
        let mut b = TopologyBuilder::new();
        let (c, o) = spouts(&mut b, &customers, &orders);
        let sink_node = b.add_bolt("sink", 1, |_| sink());
        b.connect(c, sink_node, Grouping::Global);
        b.connect(o, sink_node, Grouping::Global);
        b.build().unwrap().run();
    });
    rows.push(Row::new("ReadFile (RF)").add("runtime", ms(rf)).add("share of full join", "-"));

    // 2. + no-op selection over an integer field (shippriority >= 0).
    let sel_int_pred = ScalarExpr::bin(BinOp::Ge, ScalarExpr::col(3), ScalarExpr::lit(0));
    let sel_int = time(&|| {
        let mut b = TopologyBuilder::new();
        let (c, o) = spouts(&mut b, &customers, &orders);
        let p = sel_int_pred.clone();
        let sel = b.add_bolt("sel", 1, move |_| {
            Box::new(squall_core::operators::SelectProjectBolt::select(p.clone()))
        });
        let sink_node = b.add_bolt("sink", 1, |_| sink());
        b.connect(o, sel, Grouping::Global);
        b.connect(sel, sink_node, Grouping::Global);
        b.connect(c, sink_node, Grouping::Global);
        b.build().unwrap().run();
    });
    rows.push(Row::new("RF + sel(int)").add("runtime", ms(sel_int)).add("share of full join", "-"));

    // 3. + no-op selection over the DATE field — the expensive Str→Date
    //    parse (orderdate >= 1970-01-01 passes everything).
    let sel_date_pred = ScalarExpr::bin(
        BinOp::Ge,
        ScalarExpr::cast(ScalarExpr::col(2), DataType::Date),
        ScalarExpr::lit(Value::Date(squall_common::Date(0))),
    );
    let sel_date = time(&|| {
        let mut b = TopologyBuilder::new();
        let (c, o) = spouts(&mut b, &customers, &orders);
        let p = sel_date_pred.clone();
        let sel = b.add_bolt("sel", 1, move |_| {
            Box::new(squall_core::operators::SelectProjectBolt::select(p.clone()))
        });
        let sink_node = b.add_bolt("sink", 1, |_| sink());
        b.connect(o, sel, Grouping::Global);
        b.connect(sel, sink_node, Grouping::Global);
        b.connect(c, sink_node, Grouping::Global);
        b.build().unwrap().run();
    });
    rows.push(
        Row::new("RF + sel(date)").add("runtime", ms(sel_date)).add("share of full join", "-"),
    );

    // 4. + network: hash repartitioning over `join_tasks` tasks, no join.
    let network = time(&|| {
        let mut b = TopologyBuilder::new();
        let (c, o) = spouts(&mut b, &customers, &orders);
        let p = sel_int_pred.clone();
        let sel = b.add_bolt("sel", 1, move |_| {
            Box::new(squall_core::operators::SelectProjectBolt::select(p.clone()))
        });
        let sink_node = b.add_bolt("sink", join_tasks, |_| sink());
        b.connect(o, sel, Grouping::Global);
        b.connect(sel, sink_node, Grouping::Fields(vec![1]));
        b.connect(c, sink_node, Grouping::Fields(vec![0]));
        b.build().unwrap().run();
    });
    rows.push(
        Row::new("RF + sel(int) + network")
            .add("runtime", ms(network))
            .add("share of full join", "-"),
    );

    // 5. Full join C ⋈ O (hash partitioned, DBToaster local).
    let q = customer_orders_query(&data);
    let full = time(&|| {
        let cfg = MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, join_tasks)
            .count_only();
        run_multiway(&q.spec, q.data.clone(), &cfg).unwrap();
    });
    let share = |d: Duration| format!("{:.0}%", 100.0 * d.as_secs_f64() / full.as_secs_f64());
    rows.push(Row::new("Full join").add("runtime", ms(full)).add("share of full join", "100%"));
    // Re-annotate shares now that the full-join time is known.
    let stages = [rf, sel_int, sel_date, network];
    for (row, d) in rows.iter_mut().zip(stages) {
        row.values[1].1 = share(d);
    }
    rows
}

fn customer_orders_query(data: &squall_data::tpch::TpchData) -> QueryInstance {
    use squall_data::tpch;
    use squall_expr::{JoinAtom, MultiJoinSpec, RelationDef};
    let spec = MultiJoinSpec::new(
        vec![
            RelationDef::new("CUSTOMER", tpch::customer_schema(), data.customer.len() as u64),
            RelationDef::new("ORDERS", tpch::orders_schema(), data.orders.len() as u64),
        ],
        vec![JoinAtom::eq(0, 0, 1, 1)],
    )
    .unwrap();
    QueryInstance {
        spec,
        data: vec![data.customer.clone(), data.orders.clone()],
        agg_group_cols: vec![],
    }
}

// ---------------------------------------------------------------------------
// Figure 6 — 3-Reachability: multi-way vs pipeline of 2-way joins.
// ---------------------------------------------------------------------------

/// Figure 6: the 3-reachability self-join over a WebGraph sample, run as
/// (a) Hash-Hypercube multi-way, (b) Hybrid-Hypercube multi-way (same
/// partitioning — the query is a uniform equi-join), (c) pipeline of 2-way
/// joins. Reports runtime and tuples shuffled.
pub fn fig6_reachability(n_nodes: usize, n_arcs: usize, machines: usize) -> Vec<Row> {
    let arcs = WebGraphGen::new(n_nodes, n_arcs, 9).generate();
    let q = queries::reachability3(&arcs);
    let mut rows = Vec::new();
    for (name, kind) in
        [("Hash-Hypercube", SchemeKind::Hash), ("Hybrid-Hypercube", SchemeKind::Hybrid)]
    {
        let cfg = MultiwayConfig::new(kind, LocalJoinKind::DBToaster, machines).count_only();
        let start = Instant::now();
        let rep = run_multiway(&q.spec, q.data.clone(), &cfg).unwrap();
        let elapsed = start.elapsed();
        rows.push(
            Row::new(name)
                .add("runtime", ms(elapsed))
                .add("tuples shuffled", rep.loads.iter().sum::<u64>())
                .add("results", rep.result_count)
                .add("scheme", rep.scheme_description),
        );
    }
    let start = Instant::now();
    let pipe = run_pipeline(
        &q.spec,
        q.data.clone(),
        &[0, 1, 2],
        machines,
        LocalJoinKind::DBToaster,
        false,
    )
    .unwrap();
    let elapsed = start.elapsed();
    // The pipeline's shuffled tuples include the intermediate stage: use
    // the network factor × query size for the comparable number.
    rows.push(
        Row::new("Pipeline of 2-way joins")
            .add("runtime", ms(elapsed))
            .add("tuples shuffled", format!("{:.0}", pipe.network_factor * pipe.input_count as f64))
            .add("results", pipe.result_count)
            .add("scheme", "hash per stage"),
    );
    rows
}

// ---------------------------------------------------------------------------
// Figure 7 + Tables 1 & 2 — hypercube scheme comparison.
// ---------------------------------------------------------------------------

/// One Figure-7 configuration: run all three schemes over a query and
/// report runtime, max/avg load (Table 1), replication factor (Table 2).
/// `budget` (stored tuples per machine) triggers the paper's
/// Hash-Hypercube memory overflow on the skewed configurations; overflowed
/// runs report extrapolated runtime.
pub fn fig7_schemes(q: &QueryInstance, machines: usize, budget: Option<usize>) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, kind) in [
        ("Hash-Hypercube", SchemeKind::Hash),
        ("Random-Hypercube", SchemeKind::Random),
        ("Hybrid-Hypercube", SchemeKind::Hybrid),
    ] {
        let mut cfg = MultiwayConfig::new(kind, LocalJoinKind::DBToaster, machines).count_only();
        if let Some(b) = budget {
            cfg = cfg.with_budget(b);
        }
        let start = Instant::now();
        let rep = match run_multiway(&q.spec, q.data.clone(), &cfg) {
            Ok(r) => r,
            Err(e) => {
                rows.push(Row::new(name).add("runtime", format!("error: {e}")));
                continue;
            }
        };
        let elapsed = start.elapsed();
        let (runtime, note) = match &rep.error {
            Some(squall_common::SquallError::MemoryOverflow { .. }) => {
                // Extrapolate from tuples processed before the overflow
                // (§7.3 methodology).
                let received: u64 = rep.loads.iter().sum();
                let expected = (rep.input_count as f64 * rep.replication_factor.max(1.0)).max(1.0);
                let frac = (received as f64 / expected).clamp(0.01, 1.0);
                (
                    format!(
                        "{} (extrapolated)",
                        ms(Duration::from_secs_f64(elapsed.as_secs_f64() / frac))
                    ),
                    "Memory Overflow".to_string(),
                )
            }
            Some(e) => (format!("error: {e}"), String::new()),
            None => (ms(elapsed), String::new()),
        };
        rows.push(
            Row::new(name)
                .add("runtime", runtime)
                .add("max load", rep.max_load())
                .add("avg load", format!("{:.0}", rep.avg_load()))
                .add("skew degree", format!("{:.2}", rep.skew_degree))
                .add("replication factor", format!("{:.2}", rep.replication_factor))
                .add("scheme", rep.scheme_description)
                .add("note", note),
        );
    }
    rows
}

/// The Figure 7 / Table 1 / Table 2 workloads at laptop scale.
pub fn fig7_all(scale_small: f64, scale_big: f64) -> Vec<(String, Vec<Row>)> {
    let mut out = Vec::new();
    // TPCH9-Partial, zipf(2), "10G/8J" analog.
    let small = TpchGen::new(scale_small, 2.0, 7).generate();
    let q_small = queries::tpch9_partial(&small, true);
    out.push((
        format!("TPCH9-Partial {scale_small}u/8J (zipf 2)"),
        fig7_schemes(&q_small, 8, None),
    ));
    // "80G/100J" analog with a per-machine budget so Hash overflows.
    let big = TpchGen::new(scale_big, 2.0, 8).generate();
    let q_big = queries::tpch9_partial(&big, true);
    // Sized so that only the Hash-Hypercube's hottest machine (which
    // receives the zipf top key's entire mass, §7.3) exceeds it.
    let budget = big.lineitem.len();
    out.push((
        format!("TPCH9-Partial {scale_big}u/16J (zipf 2, budget {budget})"),
        fig7_schemes(&q_big, 16, Some(budget)),
    ));
    // WebAnalytics.
    let arcs = WebGraphGen::new(2500, 25_000, 11).generate();
    let content = crawlcontent::generate(2500, 12);
    let q_web = queries::webanalytics(&arcs, &content);
    out.push(("WebAnalytics (40 machines in paper; 8 here)".into(), fig7_schemes(&q_web, 8, None)));
    out
}

// ---------------------------------------------------------------------------
// Figure 8 — DBToaster vs traditional local joins.
// ---------------------------------------------------------------------------

/// Figure 8: the same multi-way join run with each local algorithm under
/// each hypercube scheme; reports runtimes and the DBToaster speedup.
pub fn fig8_localjoins(q: &QueryInstance, machines: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for (sname, kind) in [
        ("Hash-Hypercube", SchemeKind::Hash),
        ("Random-Hypercube", SchemeKind::Random),
        ("Hybrid-Hypercube", SchemeKind::Hybrid),
    ] {
        let mut vals: Vec<(String, String)> = Vec::new();
        let mut times = Vec::new();
        for local in [LocalJoinKind::DBToaster, LocalJoinKind::Traditional] {
            let cfg = MultiwayConfig::new(kind, local, machines).count_only();
            let start = Instant::now();
            let rep = run_multiway(&q.spec, q.data.clone(), &cfg).unwrap();
            let elapsed = start.elapsed();
            assert!(rep.error.is_none(), "{sname}/{local}: {:?}", rep.error);
            vals.push((local.to_string(), ms(elapsed)));
            times.push(elapsed.as_secs_f64());
        }
        let speedup = times[1] / times[0];
        let mut row = Row::new(sname);
        for (k, v) in vals {
            row = row.add(&k, v);
        }
        rows.push(row.add("DBToaster speedup", format!("{speedup:.1}x")));
    }
    rows
}

/// All three Figure-8 workloads, plus a join-product-skew variant of the
/// 3-Reachability query where the algorithmic gap (aggregated views probe
/// O(distinct keys) instead of enumerating O(matches)) is decisive. On the
/// pure foreign-key joins the paper's order-of-magnitude also contains the
/// constant-factor gap between DBToaster's generated code and Squall's
/// interpreted traditional joins, which an interpreter-vs-interpreter
/// comparison cannot show (see EXPERIMENTS.md).
pub fn fig8_all(scale: f64) -> Vec<(String, Vec<Row>)> {
    let tpch = TpchGen::new(scale, 2.0, 13).generate();
    let mut out = Vec::new();
    out.push((
        format!("Fig 8a: TPCH9-Partial {scale}u/8J (zipf 2)"),
        fig8_localjoins(&queries::tpch9_partial(&tpch, true), 8),
    ));
    out.push((
        format!("Fig 8b: TPC-H Q3 {scale}u/8J (zipf 2)"),
        fig8_localjoins(&queries::tpch_q3(&tpch), 8),
    ));
    let gd = google_cluster::generate((8000.0 * scale) as usize, 14);
    out.push((
        "Fig 8c: Google TaskCount 8J".into(),
        fig8_localjoins(&queries::google_taskcount(&gd), 8),
    ));
    let arcs = WebGraphGen::new(1200, 8_000, 15).generate();
    out.push((
        "Fig 8d (supplementary): 3-Reachability, hub graph (join product skew)".into(),
        fig8_localjoins(&queries::reachability3(&arcs), 9),
    ));
    out
}

// ---------------------------------------------------------------------------
// Ablations (§5).
// ---------------------------------------------------------------------------

/// A1 — hash-imperfection skew: max keys per machine, hashing vs the
/// round-robin key map, for the TPC-H-like small domains d ∈ {5,7,15,25}
/// on p = 8 machines.
pub fn abl_hash_imperfection() -> Vec<Row> {
    let p = 8;
    [5usize, 7, 15, 25]
        .into_iter()
        .map(|d| {
            let keys: Vec<Value> = (0..d as i64).map(Value::Int).collect();
            let hash_max = hash_assignment_max_keys(keys.clone(), p);
            let map = KeyMapGrouping::new(0, keys, p);
            // Round-robin assigns ⌈d/p⌉ keys to the fullest machine —
            // the §5 optimum; `imbalance` certifies the ≤1 spread.
            let optimal = d.div_ceil(p);
            debug_assert!(map.imbalance(p) <= 1);
            Row::new(format!("d={d}, p={p}"))
                .add("hash: max keys/machine", hash_max)
                .add("key map: max keys/machine", optimal)
                .add("optimal", optimal)
                .add("hash overload", format!("{:.2}x", hash_max as f64 / optimal as f64))
        })
        .collect()
}

/// A2 — temporal skew: mean active machines per 50-tuple window for a
/// sorted stream under hash vs shuffle partitioning, and the same keys
/// shuffled.
pub fn abl_temporal_skew() -> Vec<Row> {
    let p = 8;
    let window = 50;
    let sorted = streams::sorted_stream(200, 50);
    let shuffled = streams::shuffled_stream(200, 50, 3);
    vec![
        Row::new("sorted arrival, hash partitioning").add(
            "mean active machines",
            format!(
                "{:.1}/{p}",
                mean_active_machines(&Grouping::Fields(vec![0]), sorted.clone(), p, window)
            ),
        ),
        Row::new("sorted arrival, random partitioning").add(
            "mean active machines",
            format!("{:.1}/{p}", mean_active_machines(&Grouping::Shuffle, sorted, p, window)),
        ),
        Row::new("shuffled arrival, hash partitioning").add(
            "mean active machines",
            format!(
                "{:.1}/{p}",
                mean_active_machines(&Grouping::Fields(vec![0]), shuffled, p, window)
            ),
        ),
    ]
}

/// A3 — Adaptive 1-Bucket under drifting |R|:|S| (the \[32\] scenario).
pub fn abl_adaptive() -> Vec<Row> {
    let arrivals = adaptive_sim::drifting_stream(500, 20_000, 12, 21);
    let stat = adaptive_sim::simulate(16, &arrivals, false, 5);
    let adap = adaptive_sim::simulate(16, &arrivals, true, 5);
    vec![
        Row::new("static 1-Bucket")
            .add("max load", stat.max_load())
            .add("avg load", format!("{:.0}", stat.avg_load()))
            .add("reshapes", stat.reshapes)
            .add("migrated tuples", stat.migrated),
        Row::new("Adaptive 1-Bucket [32]")
            .add("max load", adap.max_load())
            .add("avg load", format!("{:.0}", adap.avg_load()))
            .add("reshapes", adap.reshapes)
            .add("migrated tuples", adap.migrated),
    ]
}

/// A4 — 2-way band-join schemes under join product skew: replication and
/// output balance for 1-Bucket vs M-Bucket vs EWH.
pub fn abl_band_schemes() -> Vec<Row> {
    use squall_common::SplitMix64;
    let machines = 8;
    let mut rng = SplitMix64::new(31);
    let keys = |seed: u64| -> Vec<i64> {
        let mut r = SplitMix64::new(seed);
        (0..3000)
            .map(|_| {
                if r.next_f64() < 0.5 {
                    r.next_below(100) as i64
                } else {
                    1000 + r.next_below(1_000_000) as i64
                }
            })
            .collect()
    };
    let r_keys = keys(1);
    let s_keys = keys(2);
    let cond = RangeCond::Band(1);
    let skew = |counts: &[u64]| {
        let max = *counts.iter().max().unwrap() as f64;
        let avg = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    };
    let mut rows = Vec::new();
    // 1-Bucket: replication √p on both sides, perfect balance.
    {
        let scheme = one_bucket(r_keys.len() as u64, s_keys.len() as u64, machines, 3).unwrap();
        let mut out = vec![];
        let mut loads = vec![0u64; machines];
        for (i, _) in r_keys.iter().enumerate() {
            scheme.route(0, &squall_common::tuple![r_keys[i]], &mut rng, &mut out);
            for &m in &out {
                loads[m] += 1;
            }
        }
        for (i, _) in s_keys.iter().enumerate() {
            scheme.route(1, &squall_common::tuple![s_keys[i]], &mut rng, &mut out);
            for &m in &out {
                loads[m] += 1;
            }
        }
        let repl = loads.iter().sum::<u64>() as f64 / (r_keys.len() + s_keys.len()) as f64;
        rows.push(
            Row::new("1-Bucket [54]")
                .add("avg replication", format!("{repl:.2}"))
                .add("output skew degree", "1.00 (content-insensitive)"),
        );
    }
    for (name, grid) in [
        (
            "M-Bucket [54]",
            MBucketScheme::build(&r_keys, &s_keys, 0, 0, cond, machines, 32).unwrap().grid,
        ),
        ("EWH [66]", EwhScheme::build(&r_keys, &s_keys, 0, 0, cond, machines, 32).unwrap().grid),
    ] {
        let out = output_per_machine(&grid, &r_keys, &s_keys);
        let (rr, rs) = grid.avg_replication();
        rows.push(
            Row::new(name)
                .add("avg replication", format!("{:.2}", (rr + rs) / 2.0))
                .add("output skew degree", format!("{:.2}", skew(&out))),
        );
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e0_rows_match_paper() {
        let rows = e0_worked_example();
        assert_eq!(rows.len(), 3);
        // Totals 17H / 48H / 23H.
        assert_eq!(rows[0].values[2].1, "17");
        assert_eq!(rows[1].values[2].1, "48");
        assert_eq!(rows[2].values[2].1, "23");
        // Skewed loads: hash 0.688, random 0.750, hybrid 0.365.
        assert_eq!(rows[0].values[1].1, "0.688");
        assert_eq!(rows[1].values[1].1, "0.750");
        assert_eq!(rows[2].values[1].1, "0.365");
    }

    #[test]
    fn fig6_multiway_beats_pipeline_on_shuffle() {
        let rows = fig6_reachability(400, 3000, 9);
        assert_eq!(rows.len(), 3);
        let shuffled: Vec<f64> =
            rows.iter().map(|r| r.values[1].1.parse::<f64>().unwrap()).collect();
        // Multi-way (rows 0/1) must shuffle fewer tuples than the pipeline
        // (row 2) on this hub-heavy graph.
        assert!(shuffled[0] < shuffled[2], "{shuffled:?}");
        // All runs agree on the answer.
        let results: Vec<&str> = rows.iter().map(|r| r.values[2].1.as_str()).collect();
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn fig7_small_hybrid_beats_hash_max_load() {
        let data = TpchGen::new(0.3, 2.0, 7).generate();
        let q = queries::tpch9_partial(&data, true);
        let rows = fig7_schemes(&q, 8, None);
        let max_load = |i: usize| rows[i].values[1].1.parse::<u64>().unwrap();
        assert!(max_load(2) < max_load(0), "hybrid {} vs hash {}", max_load(2), max_load(0));
    }

    #[test]
    fn abl_rows_render() {
        let rows = abl_hash_imperfection();
        assert_eq!(rows.len(), 4);
        let text = render("A1", &rows);
        assert!(text.contains("| d=15, p=8 |"));
        assert!(!abl_temporal_skew().is_empty());
        assert!(!abl_adaptive().is_empty());
        assert!(!abl_band_schemes().is_empty());
    }
}
