//! # squall-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§6–§7), plus the §5 ablations. Each `fig*`/`t*`
//! function runs a scaled-down but shape-preserving version of the paper's
//! experiment and returns printable rows; the `repro` binary prints them
//! all, and the Criterion benches in `benches/` time the same runs.
//!
//! Scales are laptop-sized: the goal is to reproduce *who wins and by
//! roughly what factor*, not the absolute numbers from the authors' 120
//! core cluster (see EXPERIMENTS.md for the paper-vs-measured record).

pub mod experiments;

pub use experiments::*;
