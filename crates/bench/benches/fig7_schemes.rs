//! Figure 7 / Tables 1–2 — hypercube scheme comparison on skewed
//! TPCH9-Partial and WebAnalytics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use squall_core::driver::{run_multiway, LocalJoinKind, MultiwayConfig};
use squall_data::crawlcontent;
use squall_data::queries;
use squall_data::tpch::TpchGen;
use squall_data::webgraph::WebGraphGen;
use squall_partition::optimizer::SchemeKind;

fn bench(c: &mut Criterion) {
    let tpch = TpchGen::new(0.4, 2.0, 7).generate();
    let q9 = queries::tpch9_partial(&tpch, true);
    let arcs = WebGraphGen::new(800, 8000, 11).generate();
    let content = crawlcontent::generate(800, 12);
    let qweb = queries::webanalytics(&arcs, &content);

    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    for (qname, q) in [("tpch9_partial_zipf2", &q9), ("webanalytics", &qweb)] {
        for kind in [SchemeKind::Hash, SchemeKind::Random, SchemeKind::Hybrid] {
            g.bench_with_input(BenchmarkId::new(qname, kind), q, |b, q| {
                b.iter(|| {
                    let cfg = MultiwayConfig::new(kind, LocalJoinKind::DBToaster, 8).count_only();
                    std::hint::black_box(run_multiway(&q.spec, q.data.clone(), &cfg).unwrap())
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
