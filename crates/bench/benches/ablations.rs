//! §5 ablations: hash-imperfection key mapping, temporal skew, adaptive
//! 1-Bucket, band-join schemes — plus microbenchmarks of the hot paths
//! (hypercube routing, local join insert).

use criterion::{criterion_group, criterion_main, Criterion};
use squall_bench::{abl_adaptive, abl_band_schemes, abl_hash_imperfection, abl_temporal_skew};
use squall_common::{tuple, SplitMix64};
use squall_data::queries;
use squall_data::tpch::TpchGen;
use squall_join::dbtoaster::AggregatedDBToaster;
use squall_join::{DBToasterJoin, LocalJoin, TraditionalJoin};
use squall_partition::optimizer::{build_scheme, hybrid_hypercube, SchemeKind};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("a1_hash_imperfection", |b| {
        b.iter(|| std::hint::black_box(abl_hash_imperfection()))
    });
    g.bench_function("a2_temporal_skew", |b| b.iter(|| std::hint::black_box(abl_temporal_skew())));
    g.bench_function("a3_adaptive_one_bucket", |b| b.iter(|| std::hint::black_box(abl_adaptive())));
    g.bench_function("a4_band_schemes", |b| b.iter(|| std::hint::black_box(abl_band_schemes())));
    g.finish();

    // Hot paths.
    let tpch = TpchGen::new(0.2, 2.0, 3).generate();
    let q = queries::tpch9_partial(&tpch, true);
    let mut g = c.benchmark_group("hot_paths");
    g.bench_function("hybrid_optimizer_100_machines", |b| {
        b.iter(|| std::hint::black_box(hybrid_hypercube(&q.spec, 100, 1).unwrap()))
    });
    let scheme = build_scheme(SchemeKind::Hybrid, &q.spec, 64, 1).unwrap();
    g.bench_function("hypercube_route", |b| {
        let mut rng = SplitMix64::new(1);
        let t = tuple![1, 2, 3, 4, 5.0, "1994-01-01"];
        let mut out = Vec::new();
        b.iter(|| {
            scheme.route(0, &t, &mut rng, &mut out);
            std::hint::black_box(out.len())
        })
    });
    g.bench_function("dbtoaster_insert_1k", |b| {
        b.iter(|| {
            let mut j = DBToasterJoin::new(&q.spec);
            let mut out = Vec::new();
            for t in q.data[0].iter().take(1000) {
                j.insert(0, t, &mut out);
                out.clear();
            }
            std::hint::black_box(j.stored())
        })
    });
    g.bench_function("aggregated_dbtoaster_insert_1k", |b| {
        b.iter(|| {
            let mut j = AggregatedDBToaster::minimal(&q.spec);
            let mut out = Vec::new();
            for t in q.data[0].iter().take(1000) {
                j.insert_weighted(0, t, &mut out);
                out.clear();
            }
            std::hint::black_box(j.stored())
        })
    });
    g.bench_function("traditional_insert_1k", |b| {
        b.iter(|| {
            let mut j = TraditionalJoin::new(&q.spec);
            let mut out = Vec::new();
            for t in q.data[0].iter().take(1000) {
                j.insert(0, t, &mut out);
                out.clear();
            }
            std::hint::black_box(j.stored())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
