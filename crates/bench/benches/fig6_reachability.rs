//! Figure 6 — 3-Reachability: multi-way hypercube vs pipeline of 2-way
//! joins.

use criterion::{criterion_group, criterion_main, Criterion};
use squall_core::driver::{run_multiway, LocalJoinKind, MultiwayConfig};
use squall_core::pipeline::run_pipeline;
use squall_data::queries;
use squall_data::webgraph::WebGraphGen;
use squall_partition::optimizer::SchemeKind;

fn bench(c: &mut Criterion) {
    let arcs = WebGraphGen::new(600, 4000, 9).generate();
    let q = queries::reachability3(&arcs);
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("multiway_hash_hypercube", |b| {
        b.iter(|| {
            let cfg =
                MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, 9).count_only();
            std::hint::black_box(run_multiway(&q.spec, q.data.clone(), &cfg).unwrap())
        })
    });
    g.bench_function("pipeline_of_2way", |b| {
        b.iter(|| {
            std::hint::black_box(
                run_pipeline(
                    &q.spec,
                    q.data.clone(),
                    &[0, 1, 2],
                    9,
                    LocalJoinKind::DBToaster,
                    false,
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
