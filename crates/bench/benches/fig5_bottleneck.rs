//! Figure 5 — bottleneck decomposition (criterion timing of the stages).

use criterion::{criterion_group, criterion_main, Criterion};
use squall_bench::fig5_bottleneck;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("stages_customer_orders", |b| {
        b.iter(|| std::hint::black_box(fig5_bottleneck(2.0, 8)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
