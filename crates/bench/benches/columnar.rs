//! Columnar data-plane microbenchmarks: specialized Int key hashing vs
//! the generic `Value` hasher, the columnar chunk codec vs the row
//! codec, and the vectorized windowed-aggregation insert kernel vs its
//! per-row fallback — with regression guards asserting each specialized
//! path stays at least as fast as its generic counterpart.

use std::hash::{Hash, Hasher};
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use squall_common::codec::{self, Reader};
use squall_common::hash::{hash_i64_keys, FxHasher};
use squall_common::{Chunk, SplitMix64, Tuple, Value};
use squall_core::WindowedAggBolt;
use squall_join::{AggSpec, WindowSpec};

const KEYS: usize = 1 << 16;

fn generic_hash(values: &[Value]) -> u64 {
    let mut acc = 0u64;
    for v in values {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        acc ^= h.finish();
    }
    acc
}

fn specialized_hash(keys: &[i64], states: &mut [u64]) -> u64 {
    states.iter_mut().for_each(|s| *s = 0);
    hash_i64_keys(keys, states);
    states.iter().fold(0, |a, s| a ^ s)
}

fn bench(c: &mut Criterion) {
    let mut rng = SplitMix64::new(7);
    let keys: Vec<i64> = (0..KEYS).map(|_| rng.next_range(0, 1 << 20)).collect();
    let values: Vec<Value> = keys.iter().map(|&k| Value::Int(k)).collect();
    let mut states = vec![0u64; KEYS];

    let mut g = c.benchmark_group("int_key_hashing");
    g.sample_size(20);
    g.bench_function("generic_value_hasher_64k", |b| {
        b.iter(|| std::hint::black_box(generic_hash(&values)))
    });
    g.bench_function("specialized_i64_64k", |b| {
        b.iter(|| std::hint::black_box(specialized_hash(&keys, &mut states)))
    });
    g.finish();

    // Regression guard: the specialized per-column path must not fall
    // behind the generic hasher (best-of-5, 10% noise headroom). The two
    // produce identical hashes — that equivalence is unit-tested in
    // squall-common — so this guards speed only.
    let generic_best = (0..5)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(generic_hash(&values));
            t.elapsed()
        })
        .min()
        .unwrap();
    let specialized_best = (0..5)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(specialized_hash(&keys, &mut states));
            t.elapsed()
        })
        .min()
        .unwrap();
    println!(
        "guard: generic {:?} vs specialized {:?} over {KEYS} keys",
        generic_best, specialized_best
    );
    assert!(
        specialized_best.as_secs_f64() <= generic_best.as_secs_f64() * 1.10,
        "specialized Int hashing regressed: {specialized_best:?} vs generic {generic_best:?}"
    );

    // Codec: 64-row batches of (Int, Int) tuples, encode + decode.
    let tuples: Vec<Tuple> = (0..KEYS)
        .map(|_| {
            Tuple::new(vec![
                Value::Int(rng.next_range(0, 1 << 20)),
                Value::Int(rng.next_range(0, 8)),
            ])
        })
        .collect();
    let batches: Vec<&[Tuple]> = tuples.chunks(64).collect();
    let chunks: Vec<Chunk> = batches.iter().map(|b| Chunk::from_tuples(b)).collect();
    let mut g = c.benchmark_group("wire_codec_64k_tuples");
    g.sample_size(10);
    g.bench_function("row_codec", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            for batch in &batches {
                buf.clear();
                codec::put_u32(&mut buf, batch.len() as u32);
                for t in *batch {
                    codec::put_tuple(&mut buf, t);
                }
                let mut r = Reader::new(&buf);
                let k = r.len().expect("len");
                for _ in 0..k {
                    std::hint::black_box(codec::get_tuple(&mut r).expect("tuple"));
                }
            }
        })
    });
    g.bench_function("chunk_codec", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            for c in &chunks {
                buf.clear();
                codec::put_chunk(&mut buf, c);
                let mut r = Reader::new(&buf);
                std::hint::black_box(codec::get_chunk(&mut r).expect("chunk"));
            }
        })
    });
    g.finish();

    // Windowed-aggregation insert: the vectorized chunk kernel
    // (column-at-a-time window bounds, once-per-chunk aggregate inputs,
    // scratch-buffer group keys) vs the per-row fallback that
    // materializes a tuple and re-derives everything row by row.
    let mut ts = 0i64;
    let rows: Vec<Tuple> = (0..KEYS)
        .map(|_| {
            ts += rng.next_range(0, 2);
            Tuple::new(vec![Value::Int(rng.next_range(0, 64)), Value::Int(ts)])
        })
        .collect();
    let agg_chunks: Vec<Chunk> = rows.chunks(1024).map(Chunk::from_tuples).collect();
    let make_bolt = || {
        WindowedAggBolt::new(
            WindowSpec::Tumbling { width: 512 },
            vec![1],
            vec![0],
            vec![AggSpec::count(), AggSpec::sum_col(1)],
            1,
        )
    };
    let row_insert = || {
        let mut agg = make_bolt();
        for t in &rows {
            agg.insert_row(t).expect("row insert");
        }
        let mut out = Vec::new();
        agg.close_into(u64::MAX, &mut out);
        out
    };
    let chunk_insert = || {
        let mut agg = make_bolt();
        for c in &agg_chunks {
            agg.insert_chunk(c).expect("chunk insert");
        }
        let mut out = Vec::new();
        agg.close_into(u64::MAX, &mut out);
        out
    };
    assert_eq!(row_insert(), chunk_insert(), "kernel must match the row path exactly");

    let mut g = c.benchmark_group("windowed_agg_insert_64k_rows");
    g.sample_size(10);
    g.bench_function("per_row_fallback", |b| b.iter(|| std::hint::black_box(row_insert())));
    g.bench_function("vectorized_kernel", |b| b.iter(|| std::hint::black_box(chunk_insert())));
    g.finish();

    // Regression guard: the vectorized windowed-insert kernel must stay
    // ahead of the per-row fallback (best-of-5, 10% noise headroom).
    let row_best = (0..5)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(row_insert());
            t.elapsed()
        })
        .min()
        .unwrap();
    let chunk_best = (0..5)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(chunk_insert());
            t.elapsed()
        })
        .min()
        .unwrap();
    println!("guard: per-row {:?} vs vectorized {:?} over {KEYS} rows", row_best, chunk_best);
    assert!(
        chunk_best.as_secs_f64() <= row_best.as_secs_f64() * 1.10,
        "vectorized windowed insert regressed: {chunk_best:?} vs per-row {row_best:?}"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
