//! Columnar data-plane microbenchmarks: specialized Int key hashing vs
//! the generic `Value` hasher, and the columnar chunk codec vs the row
//! codec — with a regression guard asserting the specialized hash path
//! stays at least as fast as the generic one.

use std::hash::{Hash, Hasher};
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use squall_common::codec::{self, Reader};
use squall_common::hash::{hash_i64_keys, FxHasher};
use squall_common::{Chunk, SplitMix64, Tuple, Value};

const KEYS: usize = 1 << 16;

fn generic_hash(values: &[Value]) -> u64 {
    let mut acc = 0u64;
    for v in values {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        acc ^= h.finish();
    }
    acc
}

fn specialized_hash(keys: &[i64], states: &mut [u64]) -> u64 {
    states.iter_mut().for_each(|s| *s = 0);
    hash_i64_keys(keys, states);
    states.iter().fold(0, |a, s| a ^ s)
}

fn bench(c: &mut Criterion) {
    let mut rng = SplitMix64::new(7);
    let keys: Vec<i64> = (0..KEYS).map(|_| rng.next_range(0, 1 << 20)).collect();
    let values: Vec<Value> = keys.iter().map(|&k| Value::Int(k)).collect();
    let mut states = vec![0u64; KEYS];

    let mut g = c.benchmark_group("int_key_hashing");
    g.sample_size(20);
    g.bench_function("generic_value_hasher_64k", |b| {
        b.iter(|| std::hint::black_box(generic_hash(&values)))
    });
    g.bench_function("specialized_i64_64k", |b| {
        b.iter(|| std::hint::black_box(specialized_hash(&keys, &mut states)))
    });
    g.finish();

    // Regression guard: the specialized per-column path must not fall
    // behind the generic hasher (best-of-5, 10% noise headroom). The two
    // produce identical hashes — that equivalence is unit-tested in
    // squall-common — so this guards speed only.
    let generic_best = (0..5)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(generic_hash(&values));
            t.elapsed()
        })
        .min()
        .unwrap();
    let specialized_best = (0..5)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(specialized_hash(&keys, &mut states));
            t.elapsed()
        })
        .min()
        .unwrap();
    println!(
        "guard: generic {:?} vs specialized {:?} over {KEYS} keys",
        generic_best, specialized_best
    );
    assert!(
        specialized_best.as_secs_f64() <= generic_best.as_secs_f64() * 1.10,
        "specialized Int hashing regressed: {specialized_best:?} vs generic {generic_best:?}"
    );

    // Codec: 64-row batches of (Int, Int) tuples, encode + decode.
    let tuples: Vec<Tuple> = (0..KEYS)
        .map(|_| {
            Tuple::new(vec![
                Value::Int(rng.next_range(0, 1 << 20)),
                Value::Int(rng.next_range(0, 8)),
            ])
        })
        .collect();
    let batches: Vec<&[Tuple]> = tuples.chunks(64).collect();
    let chunks: Vec<Chunk> = batches.iter().map(|b| Chunk::from_tuples(b)).collect();
    let mut g = c.benchmark_group("wire_codec_64k_tuples");
    g.sample_size(10);
    g.bench_function("row_codec", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            for batch in &batches {
                buf.clear();
                codec::put_u32(&mut buf, batch.len() as u32);
                for t in *batch {
                    codec::put_tuple(&mut buf, t);
                }
                let mut r = Reader::new(&buf);
                let k = r.len().expect("len");
                for _ in 0..k {
                    std::hint::black_box(codec::get_tuple(&mut r).expect("tuple"));
                }
            }
        })
    });
    g.bench_function("chunk_codec", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            for c in &chunks {
                buf.clear();
                codec::put_chunk(&mut buf, c);
                let mut r = Reader::new(&buf);
                std::hint::black_box(codec::get_chunk(&mut r).expect("chunk"));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
