//! Figure 8 — DBToaster vs traditional local joins (TPCH9-Partial, Q3,
//! Google TaskCount, plus the product-skew 3-Reachability variant).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use squall_core::driver::{run_multiway, LocalJoinKind, MultiwayConfig};
use squall_data::google_cluster;
use squall_data::queries;
use squall_data::tpch::TpchGen;
use squall_data::webgraph::WebGraphGen;
use squall_partition::optimizer::SchemeKind;

fn bench(c: &mut Criterion) {
    let tpch = TpchGen::new(0.4, 2.0, 13).generate();
    let q9 = queries::tpch9_partial(&tpch, true);
    let q3 = queries::tpch_q3(&tpch);
    let gd = google_cluster::generate(3000, 14);
    let qtc = queries::google_taskcount(&gd);
    let arcs = WebGraphGen::new(500, 3000, 15).generate();
    let qreach = queries::reachability3(&arcs);

    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    for (qname, q) in [
        ("a_tpch9_partial", &q9),
        ("b_tpch_q3", &q3),
        ("c_google_taskcount", &qtc),
        ("d_reachability_product_skew", &qreach),
    ] {
        for local in [LocalJoinKind::DBToaster, LocalJoinKind::Traditional] {
            g.bench_with_input(BenchmarkId::new(qname, local), q, |b, q| {
                b.iter(|| {
                    let cfg = MultiwayConfig::new(SchemeKind::Hybrid, local, 8).count_only();
                    std::hint::black_box(run_multiway(&q.spec, q.data.clone(), &cfg).unwrap())
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
