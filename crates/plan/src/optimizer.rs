//! Cost-based join ordering and partitioning-scheme selection.
//!
//! [`PhysicalQuery::plan`] resolves a query in *written* FROM order and
//! defers the scheme choice to the execution config. This module is the
//! cost-based layer on top:
//!
//! * **Join ordering** — a dynamic program over relation subsets picks the
//!   relation order minimising the sum of estimated intermediate-result
//!   cardinalities. The engine executes a relation *sequence* (the local
//!   join probes relations in index order), so the search space is the
//!   left-deep orders; over set-prefix cost functions the subset DP is
//!   exact, and [`OptimizerMode::Exhaustive`] scores every permutation
//!   outright as a belt-and-braces oracle.
//! * **Cardinality estimation** — per-relation base sizes come from the
//!   pushed-down filter evaluated over a bounded row sample; per-column
//!   distinct counts and heavy-hitter frequencies come from
//!   [`Catalog::stats`] (populated by `analyze`), falling back to the
//!   System-R defaults (`V(R,a) = |R|`, no skew) when a table was never
//!   analyzed. An equi-atom's selectivity is `1 / max(V(l), V(r))`; a
//!   theta atom contributes the classic 1/3 guess.
//! * **Scheme selection** — instead of defaulting to Hybrid-Hypercube,
//!   every expressible scheme is costed analytically via
//!   [`squall_partition::estimate_scheme_cost`] on the *reordered* join
//!   spec (skew flags derived from the same statistics) and the cheapest
//!   under [`CostCalibration`] wins. An explicit
//!   [`ExecConfig::scheme`](crate::physical::ExecConfig) still overrides.
//!
//! The chosen order is applied in place by
//! [`PhysicalQuery::apply_order`], which remaps every join-output
//! coordinate; result sets are byte-identical across orders and schemes
//! (the `plan_equivalence` proptest harness enforces this), so the
//! optimizer can only change *performance*, never answers. Decisions are
//! recorded as an [`OptimizerDecision`] and surfaced by `explain` as an
//! estimated-vs-actual table once a [`JoinReport`] provides the run's
//! per-relation counters.

use squall_common::Result;
use squall_core::driver::JoinReport;
use squall_expr::{JoinAtom, MultiJoinSpec, RelationDef};
use squall_partition::optimizer::SchemeKind;
use squall_partition::{choose_scheme, CostCalibration, CostEstimate};

use crate::catalog::Catalog;
use crate::physical::{ExecConfig, PhysicalQuery};

/// How much plan search the session performs per distributed query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizerMode {
    /// No search: the written FROM order runs, the scheme falls back to
    /// the config (Hybrid-Hypercube when unset). This is the pre-optimizer
    /// planner, kept as the reference oracle for equivalence testing.
    Off,
    /// Subset dynamic programming over join orders plus per-scheme cost
    /// models (the default).
    #[default]
    On,
    /// Score every relation permutation instead of the DP — exponentially
    /// expensive, used to validate the DP and by stress tests.
    Exhaustive,
}

impl std::fmt::Display for OptimizerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OptimizerMode::Off => "off",
            OptimizerMode::On => "on",
            OptimizerMode::Exhaustive => "exhaustive",
        })
    }
}

/// One step of the chosen join order, with its cardinality estimates.
#[derive(Debug, Clone)]
pub struct JoinStep {
    /// Relation alias joined at this step.
    pub relation: String,
    /// Estimated post-filter rows fed by this relation.
    pub est_rows: f64,
    /// Estimated cardinality of the join prefix ending at this step.
    pub est_cumulative: f64,
}

/// The scheme decision: the winner plus every candidate's cost estimate.
#[derive(Debug, Clone)]
pub struct SchemeChoice {
    /// The cheapest expressible scheme under the calibration.
    pub kind: SchemeKind,
    /// All candidate estimates, in probe order (Hash, Hybrid, Random);
    /// inexpressible schemes (Hash under theta joins) are absent.
    pub candidates: Vec<CostEstimate>,
    /// Weights used to scalarise the candidates.
    pub calibration: CostCalibration,
}

/// What the optimizer decided for one query, kept on the plan so
/// `explain` can print an estimated-vs-actual table after the run.
#[derive(Debug, Clone)]
pub struct OptimizerDecision {
    /// The mode that produced this decision.
    pub mode: OptimizerMode,
    /// Chosen relation order as indices into the *written* FROM order.
    pub order: Vec<usize>,
    /// Join orders (DP states or permutations) the search scored.
    pub orders_considered: usize,
    /// Estimated cost (sum of intermediate cardinalities) of the chosen
    /// order.
    pub est_cost: f64,
    /// Estimated cost of the written order, for the explain delta.
    pub written_cost: f64,
    /// Per-step estimates, in chosen-order sequence.
    pub steps: Vec<JoinStep>,
    /// The scheme decision (`None` when the config forced a scheme).
    pub scheme: Option<SchemeChoice>,
}

impl OptimizerDecision {
    /// The scheme the decision selects, if it made one.
    pub fn scheme_kind(&self) -> Option<SchemeKind> {
        self.scheme.as_ref().map(|s| s.kind)
    }

    /// Render the decision as the explain block: the chosen order, the
    /// per-step estimated-vs-actual table (actual columns dashed until a
    /// [`JoinReport`] from the run is supplied) and the scheme candidates.
    pub fn render(&self, actual: Option<&JoinReport>) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "optimizer: mode={}, orders considered={}, est cost {:.0} (written order {:.0})\n",
            self.mode, self.orders_considered, self.est_cost, self.written_cost
        ));
        let order: Vec<&str> = self.steps.iter().map(|st| st.relation.as_str()).collect();
        s.push_str(&format!("join order: {}\n", order.join(" ⋈ ")));
        s.push_str("  step  relation      est rows  est cumulative  actual rows\n");
        let counts = actual.map(|r| r.input_counts.as_slice()).unwrap_or(&[]);
        for (k, st) in self.steps.iter().enumerate() {
            let act = counts.get(k).map(|&c| c.to_string()).unwrap_or_else(|| "—".into());
            s.push_str(&format!(
                "  {:<5} {:<12} {:>9.0} {:>15.0}  {:>10}\n",
                k + 1,
                st.relation,
                st.est_rows,
                st.est_cumulative,
                act
            ));
        }
        if let Some(r) = actual {
            s.push_str(&format!(
                "  actual: {} result rows, replication {:.2}, skew degree {:.2}\n",
                r.result_count, r.replication_factor, r.skew_degree
            ));
        }
        match &self.scheme {
            Some(sc) => {
                let costs: Vec<String> = sc
                    .candidates
                    .iter()
                    .map(|c| format!("{:?} {:.3}", c.kind, c.cost(&sc.calibration)))
                    .collect();
                s.push_str(&format!(
                    "scheme: {:?} chosen by cost [{}]\n",
                    sc.kind,
                    costs.join(", ")
                ));
            }
            None => s.push_str("scheme: forced by config\n"),
        }
        s
    }
}

/// Estimated selectivity of one join atom under per-column distinct
/// counts: `1 / max(V(l), V(r))` for equi atoms, 1/3 for theta atoms.
fn atom_selectivity(atom: &JoinAtom, distinct: &dyn Fn(usize, usize) -> f64) -> f64 {
    use squall_expr::join_cond::CmpOp;
    match atom.op {
        CmpOp::Eq => {
            let dl = distinct(atom.left_rel, atom.left_col).max(1.0);
            let dr = distinct(atom.right_rel, atom.right_col).max(1.0);
            1.0 / dl.max(dr)
        }
        _ => 1.0 / 3.0,
    }
}

/// Estimated cardinality of joining the relation subset `mask`:
/// `∏ sizes × ∏ selectivities of atoms internal to the subset`.
fn mask_cardinality(mask: u32, sizes: &[f64], atoms: &[JoinAtom], sels: &[f64]) -> f64 {
    let mut card = 1.0f64;
    for (t, &n) in sizes.iter().enumerate() {
        if mask & (1 << t) != 0 {
            card *= n.max(1.0);
        }
    }
    for (a, atom) in atoms.iter().enumerate() {
        if mask & (1 << atom.left_rel) != 0 && mask & (1 << atom.right_rel) != 0 {
            card *= sels[a];
        }
    }
    card
}

/// Cost of a full relation order: the sum of every prefix cardinality of
/// length ≥ 2 (the intermediate results a probe cascade materialises).
fn order_cost(order: &[usize], sizes: &[f64], atoms: &[JoinAtom], sels: &[f64]) -> f64 {
    let mut mask = 0u32;
    let mut cost = 0.0;
    for (k, &t) in order.iter().enumerate() {
        mask |= 1 << t;
        if k >= 1 {
            cost += mask_cardinality(mask, sizes, atoms, sels);
        }
    }
    cost
}

/// Enumerate join orders whose every prefix is connected in the join
/// graph (no intermediate Cartesian product), up to `cap` orders. The
/// plan-equivalence harness runs a query under each of these.
pub fn enumerate_orders(n: usize, atoms: &[JoinAtom], cap: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut prefix = Vec::with_capacity(n);
    fn connected_to(t: usize, mask: u32, atoms: &[JoinAtom]) -> bool {
        atoms.iter().any(|a| {
            (a.left_rel == t && mask & (1 << a.right_rel) != 0)
                || (a.right_rel == t && mask & (1 << a.left_rel) != 0)
        })
    }
    fn rec(
        n: usize,
        atoms: &[JoinAtom],
        cap: usize,
        prefix: &mut Vec<usize>,
        mask: u32,
        out: &mut Vec<Vec<usize>>,
    ) {
        if out.len() >= cap {
            return;
        }
        if prefix.len() == n {
            out.push(prefix.clone());
            return;
        }
        for t in 0..n {
            if mask & (1 << t) != 0 {
                continue;
            }
            if !prefix.is_empty() && !connected_to(t, mask, atoms) {
                continue;
            }
            prefix.push(t);
            rec(n, atoms, cap, prefix, mask | (1 << t), out);
            prefix.pop();
        }
    }
    rec(n, atoms, cap, &mut prefix, 0, &mut out);
    out
}

/// Left-deep subset DP: for every relation subset, the cheapest order
/// ending anywhere, reconstructed from parent pointers. Exact for cost
/// functions (like ours) that depend only on the *set* of each prefix.
/// Returns `(order, cost, states_scored)`.
fn dp_best_order(sizes: &[f64], atoms: &[JoinAtom], sels: &[f64]) -> (Vec<usize>, f64, usize) {
    let n = sizes.len();
    let full: u32 = (1u32 << n) - 1;
    let mut best = vec![f64::INFINITY; (full + 1) as usize];
    let mut parent = vec![usize::MAX; (full + 1) as usize];
    for t in 0..n {
        best[1usize << t] = 0.0;
        parent[1usize << t] = t;
    }
    let mut states = n;
    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        let card = mask_cardinality(mask, sizes, atoms, sels);
        for t in 0..n {
            if mask & (1 << t) == 0 {
                continue;
            }
            let prev = mask & !(1 << t);
            if !best[prev as usize].is_finite() {
                continue;
            }
            states += 1;
            let cost = best[prev as usize] + card;
            if cost < best[mask as usize] {
                best[mask as usize] = cost;
                parent[mask as usize] = t;
            }
        }
    }
    // Reconstruct: walk parents from the full set down to a singleton.
    let mut order = Vec::with_capacity(n);
    let mut mask = full;
    while mask != 0 {
        let t = parent[mask as usize];
        order.push(t);
        mask &= !(1u32 << t);
    }
    order.reverse();
    (order, best[full as usize], states)
}

/// Exhaustive oracle: score every connected-prefix permutation.
fn exhaustive_best_order(
    sizes: &[f64],
    atoms: &[JoinAtom],
    sels: &[f64],
) -> (Vec<usize>, f64, usize) {
    let n = sizes.len();
    let orders = enumerate_orders(n, atoms, usize::MAX);
    let mut best: Option<(Vec<usize>, f64)> = None;
    let considered = orders.len();
    for order in orders {
        let cost = order_cost(&order, sizes, atoms, sels);
        match &best {
            Some((_, c)) if *c <= cost => {}
            _ => best = Some((order, cost)),
        }
    }
    let (order, cost) = best.unwrap_or_else(|| {
        let id: Vec<usize> = (0..n).collect();
        let c = order_cost(&id, sizes, atoms, sels);
        (id, c)
    });
    (order, cost, considered)
}

/// Run the cost-based search over a resolved plan and rewrite it in
/// place: pick a join order, apply it, pick a scheme (unless the config
/// forces one) and record the [`OptimizerDecision`] for `explain`.
///
/// A no-op for [`OptimizerMode::Off`] and for single-table (local)
/// plans. Standing views are never reordered — their delta routing must
/// stay stable across the view's lifetime — so the session only calls
/// this on the one-shot query paths.
pub fn optimize(plan: &mut PhysicalQuery, catalog: &Catalog, cfg: &ExecConfig) -> Result<()> {
    if cfg.optimizer == OptimizerMode::Off || !plan.is_distributed() {
        return Ok(());
    }
    let n = plan.n_relations();
    let atoms: Vec<JoinAtom> = plan.join_atoms().to_vec();
    let mut sizes = Vec::with_capacity(n);
    for t in 0..n {
        sizes.push(plan.estimated_base_rows(t, catalog)?);
    }
    // Per-column distinct counts from ANALYZE stats; System-R fallback
    // V(R,a) = |R| when the table was never analyzed (or the column is
    // derived, which no stats cover).
    let distinct = |t: usize, local: usize| -> f64 {
        plan.source_column(t, local)
            .and_then(|orig| catalog.stats(plan.source_name(t))?.column(orig))
            .map(|cs| cs.distinct as f64)
            .unwrap_or(sizes[t])
    };
    let sels: Vec<f64> = atoms.iter().map(|a| atom_selectivity(a, &distinct)).collect();
    let written: Vec<usize> = (0..n).collect();
    let written_cost = order_cost(&written, &sizes, &atoms, &sels);
    let (order, est_cost, orders_considered) = match cfg.optimizer {
        OptimizerMode::Exhaustive => exhaustive_best_order(&sizes, &atoms, &sels),
        _ => dp_best_order(&sizes, &atoms, &sels),
    };

    let steps: Vec<JoinStep> = {
        let mut mask = 0u32;
        order
            .iter()
            .map(|&t| {
                mask |= 1 << t;
                JoinStep {
                    relation: plan.alias(t).to_string(),
                    est_rows: sizes[t],
                    est_cumulative: mask_cardinality(mask, &sizes, &atoms, &sels),
                }
            })
            .collect()
    };
    plan.apply_order(&order)?;

    // Scheme selection over the *reordered* spec, with skew flags and
    // heavy-hitter frequencies from the same statistics. A forced config
    // scheme wins; estimation failure falls back to the config default
    // rather than failing the query.
    let scheme = if cfg.scheme.is_none() {
        let top_freq_of = |t: usize, c: usize| -> f64 {
            plan.source_column(t, c)
                .and_then(|orig| catalog.stats(plan.source_name(t))?.column(orig))
                .map(|cs| cs.top_frequency)
                .unwrap_or(0.0)
        };
        let mut rels: Vec<RelationDef> = Vec::with_capacity(n);
        for t in 0..n {
            let mut schema = plan.relation_schema(t).clone();
            for a in plan.join_atoms() {
                for &(rt, rc) in &[(a.left_rel, a.left_col), (a.right_rel, a.right_col)] {
                    if rt != t {
                        continue;
                    }
                    if let Some(orig) = plan.source_column(t, rc) {
                        if let Some(cs) =
                            catalog.stats(plan.source_name(t)).and_then(|s| s.column(orig))
                        {
                            if cs.skew().is_skewed(cfg.machines, cfg.skew_slack) {
                                let name = schema.field(rc).name.clone();
                                schema.set_skewed(&name)?;
                            }
                        }
                    }
                }
            }
            // `sizes` is indexed by written order; `t` is post-reorder.
            let est = sizes[order[t]];
            rels.push(RelationDef::new(plan.alias(t).to_string(), schema, est as u64));
        }
        let calibration = CostCalibration::default();
        MultiJoinSpec::new(rels, plan.join_atoms().to_vec())
            .ok()
            .and_then(|spec| {
                choose_scheme(&spec, cfg.machines, cfg.seed, &top_freq_of, &calibration).ok()
            })
            .map(|(kind, candidates)| SchemeChoice { kind, candidates, calibration })
    } else {
        None
    };

    plan.set_decision(OptimizerDecision {
        mode: cfg.optimizer,
        order,
        orders_considered,
        est_cost,
        written_cost,
        steps,
        scheme,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_expr::join_cond::CmpOp;

    fn eq_atom(lr: usize, lc: usize, rr: usize, rc: usize) -> JoinAtom {
        JoinAtom { left_rel: lr, left_col: lc, op: CmpOp::Eq, right_rel: rr, right_col: rc }
    }

    #[test]
    fn dp_matches_exhaustive_on_chains() {
        // R(10k) ⋈ S(10) ⋈ T(10k) chain: both searches must agree the
        // small middle relation anchors an early prefix.
        let sizes = [10_000.0, 10.0, 10_000.0];
        let atoms = vec![eq_atom(0, 0, 1, 0), eq_atom(1, 1, 2, 0)];
        let sels = vec![0.001, 0.001];
        let (dp_order, dp_cost, _) = dp_best_order(&sizes, &atoms, &sels);
        let (ex_order, ex_cost, considered) = exhaustive_best_order(&sizes, &atoms, &sels);
        assert!((dp_cost - ex_cost).abs() < 1e-6, "dp {dp_cost} vs exhaustive {ex_cost}");
        assert_eq!(order_cost(&dp_order, &sizes, &atoms, &sels), dp_cost);
        assert_eq!(order_cost(&ex_order, &sizes, &atoms, &sels), ex_cost);
        assert!(considered >= 2);
    }

    #[test]
    fn search_prefers_selective_prefixes() {
        // A big filtered-down relation first beats the written order: the
        // written order pays |R0 ⋈ R1| with both huge.
        let sizes = [100_000.0, 100_000.0, 100.0];
        let atoms = vec![eq_atom(0, 0, 1, 0), eq_atom(1, 1, 2, 0), eq_atom(0, 1, 2, 1)];
        let sels = vec![1e-5, 0.01, 0.01];
        let (order, cost, _) = dp_best_order(&sizes, &atoms, &sels);
        let written: Vec<usize> = (0..3).collect();
        assert!(cost <= order_cost(&written, &sizes, &atoms, &sels));
        // The cheap relation participates in the first joined pair.
        assert!(order[0] == 2 || order[1] == 2, "small relation late in {order:?}");
    }

    #[test]
    fn enumerate_orders_respects_connectivity_and_cap() {
        // Chain 0–1–2: valid orders never start with the {0,2} cross pair.
        let atoms = vec![eq_atom(0, 0, 1, 0), eq_atom(1, 1, 2, 0)];
        let orders = enumerate_orders(3, &atoms, usize::MAX);
        assert!(!orders.is_empty());
        for o in &orders {
            let cross = (o[0] == 0 && o[1] == 2) || (o[0] == 2 && o[1] == 0);
            assert!(!cross, "cross prefix {o:?}");
        }
        let capped = enumerate_orders(3, &atoms, 2);
        assert_eq!(capped.len(), 2);
    }

    #[test]
    fn mode_display_and_default() {
        assert_eq!(OptimizerMode::default(), OptimizerMode::On);
        assert_eq!(OptimizerMode::Off.to_string(), "off");
        assert_eq!(OptimizerMode::Exhaustive.to_string(), "exhaustive");
    }
}
